"""Fig. 12 — scalability with the number of workers.

(a) Speedup of every method relative to TopkDSA on 8 workers, computed from
    the simulated per-epoch time (per-update time multiplied by the number of
    updates per epoch) of the VGG-19/CIFAR-100 case for P in {5, 8, 11, 14}.
    gTopk is only evaluated at P = 8, as in the paper.
(b) Convergence of Case 2 with 8 workers (all five methods, including gTopk).

Shape asserted: SparDL has the highest speedup at every worker count, its
advantage grows with P, and in (b) it completes the epochs in the least time.
"""

from __future__ import annotations

import numpy as np

from bench_utils import (
    MethodSpec,
    measure_per_update,
    print_convergence_table,
    run_convergence,
)
from repro.analysis.reporting import format_table

CASE_ID = 2
DENSITY = 0.01
WORKER_COUNTS = (5, 8, 11, 14)
UPDATES_PER_EPOCH = 100  # fixed nominal epoch length for the speedup figure


def _methods(num_workers):
    methods = [
        MethodSpec("TopkDSA", density=DENSITY),
        MethodSpec("TopkA", density=DENSITY),
        MethodSpec("Ok-Topk", density=DENSITY),
        MethodSpec("SparDL", density=DENSITY),
    ]
    if num_workers & (num_workers - 1) == 0:
        methods.insert(0, MethodSpec("gTopk", density=DENSITY))
    return methods


def test_fig12a_speedup_vs_workers(run_once):
    def run():
        epoch_times = {}
        for num_workers in WORKER_COUNTS:
            results = measure_per_update(CASE_ID, _methods(num_workers), num_workers)
            for method, result in results.items():
                epoch_times[(method, num_workers)] = result.total * UPDATES_PER_EPOCH
        return epoch_times

    epoch_times = run_once(run)
    reference = epoch_times[("TopkDSA", 8)]

    rows = []
    speedups = {}
    for (method, workers), value in sorted(epoch_times.items()):
        speedup = reference / value
        speedups[(method, workers)] = speedup
        rows.append((method, workers, value, speedup))
    print()
    print(format_table(["method", "workers", "per-epoch time (s)", "speedup vs TopkDSA@8"],
                       rows, title="Fig. 12(a) reproduction: scalability"))

    for workers in WORKER_COUNTS:
        methods_here = [m.display for m in _methods(workers)]
        best = max(methods_here, key=lambda m: speedups[(m, workers)])
        assert best == "SparDL", f"SparDL should lead at P={workers}"
    # The gap to the strongest baseline widens as P grows.
    gap_small = speedups[("SparDL", 5)] - speedups[("Ok-Topk", 5)]
    gap_large = speedups[("SparDL", 14)] - speedups[("Ok-Topk", 14)]
    assert gap_large >= gap_small


def test_fig12b_convergence_with_8_workers(run_once):
    methods = _methods(8)
    histories = run_once(run_convergence, CASE_ID, methods, 8, 2, 64)
    print_convergence_table("Fig. 12(b) reproduction: Case 2 with 8 workers (incl. gTopk)",
                            histories)
    times = {name: history.total_time for name, history in histories.items()}
    assert min(times, key=times.get) == "SparDL"
    assert times["gTopk"] > times["SparDL"]
    assert np.isfinite(histories["SparDL"].final_metric)
