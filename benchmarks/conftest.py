"""Benchmark-suite configuration.

Keeps pytest-benchmark rounds minimal: every benchmark body is an entire
experiment (many synchronisations or a full training run), so one round per
benchmark is both sufficient and necessary to keep the suite fast.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
