"""Ablation — the "Optimization for SRS" of Section III-B.

The optimisation sparsifies only the blocks about to be sent at the next
transmission step instead of every held block after each summation.  Both
variants must produce consistent, equally sparse results; the optimised
variant performs strictly fewer top-k selections (measured here by counting
block sparsification events) and is never slower in wall-clock terms.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.residuals import ResidualManager, ResidualPolicy
from repro.core.spardl import SparDLSynchronizer, make_teams
from repro.core.srs import spar_reduce_scatter
from repro.sparse.blocks import BlockLayout

NUM_WORKERS = 14
NUM_ELEMENTS = 20_000
DENSITY = 0.01
ITERATIONS = 3


class _CountingResiduals(ResidualManager):
    """Residual manager that counts procedure-discard events, a direct proxy
    for the number of block sparsifications performed during SRS."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.procedure_events = 0

    def collect_procedure(self, worker, dropped, share=1.0):
        self.procedure_events += 1
        super().collect_procedure(worker, dropped, share)


def _run_variant(sparsify_all: bool):
    k = max(NUM_WORKERS, int(NUM_ELEMENTS * DENSITY))
    k_block = max(1, k // NUM_WORKERS)
    layout = BlockLayout(NUM_ELEMENTS, NUM_WORKERS)
    teams = make_teams(NUM_WORKERS, 1)
    events = 0
    # Best-of-iterations filters one-off GC pauses and scheduler preemptions
    # out of the wall-clock comparison (a summed total lets a single stall
    # land entirely in one variant and flip the ratio).
    elapsed = float("inf")
    final_nnz = []
    for iteration in range(ITERATIONS):
        cluster = SimulatedCluster(NUM_WORKERS)
        residuals = _CountingResiduals(NUM_WORKERS, NUM_ELEMENTS, ResidualPolicy.GLOBAL)
        gradients = {w: np.random.default_rng(100 * iteration + w).normal(size=NUM_ELEMENTS)
                     for w in range(NUM_WORKERS)}
        start = time.perf_counter()
        output = spar_reduce_scatter(cluster, teams, gradients, layout, k_block, residuals,
                                     sparsify_all=sparsify_all)
        elapsed = min(elapsed, time.perf_counter() - start)
        events += residuals.procedure_events
        final_nnz.append(sum(block.nnz for block in output.reduced_blocks.values()))
    return events, elapsed, final_nnz


def test_srs_optimization_reduces_sparsification_work(run_once):
    def run():
        return {"optimized": _run_variant(False), "sparsify-all": _run_variant(True)}

    results = run_once(run)
    rows = [(name, events, seconds, nnz[0]) for name, (events, seconds, nnz) in results.items()]
    print()
    print(format_table(
        ["variant", "block sparsification events", "SRS wall-clock best (s)", "total reduced nnz"],
        rows, title="Ablation: Optimization for SRS (Section III-B)"))

    optimized_events, optimized_time, optimized_nnz = results["optimized"]
    full_events, full_time, full_nnz = results["sparsify-all"]
    assert optimized_events < full_events
    assert optimized_time <= full_time * 1.30
    # Both variants keep every reduced block within the k/P budget.
    k_block = max(1, int(NUM_ELEMENTS * DENSITY) // NUM_WORKERS)
    assert max(optimized_nnz) <= NUM_WORKERS * k_block
    assert max(full_nnz) <= NUM_WORKERS * k_block


def test_srs_optimization_preserves_consistency(run_once):
    def run():
        outcomes = {}
        for label, sparsify_all in (("optimized", False), ("sparsify-all", True)):
            cluster = SimulatedCluster(NUM_WORKERS)
            config = SparDLConfig(density=DENSITY, sparsify_all_blocks=sparsify_all)
            sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, config)
            gradients = {w: np.random.default_rng(w).normal(size=NUM_ELEMENTS)
                         for w in range(NUM_WORKERS)}
            result = sync.synchronize(gradients)
            outcomes[label] = (result.is_consistent, result.info["final_nnz"],
                               result.stats.rounds)
        return outcomes

    outcomes = run_once(run)
    print()
    print(format_table(["variant", "consistent", "final nnz", "rounds"],
                       [(k, *v) for k, v in outcomes.items()],
                       title="Ablation: both SRS variants synchronise correctly"))
    assert all(consistent for consistent, _, _ in outcomes.values())
    assert outcomes["optimized"][2] == outcomes["sparsify-all"][2]
