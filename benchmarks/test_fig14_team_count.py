"""Fig. 14 — impact of the team count d on per-epoch time (14 and 12 workers).

For every divisor d of P the per-epoch time of SparDL with R-SAG (d a power
of two) and B-SAG (any d) is computed from per-update measurements priced at
the VGG-16 scale.  Shape asserted: the best team count is an interior value
(neither d = 1 nor d = P), matching the paper's optimum of d = 7 for 14
workers and d = 6 for 12 workers; and R-SAG at d = 2 is no worse than d = 1.
"""

from __future__ import annotations

import pytest

from bench_utils import MethodSpec, measure_per_update
from repro.analysis.reporting import format_table

CASE_ID = 1
DENSITY = 0.01
UPDATES_PER_EPOCH = 100


def _divisors(value):
    return [d for d in range(1, value + 1) if value % d == 0]


def _configs(num_workers):
    configs = []
    for d in _divisors(num_workers):
        if d == 1:
            configs.append(MethodSpec("SparDL", label="1", density=DENSITY, num_teams=1))
            continue
        if d & (d - 1) == 0:
            configs.append(MethodSpec("SparDL", label=f"R{d}", density=DENSITY,
                                      num_teams=d, sag_mode="rsag"))
        configs.append(MethodSpec("SparDL", label=f"B{d}", density=DENSITY,
                                  num_teams=d, sag_mode="bsag"))
    return configs


#: Fraction of every worker's top-k index set shared with the other workers.
#: Real training gradients overlap heavily (the workers differentiate the same
#: model); this is what makes very large team counts pay in bandwidth.
OVERLAP = 0.9
#: Synchronisations per configuration; B-SAG's top-h controller warms up over
#: the first iterations, so only the last ones are measured.
ITERATIONS = 30
MEASURE_LAST = 10


@pytest.mark.parametrize("num_workers,expected_best_region", [(14, (2, 7)), (12, (2, 6))])
def test_fig14_impact_of_team_count(num_workers, expected_best_region, run_once):
    configs = _configs(num_workers)
    results = run_once(measure_per_update, CASE_ID, configs, num_workers,
                       iterations=ITERATIONS, overlap=OVERLAP, measure_last=MEASURE_LAST)

    rows = []
    epoch_times = {}
    for label, result in results.items():
        epoch_time = result.total * UPDATES_PER_EPOCH
        epoch_times[label] = epoch_time
        rows.append((label, result.rounds, result.communication_time, result.max_received,
                     epoch_time))
    rows.sort(key=lambda row: row[4])
    print()
    print(format_table(["config (R/B + d)", "rounds", "comm time (s)", "max recv (elems)",
                        "per-epoch time (s)"],
                       rows, title=f"Fig. 14 reproduction: impact of d with {num_workers} workers"))

    baseline = epoch_times["1"]
    extreme = f"B{num_workers}"
    best_label = min(epoch_times, key=epoch_times.get)
    best_d = int(best_label.lstrip("RB"))
    low, high = expected_best_region
    assert low <= best_d <= high, f"optimal d should be interior, got {best_label}"
    assert epoch_times[best_label] < baseline
    # Too large a d eventually weakens the benefit: d = P pays more bandwidth
    # than the optimum and ends up slower than even d = 1 (as in the paper,
    # where B14 / B12 fall behind the best team count).
    assert epoch_times[extreme] > epoch_times[best_label]
    assert results[extreme].max_received > results[best_label].max_received
