"""Fig. 11 — convergence of ResNet-50 and BERT: SparDL vs Ok-Topk.

Trains the scaled-down Case 3 (ResNet) and Case 7 (BERT masked-LM) with both
methods and checks the paper's claims: SparDL finishes the same number of
epochs in less simulated time (the paper reports ~1.7x) while reaching a
comparable loss / accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import MethodSpec, print_convergence_table, run_convergence

NUM_WORKERS = 6
DENSITY = 0.02
EPOCHS = 2
SAMPLES = 48
METHODS = [MethodSpec("Ok-Topk", density=DENSITY), MethodSpec("SparDL", density=DENSITY)]
CASES = {3: "ResNet-50 on ImageNet", 7: "BERT on Wikipedia"}


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_fig11_convergence_large_models(case_id, run_once):
    histories = run_once(run_convergence, case_id, METHODS, NUM_WORKERS, EPOCHS, SAMPLES)
    print_convergence_table(f"Fig. 11 reproduction ({CASES[case_id]}, P={NUM_WORKERS})",
                            histories)
    spardl = histories["SparDL"]
    oktopk = histories["Ok-Topk"]
    speedup = oktopk.total_time / spardl.total_time
    print(f"training-time speedup of SparDL over Ok-Topk: {speedup:.2f}x (paper: ~1.7x)")
    assert speedup > 1.1
    assert np.isfinite(spardl.final_eval_loss)
    assert spardl.final_eval_loss <= oktopk.final_eval_loss * 2.0 + 0.5
