"""Fig. 10 — per-update time for ResNet-50 (ImageNet) and BERT (Wikipedia).

The paper compares SparDL against Ok-Topk (its strongest baseline) on the two
largest cases with 14 workers.  The assertions mirror the reported shape:
SparDL's communication cost is roughly 2x lower (2.3x for ResNet-50, 2.0x for
BERT in the paper).
"""

from __future__ import annotations

import pytest

from bench_utils import MethodSpec, measure_per_update, print_per_update_table

NUM_WORKERS = 14
DENSITY = 0.01
METHODS = [MethodSpec("Ok-Topk", density=DENSITY), MethodSpec("SparDL", density=DENSITY)]
CASES = {3: "ResNet-50 on ImageNet", 7: "BERT on Wikipedia"}


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_fig10_per_update_time_large_models(case_id, run_once):
    results = run_once(measure_per_update, case_id, METHODS, NUM_WORKERS)
    print_per_update_table(f"Fig. 10 reproduction ({CASES[case_id]}, P={NUM_WORKERS})",
                           results)
    speedup = results["Ok-Topk"].communication_time / results["SparDL"].communication_time
    print(f"communication speedup of SparDL over Ok-Topk: {speedup:.2f}x "
          f"(paper: 2.3x for ResNet-50, 2.0x for BERT)")
    assert speedup > 1.3
    assert results["SparDL"].total < results["Ok-Topk"].total
