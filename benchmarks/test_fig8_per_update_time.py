"""Fig. 8 — per-update time with 14 workers on four deep-learning cases.

Cases 2 (VGG-19/CIFAR-100), 4 (VGG-11/House), 5 (LSTM-IMDB) and 6 (LSTM-PTB)
are synchronised with TopkDSA, TopkA, Ok-Topk and SparDL; the per-update time
is split into the communication part (alpha-beta priced at the paper's model
scale) and the per-case computation part, as in the paper's stacked bars.

Qualitative shape asserted: SparDL has the lowest communication cost in every
case; Ok-Topk is the strongest baseline; TopkDSA is the slowest; and the
VGG-11 case is cheaper than the VGG-19 case (fewer parameters), while
LSTM-PTB is more expensive than LSTM-IMDB.
"""

from __future__ import annotations

import pytest

from bench_utils import MethodSpec, measure_per_update, print_per_update_table

NUM_WORKERS = 14
DENSITY = 0.01
METHODS = [
    MethodSpec("TopkDSA", density=DENSITY),
    MethodSpec("TopkA", density=DENSITY),
    MethodSpec("Ok-Topk", density=DENSITY),
    MethodSpec("SparDL", density=DENSITY),
]
CASES = {2: "VGG-19 on CIFAR-100", 4: "VGG-11 on House",
         5: "LSTM-IMDB on IMDB", 6: "LSTM-PTB on PTB"}


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_fig8_per_update_time(case_id, run_once):
    results = run_once(measure_per_update, case_id, METHODS, NUM_WORKERS)
    print_per_update_table(f"Fig. 8 reproduction ({CASES[case_id]}, P={NUM_WORKERS})", results)

    comm = {name: r.communication_time for name, r in results.items()}
    assert min(comm, key=comm.get) == "SparDL"
    assert comm["SparDL"] < comm["Ok-Topk"] < comm["TopkDSA"]
    assert comm["SparDL"] < comm["TopkA"]
    # The paper reports 1.6x-2.3x over Ok-Topk and larger factors over the rest.
    assert comm["Ok-Topk"] / comm["SparDL"] > 1.2
    assert comm["TopkDSA"] / comm["SparDL"] > 2.0


def test_fig8_cross_case_ordering(run_once):
    """More parameters -> more bandwidth -> higher communication time."""
    def run():
        times = {}
        for case_id in (2, 4, 5, 6):
            results = measure_per_update(case_id, [MethodSpec("SparDL", density=DENSITY)],
                                         NUM_WORKERS)
            times[case_id] = results["SparDL"].communication_time
        return times

    times = run_once(run)
    print()
    print("SparDL communication time per case:",
          {CASES[c]: round(t, 4) for c, t in times.items()})
    assert times[4] < times[2]   # VGG-11 (9.2M) cheaper than VGG-19 (20.1M)
    assert times[5] < times[6]   # LSTM-IMDB (35.2M) cheaper than LSTM-PTB (66M)
