"""Fig. 9 — convergence (accuracy / loss vs training time) on four cases.

Trains the scaled-down Cases 2, 4, 5 and 6 with TopkDSA, TopkA, Ok-Topk and
SparDL over the simulated cluster and reports the metric-versus-simulated-time
curves.  The qualitative claims checked are the paper's: SparDL finishes the
same number of epochs in the least simulated time while converging to a
similar accuracy / loss as the baselines.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import MethodSpec, print_convergence_table, run_convergence
from repro.analysis.reporting import Series, format_series

NUM_WORKERS = 6
DENSITY = 0.02
EPOCHS = 3
SAMPLES = 72
METHODS = [
    MethodSpec("TopkDSA", density=DENSITY),
    MethodSpec("TopkA", density=DENSITY),
    MethodSpec("Ok-Topk", density=DENSITY),
    MethodSpec("SparDL", density=DENSITY),
]

CASES = {2: "VGG-19 on CIFAR-100", 4: "VGG-11 on House",
         5: "LSTM-IMDB on IMDB", 6: "LSTM-PTB on PTB"}


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_fig9_convergence(case_id, run_once):
    histories = run_once(run_convergence, case_id, METHODS, NUM_WORKERS, EPOCHS,
                         SAMPLES)
    print_convergence_table(f"Fig. 9 reproduction ({CASES[case_id]}, P={NUM_WORKERS})",
                            histories)
    series = []
    for name, history in histories.items():
        curve = history.metric_curve()
        s = Series(name)
        for t, metric in zip(curve["time"], curve["metric"]):
            s.append(t, metric)
        series.append(s)
    print()
    print(format_series(series, x_label="simulated time (s)", y_label="metric",
                        title=f"Fig. 9 curves ({CASES[case_id]})"))

    times = {name: history.total_time for name, history in histories.items()}
    assert min(times, key=times.get) == "SparDL"
    assert times["TopkDSA"] > times["SparDL"]
    assert times["Ok-Topk"] > times["SparDL"]

    # Same number of epochs -> comparable final quality (global residual
    # collection keeps SparDL's convergence rate).
    losses = {name: history.final_eval_loss for name, history in histories.items()}
    baseline_best = min(losses[name] for name in losses if name != "SparDL")
    assert np.isfinite(losses["SparDL"])
    assert losses["SparDL"] <= baseline_best * 2.0 + 0.5
