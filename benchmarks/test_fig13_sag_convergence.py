"""Fig. 13 — SparDL with the Spar-All-Gather variants (R-SAG / B-SAG).

Trains the VGG-16/CIFAR-10 case on 14 workers with SparDL using R-SAG
(d = 1, 2) and B-SAG (d = 1, 2, 7, 14) and reports accuracy versus simulated
training time.  Shape asserted: every d > 1 configuration finishes the epochs
at least as fast as d = 1, the best team count beats d = 1 clearly, and all
configurations reach a comparable accuracy — except that d = P (every worker
its own team) is allowed to degrade, as the paper observes.
"""

from __future__ import annotations

import numpy as np

from bench_utils import MethodSpec, print_convergence_table, run_convergence

CASE_ID = 1
NUM_WORKERS = 14
DENSITY = 0.02
EPOCHS = 2
SAMPLES = 56

CONFIGS = [
    MethodSpec("SparDL", label="d=1", density=DENSITY, num_teams=1),
    MethodSpec("SparDL", label="R-SAG d=2", density=DENSITY, num_teams=2, sag_mode="rsag"),
    MethodSpec("SparDL", label="B-SAG d=2", density=DENSITY, num_teams=2, sag_mode="bsag"),
    MethodSpec("SparDL", label="B-SAG d=7", density=DENSITY, num_teams=7, sag_mode="bsag"),
    MethodSpec("SparDL", label="B-SAG d=14", density=DENSITY, num_teams=14, sag_mode="bsag"),
]


def test_fig13_sag_variants_convergence(run_once):
    histories = run_once(run_convergence, CASE_ID, CONFIGS, NUM_WORKERS, EPOCHS, SAMPLES)
    print_convergence_table(
        f"Fig. 13 reproduction: SparDL with SAG variants (VGG-16, P={NUM_WORKERS})",
        histories)

    times = {name: history.total_time for name, history in histories.items()}
    comm = {name: history.total_communication_time for name, history in histories.items()}

    # Every SAG configuration is at least as fast as SparDL without SAG, and
    # the best team count is strictly faster (the paper reports up to 1.25x).
    assert comm["R-SAG d=2"] <= comm["d=1"] * 1.05
    assert comm["B-SAG d=2"] <= comm["d=1"] * 1.05
    assert comm["B-SAG d=7"] < comm["d=1"]
    assert times["B-SAG d=7"] < times["d=1"]
    # (The d = 7 versus d = 14 bandwidth crossover depends on the cross-worker
    # index overlap of real full-size gradients; it is reproduced under a
    # controlled overlap in the Fig. 14 benchmark.)

    # Convergence is preserved for moderate d (similar final loss to d=1).
    losses = {name: history.final_eval_loss for name, history in histories.items()}
    for label in ("R-SAG d=2", "B-SAG d=2", "B-SAG d=7"):
        assert np.isfinite(losses[label])
        assert losses[label] <= losses["d=1"] * 1.75 + 0.5
