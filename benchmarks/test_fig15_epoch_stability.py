"""Fig. 15 — per-epoch time stability across training epochs for each d.

The paper's point: per-epoch time is stable over epochs, so running one epoch
with each candidate d is enough to pick the optimal team count.  This
benchmark trains the VGG-16 case for several epochs with a selection of team
counts on 14 and 12 workers, prints the per-epoch simulated time of each
configuration, and asserts (i) low relative variation across epochs and
(ii) that the configuration that is fastest in the first epoch stays fastest
overall.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import MethodSpec, run_convergence
from repro.analysis.reporting import format_table

CASE_ID = 1
DENSITY = 0.02
EPOCHS = 3
SAMPLES = 56


def _configs(num_workers):
    if num_workers == 14:
        choices = [(1, "auto"), (2, "rsag"), (2, "bsag"), (7, "bsag"), (14, "bsag")]
    else:
        choices = [(1, "auto"), (2, "rsag"), (4, "rsag"), (3, "bsag"), (6, "bsag"), (12, "bsag")]
    configs = []
    for d, mode in choices:
        label = "1" if d == 1 else f"{'R' if mode == 'rsag' else 'B'}{d}"
        configs.append(MethodSpec("SparDL", label=label, density=DENSITY,
                                  num_teams=d, sag_mode=mode))
    return configs


@pytest.mark.parametrize("num_workers", [14, 12])
def test_fig15_per_epoch_time_stability(num_workers, run_once):
    configs = _configs(num_workers)
    histories = run_once(run_convergence, CASE_ID, configs, num_workers, EPOCHS, SAMPLES)

    per_epoch = {name: [record.epoch_time for record in history.epochs]
                 for name, history in histories.items()}
    rows = [(name, *[round(t, 3) for t in times]) for name, times in per_epoch.items()]
    print()
    print(format_table(["config", *[f"epoch {e}" for e in range(EPOCHS)]], rows,
                       title=f"Fig. 15 reproduction: per-epoch time across epochs "
                             f"({num_workers} workers)"))

    # (i) stability: the per-epoch time of each configuration varies little.
    for name, times in per_epoch.items():
        times = np.asarray(times)
        assert times.std() / times.mean() < 0.25, f"{name} per-epoch time is unstable"

    # (ii) the epoch-1 winner is also the overall winner, so users can pick d
    # from a single epoch as the paper suggests.
    first_epoch_winner = min(per_epoch, key=lambda name: per_epoch[name][0])
    total_winner = min(histories, key=lambda name: histories[name].total_time)
    assert first_epoch_winner == total_winner
    # And the winner uses more than one team.
    assert first_epoch_winner != "1"
