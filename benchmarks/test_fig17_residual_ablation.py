"""Fig. 17 — impact of the residual collection algorithm (GRES / PRES / LRES).

The paper compares SparDL's global residual collection (GRES) against the
partial (PRES, Ok-Topk/gTopk-style) and local (LRES, DGC-style) policies over
120-160 training epochs, where GRES's retention of in-procedure residuals
translates into a visible accuracy gap after the learning-rate drop.

That horizon is far beyond what the scaled-down CPU runs here can reach, so
this benchmark reproduces the figure in two parts:

* the *mechanism* (quantitative): across several synchronisations of
  realistic, overlapping gradients, GRES retains strictly more discarded
  gradient mass than PRES, which retains more than LRES — i.e. only GRES is
  lossless, exactly the property the paper attributes the accuracy gap to;
* the *training runs* (qualitative): the three policies are trained for a few
  epochs under SparDL with and without SAG, the accuracy-per-epoch table of
  Fig. 17 is printed, and all runs are checked to remain stable.  The
  long-horizon accuracy separation itself is documented as out of scope in
  EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import MethodSpec, correlated_gradients, run_convergence
from repro.analysis.reporting import format_table
from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.residuals import ResidualPolicy
from repro.core.spardl import SparDLSynchronizer

NUM_WORKERS = 14
DENSITY = 0.02
EPOCHS = 3
SAMPLES = 56

POLICIES = [("GRES", ResidualPolicy.GLOBAL), ("PRES", ResidualPolicy.PARTIAL),
            ("LRES", ResidualPolicy.LOCAL)]

VARIANTS = {
    "SparDL": dict(num_teams=1, sag_mode="auto"),
    "SparDL (R-SAG d=2)": dict(num_teams=2, sag_mode="rsag"),
    "SparDL (B-SAG d=7)": dict(num_teams=7, sag_mode="bsag"),
}


def test_fig17_residual_mass_retention(run_once):
    """GRES keeps strictly more discarded gradient mass than PRES, and PRES
    more than LRES, on identical overlapping gradients — the mechanism behind
    the convergence gap of Fig. 17."""
    def run():
        num_elements = 4000
        masses = {}
        for name, policy in POLICIES:
            cluster = SimulatedCluster(NUM_WORKERS)
            sync = SparDLSynchronizer(cluster, num_elements,
                                      SparDLConfig(density=0.01, residual_policy=policy))
            for iteration in range(3):
                gradients = correlated_gradients(NUM_WORKERS, num_elements,
                                                 seed=11 * iteration, overlap=0.7)
                sync.synchronize(gradients)
            masses[name] = float(np.abs(sync.residuals.total_residual()).sum())
        return masses

    masses = run_once(run)
    print()
    print(format_table(["policy", "retained residual mass"], list(masses.items()),
                       title="Fig. 17 mechanism: residual mass kept by each policy"))
    assert masses["GRES"] > masses["PRES"] > masses["LRES"]


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_fig17_convergence_by_policy(variant, run_once):
    case_id = 1
    options = VARIANTS[variant]
    configs = [MethodSpec("SparDL", label=name, density=DENSITY,
                          residual_policy=policy, **options)
               for name, policy in POLICIES]
    histories = run_once(run_convergence, case_id, configs, NUM_WORKERS, EPOCHS, SAMPLES,
                         learning_rate=0.02)

    rows = []
    for name, _ in POLICIES:
        history = histories[name]
        accuracy_by_epoch = [record.eval_metric for record in history.epochs]
        rows.append((name, history.final_eval_loss, history.final_metric,
                     " ".join(f"{value:.3f}" for value in accuracy_by_epoch
                              if np.isfinite(value))))
    print()
    print(format_table(["policy", "final loss", "final accuracy", "accuracy per epoch"],
                       rows, title=f"Fig. 17 reproduction: {variant} (P={NUM_WORKERS})"))

    # All three policies must train stably at this scale; the long-horizon
    # accuracy gap is covered by the mass-retention mechanism test above.
    for name, _ in POLICIES:
        history = histories[name]
        assert np.isfinite(history.final_eval_loss)
        assert history.final_eval_loss < 3 * np.log(10) + 1.0
        assert len(history.epochs) == EPOCHS
    # Identical communication structure: the policy only changes what is kept
    # locally, never what is transmitted.
    times = {name: history.total_communication_time for name, history in histories.items()}
    assert max(times.values()) - min(times.values()) <= 0.05 * max(times.values()) + 1e-9
