"""Fig. 16 — impact of the sparsity ratio k/n on training time and accuracy.

Trains the VGG-16/CIFAR-10 and VGG-19/CIFAR-100 cases with SparDL at
k/n in {1e-1, 1e-2, 1e-3, 1e-4, 1e-5} and reports total simulated training
time and final accuracy for a fixed number of epochs.

Shape asserted (as in the paper): training time decreases monotonically as
k/n shrinks but saturates once the latency term dominates (the step from 1e-3
to 1e-5 saves little), while accuracy degrades markedly at the most extreme
sparsity (1e-5) compared to 1e-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_utils import MethodSpec, run_convergence
from repro.analysis.reporting import format_table

NUM_WORKERS = 8
EPOCHS = 3
SAMPLES = 96
RATIOS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
CASES = {1: "VGG-16 on CIFAR-10", 2: "VGG-19 on CIFAR-100"}


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_fig16_sparsity_ratio(case_id, run_once):
    configs = [MethodSpec("SparDL", label=f"k/n={ratio:g}", density=ratio)
               for ratio in RATIOS]
    histories = run_once(run_convergence, case_id, configs, NUM_WORKERS, EPOCHS, SAMPLES)

    rows = []
    times = {}
    metrics = {}
    for ratio in RATIOS:
        label = f"k/n={ratio:g}"
        history = histories[label]
        times[ratio] = history.total_time
        metrics[ratio] = history.final_metric
        rows.append((label, history.total_time, history.total_communication_time,
                     history.final_eval_loss, history.final_metric))
    print()
    print(format_table(
        ["sparsity", "train time (s)", "comm time (s)", "final loss", "final accuracy"],
        rows, title=f"Fig. 16 reproduction ({CASES[case_id]}, P={NUM_WORKERS})"))

    # Training time decreases (weakly) with sparsity ...
    assert times[1e-2] < times[1e-1]
    assert times[1e-3] <= times[1e-2]
    # ... but saturates once latency dominates: 1e-5 saves little over 1e-3.
    saving_large = times[1e-1] - times[1e-2]
    saving_small = times[1e-3] - times[1e-5]
    assert saving_small < saving_large
    assert times[1e-5] >= 0.80 * times[1e-3]

    # Extreme sparsification hurts convergence relative to mild sparsification.
    assert metrics[1e-5] <= metrics[1e-1] + 1e-9
    assert np.isfinite(metrics[1e-5])
