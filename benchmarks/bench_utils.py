"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation.  The helpers here provide the two measurement modes used across
them:

* **per-update timing** (:func:`measure_per_update`): run a handful of
  synchronisations of a case-sized gradient with each method and price the
  measured rounds/volumes with the alpha-beta model at the *paper's* model
  scale.  This regenerates the per-update-time bar charts (Figs. 8, 10, 18)
  and the scalability plot (Fig. 12a).
* **convergence runs** (:func:`run_convergence`): actually train the
  scaled-down case models over the simulated cluster with each method and
  record metric-versus-simulated-time curves (Figs. 9, 11, 12b, 13, 16, 17).

Scale knobs are deliberately small so the full benchmark suite completes in
minutes on a laptop CPU; the qualitative shape (which method wins, by what
factor, where crossovers appear) is what the assertions check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.registry import make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET, NetworkProfile
from repro.core.residuals import ResidualPolicy
from repro.training.cases import get_case
from repro.training.metrics import TrainingHistory
from repro.training.timing import communication_time
from repro.training.trainer import DistributedTrainer, TrainerConfig

__all__ = [
    "MethodSpec",
    "PerUpdateResult",
    "correlated_gradients",
    "measure_per_update",
    "run_convergence",
    "print_per_update_table",
    "print_convergence_table",
]

#: Size of the synthetic gradient used by the per-update measurements.  The
#: bandwidth term is rescaled to the paper's model size, so this only needs to
#: be large enough for the sparsity pattern to be non-degenerate.
SIM_GRADIENT_SIZE = 4_000


@dataclass
class MethodSpec:
    """A communication method plus its SparDL-specific options."""

    name: str
    label: Optional[str] = None
    density: Optional[float] = 0.01
    k: Optional[int] = None
    num_teams: int = 1
    sag_mode: str = "auto"
    residual_policy: ResidualPolicy | str = ResidualPolicy.GLOBAL
    sparsify_all_blocks: bool = False

    @property
    def display(self) -> str:
        return self.label or self.name

    def build(self, cluster: SimulatedCluster, num_elements: int):
        kwargs = {}
        if self.name.lower() != "dense":
            kwargs = dict(k=self.k, density=None if self.k else self.density)
        return make_synchronizer(
            self.name, cluster, num_elements,
            num_teams=self.num_teams, sag_mode=self.sag_mode,
            residual_policy=self.residual_policy,
            sparsify_all_blocks=self.sparsify_all_blocks, **kwargs,
        )


@dataclass
class PerUpdateResult:
    """Per-update timing of one method on one case."""

    method: str
    communication_time: float
    compute_time: float
    rounds: float
    max_received: float

    @property
    def total(self) -> float:
        return self.communication_time + self.compute_time


def correlated_gradients(num_workers: int, num_elements: int, seed: int,
                         overlap: float = 0.0) -> Dict[int, np.ndarray]:
    """Per-worker gradients with a tunable degree of top-k index overlap.

    In real data-parallel training the workers' large-magnitude coordinates
    largely agree (they differentiate the same model on similar data), which
    is what makes too many teams expensive in Spar-All-Gather.  ``overlap``
    controls that agreement: a fraction ``overlap`` of every worker's
    magnitude profile comes from a shared heavy-tailed profile over a common
    coordinate ranking, the rest from worker-private heavy-tailed noise.
    ``overlap = 0`` gives independent gradients.
    """
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    rng = np.random.default_rng(seed)
    ranking = rng.permutation(num_elements)
    profile = np.zeros(num_elements)
    # Heavy-tailed shared magnitudes: a few coordinates dominate, as observed
    # for real gradients.
    profile[ranking] = (np.arange(1, num_elements + 1) ** -0.8)
    signs = rng.choice((-1.0, 1.0), size=num_elements)
    gradients = {}
    for worker in range(num_workers):
        worker_rng = np.random.default_rng(seed + 1 + worker)
        private = np.zeros(num_elements)
        private[worker_rng.permutation(num_elements)] = (np.arange(1, num_elements + 1) ** -0.8)
        scale_noise = 1.0 + 0.2 * worker_rng.normal(size=num_elements)
        gradients[worker] = signs * (overlap * profile + (1.0 - overlap) * private) * scale_noise
    return gradients


def measure_per_update(case_id: int, methods: Sequence[MethodSpec], num_workers: int,
                       network: NetworkProfile = ETHERNET, iterations: int = 3,
                       num_elements: int = SIM_GRADIENT_SIZE, seed: int = 0,
                       overlap: float = 0.0, measure_last: Optional[int] = None,
                       ) -> Dict[str, PerUpdateResult]:
    """Average per-update communication/compute time of each method.

    ``iterations`` synchronisations are run per method (stateful methods such
    as B-SAG's top-h controller and Ok-Topk's threshold calibration warm up
    over them); the reported averages cover the last ``measure_last`` of them
    (default: all).
    """
    case = get_case(case_id)
    scale = case.compute_profile.volume_scale(num_elements)
    keep = measure_last or iterations
    results: Dict[str, PerUpdateResult] = {}
    for spec in methods:
        cluster = SimulatedCluster(num_workers)
        sync = spec.build(cluster, num_elements)
        comm_times: List[float] = []
        rounds: List[float] = []
        volumes: List[float] = []
        for iteration in range(iterations):
            gradients = correlated_gradients(num_workers, num_elements,
                                             seed + 977 * iteration, overlap)
            outcome = sync.synchronize(gradients)
            comm_times.append(communication_time(outcome.stats, network, scale))
            rounds.append(outcome.stats.rounds)
            volumes.append(outcome.stats.max_received)
        results[spec.display] = PerUpdateResult(
            method=spec.display,
            communication_time=float(np.mean(comm_times[-keep:])),
            compute_time=case.compute_profile.compute_time_per_update,
            rounds=float(np.mean(rounds[-keep:])),
            max_received=float(np.mean(volumes[-keep:])),
        )
    return results


def run_convergence(case_id: int, methods: Sequence[MethodSpec], num_workers: int,
                    epochs: int, num_samples: int = 96, batch_size: int = 8,
                    network: NetworkProfile = ETHERNET, seed: int = 0,
                    learning_rate: Optional[float] = None,
                    ) -> Dict[str, TrainingHistory]:
    """Train the case with every method and return the training histories."""
    case = get_case(case_id)
    histories: Dict[str, TrainingHistory] = {}
    for spec in methods:
        train, test = case.build_datasets(num_samples=num_samples, seed=seed)
        cluster = SimulatedCluster(num_workers)
        num_elements = case.build_model(seed).num_parameters()
        sync = spec.build(cluster, num_elements)
        trainer = DistributedTrainer(
            cluster, sync, case.build_model, train, test,
            config=TrainerConfig(batch_size=batch_size,
                                 learning_rate=learning_rate or case.learning_rate,
                                 momentum=case.momentum, seed=seed),
            network=network, compute_profile=case.compute_profile, case_name=case.name,
        )
        histories[spec.display] = trainer.train(epochs)
    return histories


# ---------------------------------------------------------------------------
# printing
# ---------------------------------------------------------------------------
def print_per_update_table(title: str, results: Dict[str, PerUpdateResult]) -> None:
    from repro.analysis.reporting import format_table

    rows = [
        (name, r.communication_time, r.compute_time, r.total, r.rounds, r.max_received)
        for name, r in sorted(results.items(), key=lambda item: item[1].total)
    ]
    print()
    print(format_table(
        ["method", "comm time (s)", "comp time (s)", "per-update (s)", "rounds", "max recv (elems)"],
        rows, title=title))


def print_convergence_table(title: str, histories: Dict[str, TrainingHistory],
                            metric_name: str = "metric") -> None:
    from repro.analysis.reporting import format_table

    rows = []
    for name, history in histories.items():
        rows.append((
            name,
            history.total_time,
            history.total_communication_time,
            history.final_eval_loss,
            history.final_metric,
        ))
    rows.sort(key=lambda row: row[1])
    print()
    print(format_table(
        ["method", "train time (s)", "comm time (s)", "final loss", f"final {metric_name}"],
        rows, title=title))
