"""Table I — communication complexity of sparse All-Reduce methods.

Regenerates Table I by printing, for each method, the analytical latency
rounds / bandwidth bounds next to the rounds and per-worker received volume
measured on the simulated cluster, for the paper's 14-worker setting and an
8-worker power-of-two setting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import table1
from repro.analysis.reporting import format_table
from repro.baselines.registry import available_methods, make_synchronizer
from repro.comm.cluster import SimulatedCluster

NUM_ELEMENTS = 7_000
DENSITY = 0.01


def measure(num_workers: int, k: int):
    measured = {}
    for method in available_methods(num_workers):
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer(method, cluster, NUM_ELEMENTS, k=k)
        gradients = {w: np.random.default_rng(w).normal(size=NUM_ELEMENTS)
                     for w in range(num_workers)}
        result = sync.synchronize(gradients)
        measured[method] = (result.stats.rounds, result.stats.max_received)
    return measured


@pytest.mark.parametrize("num_workers", [8, 14])
def test_table1_measured_vs_analytical(num_workers, run_once):
    # k is rounded down to a multiple of P so the per-block budget is exact.
    k = max(num_workers, (int(NUM_ELEMENTS * DENSITY) // num_workers) * num_workers)
    measured = run_once(measure, num_workers, k)
    analytical = table1(num_workers, NUM_ELEMENTS, k, d=7 if num_workers == 14 else 4)

    rows = []
    for method, (rounds, volume) in measured.items():
        bound = analytical[method]
        rows.append((method, bound.latency_rounds, rounds,
                     f"[{bound.bandwidth_low:.0f}, {bound.bandwidth_high:.0f}]", volume))
    print()
    print(format_table(
        ["method", "rounds (Table I)", "rounds (measured)",
         "bandwidth bound (elems)", "max received (measured)"],
        rows, title=f"Table I reproduction: P={num_workers}, n={NUM_ELEMENTS}, k={k}"))

    # Qualitative checks mirroring the table's claims.
    spardl_rounds, spardl_volume = measured["SparDL"]
    assert spardl_rounds == analytical["SparDL"].latency_rounds
    assert spardl_volume <= analytical["SparDL"].bandwidth_high + 1e-9
    assert spardl_volume < measured["TopkA"][1]
    assert spardl_rounds < measured["TopkDSA"][0]
    assert spardl_rounds < measured["Ok-Topk"][0]
    # TopkA achieves log-P latency but pays ~2(P-1)k bandwidth.
    assert measured["TopkA"][1] <= analytical["TopkA"].bandwidth_high + 1e-9
    assert measured["TopkA"][1] >= 0.5 * analytical["TopkA"].bandwidth_high


def test_table1_spardl_sag_rows(run_once):
    """The SparDL (R-SAG) and (B-SAG) rows: team variants trade bandwidth for
    latency exactly as equations (7) and (10) describe."""
    num_workers, k = 16, 320

    def run():
        rows = {}
        for num_teams, mode in ((1, "auto"), (2, "rsag"), (4, "rsag"), (4, "bsag"), (8, "bsag")):
            cluster = SimulatedCluster(num_workers)
            sync = make_synchronizer("SparDL", cluster, NUM_ELEMENTS, k=k,
                                     num_teams=num_teams, sag_mode=mode)
            gradients = {w: np.random.default_rng(w).normal(size=NUM_ELEMENTS)
                         for w in range(num_workers)}
            result = sync.synchronize(gradients)
            rows[(num_teams, mode)] = (result.stats.rounds, result.stats.max_received)
        return rows

    rows = run_once(run)
    table = [(f"d={d} ({mode})", rounds, volume) for (d, mode), (rounds, volume) in rows.items()]
    print()
    print(format_table(["configuration", "rounds", "max received (elems)"], table,
                       title=f"SparDL team variants: P={num_workers}, k={k}"))

    # More teams -> fewer rounds (the latency lever of Spar-All-Gather).
    assert rows[(2, "rsag")][0] < rows[(1, "auto")][0]
    assert rows[(4, "rsag")][0] < rows[(2, "rsag")][0]
    assert rows[(8, "bsag")][0] <= rows[(4, "bsag")][0]
