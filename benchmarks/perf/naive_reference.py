"""Naive reference implementations of the sparse kernels.

These reproduce, verbatim in idiom, the pre-optimization (seed) versions of
the hot-path kernels: ``argsort`` top-k, ``np.unique`` + ``np.add.at``
merge-add, sequential pairwise k-way merging, ``np.add.at`` residual
scatter, and boolean-mask restriction.  They serve two purposes:

* the perf-regression harness (:mod:`bench_kernels`) times the optimized
  kernels against them, and
* the randomized equivalence tests assert the optimized kernels are
  bit-identical to them.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "naive_top_k_indices",
    "naive_merge_add",
    "naive_merge_many",
    "naive_scatter_add",
    "naive_restrict",
]


def naive_top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Seed top-k: stable argsort on the negated magnitudes, O(n log n)."""
    values = np.asarray(values)
    n = values.shape[0]
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    magnitude = np.abs(values)
    order = np.argsort(-magnitude, kind="stable")
    return np.sort(order[:k].astype(np.int64))


def naive_merge_add(a_indices: np.ndarray, a_values: np.ndarray,
                    b_indices: np.ndarray, b_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Seed merge-add: concatenate, ``np.unique`` re-sort, ``np.add.at``."""
    indices = np.concatenate([a_indices, b_indices])
    values = np.concatenate([a_values, b_values])
    unique, inverse = np.unique(indices, return_inverse=True)
    summed = np.zeros(unique.shape[0], dtype=np.float64)
    np.add.at(summed, inverse, values)
    return unique, summed


def naive_merge_many(index_streams: Sequence[np.ndarray],
                     value_streams: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Seed k-way merge: fold :func:`naive_merge_add` pairwise."""
    indices, values = index_streams[0], value_streams[0]
    for next_indices, next_values in zip(index_streams[1:], value_streams[1:]):
        indices, values = naive_merge_add(indices, values, next_indices, next_values)
    return indices, values


def naive_scatter_add(dense: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """Seed residual scatter: ``np.add.at`` even though indices are unique."""
    np.add.at(dense, indices, values)


def naive_finalize_mask(pending_indices: np.ndarray, final_indices: np.ndarray) -> np.ndarray:
    """Seed end-procedure residual selection: a Python ``set`` probed once
    per pending element through ``np.fromiter``."""
    final = set(int(i) for i in final_indices)
    return np.fromiter(
        (int(idx) not in final for idx in pending_indices),
        dtype=bool,
        count=pending_indices.shape[0],
    )


def naive_restrict(indices: np.ndarray, values: np.ndarray,
                   lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
    """Seed restriction: full boolean mask over the index array."""
    mask = (indices >= lo) & (indices < hi)
    return indices[mask], values[mask]
