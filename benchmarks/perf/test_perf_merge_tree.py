"""Perf-regression smoke gate for the tournament-tree k-way merge.

Runs the PR 3 microbenchmark harness with quick timing settings and asserts

* the compiled tournament kernel stays bit-identical to the head-scan
  reference at every stream count,
* it keeps a speedup margin at wide fan-ins (>= 64 streams) — looser than
  the locally recorded numbers (3-6x in ``BENCH_PR3.json``) so the gate is
  robust on noisy shared CI runners,
* deferred residual accumulation performs exactly one scatter per worker
  per iteration while matching the eager path bit-for-bit.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from bench_merge_tree import (
    GATE_STREAMS,
    RES_ITERATIONS,
    run_merge_benchmarks,
    run_residual_benchmarks,
)

#: CI-safe floor; BENCH_PR3.json records ~3-6x at authoring time.
SMOKE_MIN_SPEEDUP = 1.3


@pytest.fixture(scope="module")
def merge_results():
    return run_merge_benchmarks(repeats=2, loops=1)


@pytest.fixture(scope="module")
def residual_results():
    return run_residual_benchmarks()


def test_bit_identical_to_seed_fold(merge_results):
    for entry in merge_results.values():
        assert entry["seed_fold_bit_identical"], (
            f"merge diverged from the seed fold at "
            f"{entry['num_streams']} streams")


def test_tournament_bit_identical_to_headscan(merge_results):
    for entry in merge_results.values():
        if entry["bit_identical"] is None:  # no C compiler available
            pytest.skip("compiled kernels unavailable")
        assert entry["bit_identical"], (
            f"tournament kernel diverged at {entry['num_streams']} streams")


def test_tournament_beats_headscan_at_wide_fanin(merge_results):
    gated = [entry for entry in merge_results.values()
             if entry["num_streams"] >= GATE_STREAMS]
    assert gated, "benchmark must cover the gated stream counts"
    for entry in gated:
        if entry["speedup"] is None:
            pytest.skip("compiled kernels unavailable")
        assert entry["speedup"] >= SMOKE_MIN_SPEEDUP, (
            f"tournament regressed at {entry['num_streams']} streams: "
            f"{entry['speedup']:.2f}x < {SMOKE_MIN_SPEEDUP}x")


def test_deferred_residuals_bit_identical(residual_results):
    assert residual_results["total_residual_bit_identical"]


def test_deferred_residuals_single_scatter_per_flush(residual_results):
    deferred = residual_results["deferred"]["max_scatters_per_worker"]
    eager = residual_results["eager"]["max_scatters_per_worker"]
    assert deferred <= RES_ITERATIONS, (
        f"deferred mode used {deferred} scatters per worker for "
        f"{RES_ITERATIONS} iterations")
    assert deferred < eager
