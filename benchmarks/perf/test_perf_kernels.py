"""Perf-regression smoke gate for the sparse hot-path kernels.

Runs the microbenchmark harness at the representative size (n ~ 1e6,
nnz ~ 1e4) with quick timing settings and asserts the optimized kernels
keep a comfortable margin over the naive seed idioms.  The thresholds here
are deliberately looser than the ones recorded in ``BENCH_PR1.json``
(3x at authoring time) so the gate is robust to noisy shared CI runners
while still catching a real regression to the seed idioms.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from bench_kernels import run_benchmarks

#: kernel -> minimum speedup tolerated in CI (BENCH_PR1.json records ~3-20x).
SMOKE_FLOORS = {"top_k": 1.5, "merge_add": 1.5, "merge_many": 1.5}


@pytest.fixture(scope="module")
def results():
    return run_benchmarks(repeats=3, loops=1)


@pytest.mark.parametrize("kernel", sorted(SMOKE_FLOORS))
def test_kernel_keeps_speedup_over_naive(results, kernel):
    speedup = results[kernel]["speedup"]
    assert speedup >= SMOKE_FLOORS[kernel], (
        f"{kernel} regressed: {speedup:.2f}x < {SMOKE_FLOORS[kernel]}x "
        "over the naive seed implementation"
    )


def test_all_kernels_reported(results):
    assert {"top_k", "merge_add", "merge_many", "sparse_add_end_to_end",
            "residual_finalize", "restrict"} <= set(results)
