"""Microbenchmarks of the sparse hot-path kernels (perf-regression harness).

Times the optimized kernels of :mod:`repro.sparse` / :mod:`repro.core`
against the naive seed idioms in :mod:`naive_reference` at representative
sizes (gradient length ``n`` ~ 1e6, selection ``nnz`` ~ 1e4, the regime of
the paper's VGG/LSTM-scale figures) and emits a JSON trajectory point
(``BENCH_PR1.json``) that CI uploads as an artifact and future PRs compare
against.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_kernels.py

Exits non-zero if the merge-add or top-k kernels regress below the 3x
speedup gate, so it doubles as a CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from naive_reference import (  # noqa: E402
    naive_finalize_mask,
    naive_merge_add,
    naive_merge_many,
    naive_restrict,
    naive_top_k_indices,
)

from repro.sparse.topk import top_k_indices  # noqa: E402
from repro.sparse.vector import (  # noqa: E402
    SparseGradient,
    merge_add_coo,
    merge_many_coo,
)

#: Representative sizes: ~1e6-element gradient, ~1% selected per stream.
N = 1_000_000
NNZ = 10_000
NUM_STREAMS = 8

#: Kernels whose speedup is gated (the two named by the acceptance bar).
GATED = {"top_k": 3.0, "merge_add": 3.0}


def best_of(func: Callable[[], object], repeats: int, loops: int) -> float:
    """Best-of-``repeats`` mean seconds per call over ``loops`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            func()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def make_stream(rng: np.random.Generator, n: int, nnz: int):
    indices = np.sort(rng.choice(n, size=nnz, replace=False)).astype(np.int64)
    values = rng.normal(size=nnz)
    return indices, values


def run_benchmarks(n: int = N, nnz: int = NNZ, num_streams: int = NUM_STREAMS,
                   repeats: int = 5, loops: int = 3, seed: int = 0) -> Dict[str, dict]:
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=n)
    streams = [make_stream(rng, n, nnz) for _ in range(num_streams)]
    (ai, av), (bi, bv) = streams[0], streams[1]
    sparse_a = SparseGradient.from_sorted_unique(ai, av, n)
    sparse_b = SparseGradient.from_sorted_unique(bi, bv, n)
    final_indices = streams[2][0]
    lo, hi = n // 4, n // 2

    def naive_sparse_add():
        # Seed end-to-end .add: naive kernel plus the validating constructor
        # every internal construction used to pay.
        indices, values = naive_merge_add(ai, av, bi, bv)
        return SparseGradient(indices, values, n)

    cases = {
        "top_k": (
            lambda: naive_top_k_indices(dense, nnz),
            lambda: top_k_indices(dense, nnz),
        ),
        "merge_add": (
            lambda: naive_merge_add(ai, av, bi, bv),
            lambda: merge_add_coo(ai, av, bi, bv),
        ),
        "merge_many": (
            lambda: naive_merge_many([s[0] for s in streams], [s[1] for s in streams]),
            lambda: merge_many_coo([s[0] for s in streams], [s[1] for s in streams]),
        ),
        "sparse_add_end_to_end": (
            naive_sparse_add,
            lambda: sparse_a.add(sparse_b),
        ),
        "residual_finalize": (
            lambda: naive_finalize_mask(ai, final_indices),
            lambda: ~np.isin(ai, final_indices, assume_unique=True),
        ),
        "restrict": (
            lambda: naive_restrict(ai, av, lo, hi),
            lambda: sparse_a.restrict(lo, hi),
        ),
    }

    results: Dict[str, dict] = {}
    for name, (naive, fast) in cases.items():
        naive_s = best_of(naive, repeats, loops)
        fast_s = best_of(fast, repeats, loops)
        results[name] = {
            "naive_s": naive_s,
            "fast_s": fast_s,
            "speedup": naive_s / fast_s if fast_s > 0 else float("inf"),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR1.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing repeats (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record timings without enforcing the speedup gate")
    args = parser.parse_args(argv)

    repeats, loops = (3, 1) if args.quick else (5, 3)
    results = run_benchmarks(repeats=repeats, loops=loops)

    report = {
        "bench": "PR1 vectorized sparse-kernel layer",
        "config": {"n": N, "nnz": NNZ, "num_streams": NUM_STREAMS,
                   "repeats": repeats, "loops": loops},
        "gate": GATED,
        "kernels": results,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(name) for name in results)
    print(f"{'kernel':<{width}}  {'naive':>10}  {'fast':>10}  speedup")
    for name, r in results.items():
        print(f"{name:<{width}}  {r['naive_s'] * 1e3:9.3f}ms  "
              f"{r['fast_s'] * 1e3:9.3f}ms  {r['speedup']:6.1f}x")
    print(f"wrote {args.output}")

    if not args.no_gate:
        failures = [name for name, floor in GATED.items()
                    if results[name]["speedup"] < floor]
        if failures:
            print(f"PERF GATE FAILED: {failures} below "
                  f"{[GATED[f] for f in failures]}x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
