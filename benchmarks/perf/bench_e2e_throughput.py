"""End-to-end training-throughput trajectory point (PR 4).

The ROADMAP's end-to-end follow-on: train a real (scaled-down) case with
data-parallel synchronous SGD over the simulated cluster and record the
training throughput of the staged sync pipeline in its four API shapes —
flat vs per-layer bucketed gradients, constant vs DGC-style warm-up
schedule — plus the dense reference.  For every configuration the bench
records wall-clock iterations/sec (the in-process Python cost of the
pipeline, diagnostics only) and the *simulated* communication/total time
of the alpha-beta model (the quantity the paper reports), together with
the session's cumulative rounds/volume and the schedule's resolved-``k``
trajectory.  Emitted as ``BENCH_PR4.json``, uploaded by CI next to the
PR 1-3 trajectory points.

Deterministic gates (wall time is recorded but never gated):

* the facade-built flat-constant run is *identical* (same per-epoch
  losses) to a run with a legacy pre-built synchroniser — the staged
  pipeline and factory wiring change no numerics;
* warm-up really warms up: the first resolved ``k`` is denser than the
  target, the last equals it;
* bucketing moves a comparable volume (within 3x of flat — per-layer
  top-k rounding differs, wholesale inflation would be a bug) and pays
  its extra latency in *rounds*, which must exceed the flat count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_e2e_throughput.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import make_factory, make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.training.cases import get_case
from repro.training.trainer import DistributedTrainer, TrainerConfig

NUM_WORKERS = 4
CASE_ID = 5
SAMPLES = 160  # 5 iterations per epoch at batch 8 over 4 workers
EPOCHS = 2
DENSITY = 0.02


def build_configs(warmup_steps: int):
    """The benchmarked API shapes: label -> facade spec.  ``warmup_steps``
    must fit inside the run so the trajectory reaches the target."""
    return {
        "flat-constant": f"spardl?density={DENSITY:g}",
        "flat-warmup": f"spardl?density={DENSITY:g}&schedule=warmup:{warmup_steps}",
        "bucketed-constant": f"spardl?density={DENSITY:g}&buckets=layer",
        "bucketed-warmup": (f"spardl?density={DENSITY:g}"
                            f"&schedule=warmup:{warmup_steps}&buckets=layer"),
        "dense": "dense",
    }


def _build_trainer(synchronizer_like, epochs_samples: int,
                   cluster: SimulatedCluster | None = None):
    case = get_case(CASE_ID)
    train_set, test_set = case.build_datasets(num_samples=epochs_samples, seed=0)
    if cluster is None:
        cluster = SimulatedCluster(NUM_WORKERS)
    return DistributedTrainer(
        cluster, synchronizer_like, case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0,
                             check_consistency=True),
        network=ETHERNET, compute_profile=case.compute_profile,
        case_name=case.name,
    )


def run_config(spec: str, epochs: int, samples: int) -> dict:
    trainer = _build_trainer(make_factory(spec), samples)
    start = time.perf_counter()
    history = trainer.train(epochs)
    wall = time.perf_counter() - start
    iterations = len(history.iterations)
    session = trainer.session
    ks = [k for k in session.k_history if k is not None]
    return {
        "spec": spec,
        "iterations": iterations,
        "wall_s": wall,
        "iterations_per_sec": iterations / wall if wall else float("inf"),
        "sim_total_time_s": history.total_time,
        "sim_comm_time_s": history.total_communication_time,
        "final_train_loss": history.epochs[-1].train_loss,
        "rounds": session.cumulative_stats.rounds,
        "total_volume_elements": session.cumulative_stats.total_volume,
        "k_first": ks[0] if ks else None,
        "k_last": ks[-1] if ks else None,
        "train_losses": [epoch.train_loss for epoch in history.epochs],
    }


def run_legacy_reference(epochs: int, samples: int) -> dict:
    """The pre-facade construction path: pre-computed num_elements and a
    ready synchroniser.  Must produce the identical training run."""
    case = get_case(CASE_ID)
    cluster = SimulatedCluster(NUM_WORKERS)
    num_elements = case.build_model(0).num_parameters()
    sync = make_synchronizer("SparDL", cluster, num_elements, density=DENSITY)
    trainer = _build_trainer(sync, samples, cluster=cluster)
    history = trainer.train(epochs)
    return {"train_losses": [epoch.train_loss for epoch in history.epochs]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR4.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="one epoch / fewer samples (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    epochs = 1 if args.quick else EPOCHS
    samples = SAMPLES
    # 5 iterations per epoch: the warm-up must finish inside the run.
    warmup_steps = 3 if args.quick else 6

    results = {label: run_config(spec, epochs, samples)
               for label, spec in build_configs(warmup_steps).items()}
    legacy = run_legacy_reference(epochs, samples)

    target_k = results["flat-constant"]["k_first"]
    report = {
        "bench": "PR4 end-to-end training throughput (staged pipeline API)",
        "config": {
            "num_workers": NUM_WORKERS,
            "case": get_case(CASE_ID).name,
            "samples": samples,
            "epochs": epochs,
            "density": DENSITY,
            "warmup_steps": warmup_steps,
            "network": ETHERNET.name,
        },
        "results": results,
        "legacy_reference_losses": legacy["train_losses"],
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for label, row in results.items():
        print(f"{label:18s} {row['iterations_per_sec']:8.1f} it/s wall | "
              f"sim total {row['sim_total_time_s']:7.3f} s "
              f"(comm {row['sim_comm_time_s']:7.3f} s) | "
              f"rounds {row['rounds']:5d} | k {row['k_first']}->{row['k_last']} | "
              f"loss {row['final_train_loss']:.4f}")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    failures = []
    if results["flat-constant"]["train_losses"] != legacy["train_losses"]:
        failures.append("facade flat-constant run must be identical to the "
                        "legacy pre-built-synchroniser run")
    for label in ("flat-warmup", "bucketed-warmup"):
        row = results[label]
        if not (row["k_first"] > row["k_last"]):
            failures.append(f"{label}: warm-up must start denser than it ends")
    if results["flat-warmup"]["k_last"] != target_k:
        failures.append("flat-warmup must land on the configured target k")
    flat_volume = results["flat-constant"]["total_volume_elements"]
    bucketed = results["bucketed-constant"]
    if not (flat_volume / 3 <= bucketed["total_volume_elements"] <= flat_volume * 3):
        failures.append("bucketed volume must stay within 3x of flat")
    if bucketed["rounds"] <= results["flat-constant"]["rounds"]:
        failures.append("bucketing must expose its extra latency rounds honestly")
    if failures:
        print("E2E THROUGHPUT GATE FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("gates passed: facade==legacy bit-equality, warm-up trajectory, "
          "bucketed volume/rounds accounting")
    return 0


if __name__ == "__main__":
    sys.exit(main())
