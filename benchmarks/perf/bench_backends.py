"""Execution-backend trajectory point (PR 7): real multi-core scaling.

Everything this repository timed before PR 7 was *simulated* time from the
alpha-beta model; wall-clock numbers were single-process Python costs.
This bench records the repository's first real parallel speedup curve: the
same training run executed on the :class:`MultiprocessCluster` backend at
P = 1, 2, 4 worker *processes*, strong scaling (fixed global batch, each
worker computes its ``G/P`` share concurrently), flat and per-layer
bucketed SparDL plus the dense reference.

Honesty of the workload
-----------------------
The per-iteration work has two parts, both recorded:

* real NumPy forward/backward of each replica's batch share (scales with
  available CPU cores), and
* an *emulated accelerator phase*: each worker blocks for
  ``device_seconds_per_sample x batch`` of real wall time after its
  backward pass, modelling the paper's GPU compute.  On worker processes
  these phases genuinely overlap — that is precisely what a multi-worker
  cluster buys — so the measured speedup is real wall-clock, but its
  magnitude on a small CPU host is dominated by the emulated device phase.
  The report states the emulation constant, the per-run emulated device
  seconds, and a ``no_emulation_reference`` sweep (pure CPU, device = 0)
  so nobody mistakes the curve for CPU-only scaling.

Deterministic gates (run before any timing):

* cross-backend equivalence — the mp-backend training run produces
  bit-identical final parameters and per-iteration losses to the
  simulated in-process reference, including a quantized (``bits=8``)
  configuration;
* real speedup — at least one SparDL configuration reaches >= 1.5x
  wall-clock speedup at P=4 over P=1.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_backends.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import make_factory
from repro.comm.cluster import SimulatedCluster
from repro.comm.mp_backend import MultiprocessCluster
from repro.data.synthetic import synthetic_image_classification
from repro.data.datasets import train_test_split
from repro.nn.layers import Flatten
from repro.nn.models import build_mlp
from repro.nn.module import Sequential
from repro.nn.parameter import flatten_values
from repro.training.trainer import DistributedTrainer, TrainerConfig

GLOBAL_BATCH = 16
WORKER_COUNTS = (1, 2, 4)
DEVICE_SECONDS_PER_SAMPLE = 0.010
IMAGE_SIZE = 8
NUM_CLASSES = 8

SPECS = {
    "spardl-flat": "spardl?density=0.02",
    "spardl-bucketed": "spardl?density=0.02&buckets=layer",
    "dense": "dense",
}

EQUIVALENCE_SPECS = ("spardl?density=0.02", "spardl?density=0.02&bits=8",
                     "dense")


def _model_factory(seed: int) -> Sequential:
    mlp = build_mlp(input_dim=IMAGE_SIZE * IMAGE_SIZE, hidden_dims=[128, 64],
                    num_outputs=NUM_CLASSES, seed=seed)
    return Sequential(Flatten(), *mlp.layers)


def _build_trainer(spec: str, cluster, samples: int, *,
                   device_seconds: float, compute_mode: str = "auto"):
    dataset = synthetic_image_classification(
        num_samples=samples, num_classes=NUM_CLASSES, image_size=IMAGE_SIZE,
        channels=1, seed=3)
    train_set, test_set = train_test_split(dataset, test_fraction=0.2, seed=3)
    config = TrainerConfig(
        batch_size=GLOBAL_BATCH // cluster.num_workers,  # strong scaling
        learning_rate=0.05, seed=9, compute_mode=compute_mode,
        device_seconds_per_sample=device_seconds)
    return DistributedTrainer(cluster, make_factory(spec), _model_factory,
                              train_set, test_set, config=config)


def _time_run(spec: str, num_workers: int, samples: int, epochs: int,
              device_seconds: float) -> dict:
    with MultiprocessCluster(num_workers) as cluster:
        trainer = _build_trainer(spec, cluster, samples,
                                 device_seconds=device_seconds)
        start = time.perf_counter()
        history = trainer.train(epochs, eval_every=epochs + 1)
        wall = time.perf_counter() - start
    iterations = len(history.iterations)
    # Each of the P concurrent workers sleeps device_seconds * (G/P) per
    # iteration; this is the *ideal* per-run device wall time.
    ideal_device = device_seconds * (GLOBAL_BATCH / num_workers) * iterations
    return {
        "P": num_workers,
        "iterations": iterations,
        "wall_s": round(wall, 4),
        "iterations_per_sec": round(iterations / wall, 3) if wall else None,
        "ideal_device_wall_s": round(ideal_device, 4),
        "cpu_and_overhead_wall_s": round(max(0.0, wall - ideal_device), 4),
        "final_train_loss": history.epochs[-1].train_loss,
    }


def _equivalence_gate(samples: int, epochs: int) -> dict:
    """The mp backend must train bit-identically to the sim reference."""
    checked = {}
    for spec in EQUIVALENCE_SPECS:
        with SimulatedCluster(2) as sim:
            reference = _build_trainer(spec, sim, samples, device_seconds=0.0,
                                       compute_mode="inline")
            ref_history = reference.train(epochs, eval_every=epochs + 1)
            ref_params = flatten_values(reference.global_model.parameters())
        with MultiprocessCluster(2) as mp:
            measured = _build_trainer(spec, mp, samples, device_seconds=0.0,
                                      compute_mode="offload")
            mp_history = measured.train(epochs, eval_every=epochs + 1)
            mp_params = flatten_values(measured.global_model.parameters())
        identical_params = bool(np.array_equal(ref_params, mp_params))
        identical_losses = (
            [record.loss for record in ref_history.iterations]
            == [record.loss for record in mp_history.iterations])
        checked[spec] = {
            "identical_final_parameters": identical_params,
            "identical_iteration_losses": identical_losses,
        }
    return checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR7.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="one epoch / fewer samples (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    epochs = 1 if args.quick else 2
    samples = 80 if args.quick else 120  # -> 4 / 6 iterations per epoch

    equivalence = _equivalence_gate(samples, epochs)

    results: dict = {}
    for label, spec in SPECS.items():
        results[label] = [
            _time_run(spec, P, samples, epochs, DEVICE_SECONDS_PER_SAMPLE)
            for P in WORKER_COUNTS
        ]
    no_emulation = {
        label: [_time_run(spec, P, samples, epochs, 0.0)
                for P in WORKER_COUNTS]
        for label, spec in SPECS.items()
    }

    def speedup(rows):
        base = rows[0]["wall_s"]
        return {f"P={row['P']}": round(base / row["wall_s"], 3)
                for row in rows}

    speedups = {label: speedup(rows) for label, rows in results.items()}

    report = {
        "bench": "PR7 execution backends: multiprocess wall-clock scaling",
        "hardware": {
            "os_cpu_count": os.cpu_count(),
            "note": ("speedups at P > os_cpu_count come from the overlapped "
                     "emulated device phases, not from CPU parallelism; see "
                     "no_emulation_reference for the CPU-only curve"),
        },
        "config": {
            "global_batch": GLOBAL_BATCH,
            "scaling": "strong (per-worker batch = global_batch / P)",
            "worker_counts": list(WORKER_COUNTS),
            "samples": samples,
            "epochs": epochs,
            "device_seconds_per_sample": DEVICE_SECONDS_PER_SAMPLE,
            "model_parameters": _model_factory(0).num_parameters(),
        },
        "equivalence_gate": equivalence,
        "results": results,
        "wall_clock_speedup_vs_P1": speedups,
        "no_emulation_reference": no_emulation,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for label, rows in results.items():
        for row in rows:
            ratio = speedups[label][f"P={row['P']}"]
            print(f"{label:16s} P={row['P']} {row['wall_s']:7.3f} s wall "
                  f"({row['iterations_per_sec']:6.2f} it/s, ideal device "
                  f"{row['ideal_device_wall_s']:6.3f} s) speedup {ratio:5.2f}x")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    failures = []
    for spec, checks in equivalence.items():
        for check, passed in checks.items():
            if not passed:
                failures.append(f"equivalence gate: {spec}: {check}")
    best = max(speedups[label]["P=4"]
               for label in ("spardl-flat", "spardl-bucketed"))
    if best < 1.5:
        failures.append(
            f"speedup gate: best SparDL P=4 speedup {best:.2f}x < 1.5x")
    if failures:
        print("BACKEND BENCH GATE FAILED: " + "; ".join(failures),
              file=sys.stderr)
        return 1
    print(f"gates passed: mp == sim bit-identical training "
          f"({len(equivalence)} specs), best SparDL P=4 speedup {best:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
