"""Fault/straggler/churn degradation curves (PR 6): SparDL vs dense.

Sweeps three failure axes the paper's perfectly reliable testbed never
measures, through the seeded :class:`~repro.comm.faults.FaultPlan` layer:

* **drop-rate sweep** — message drop probability 0 to 0.5 under bounded
  retry-with-backoff: extra billed rounds, retries, losses, the
  gradient-accuracy proxy (relative L2 distance from the exact dense sum)
  and the residual-conservation error;
* **straggler sweep** — straggler severity 1x to 8x (with a slow-NIC
  ingress override on one worker): per-iteration simulated time where
  compute waits for the slowest worker and rounds are priced as the max
  over per-worker critical paths;
* **churn sweep** — 0 to 3 crash/join events mid-run: conservation and
  worker agreement across team re-partitions.

Deterministic gates (wall time is never gated):

* **no-fault identity** — the zero-rate leg of every sweep matches a run
  with no plan installed exactly (rounds, volume, per-worker accounting);
* **residual conservation** — ``sum_t global_t + residuals == sum_t
  inputs`` to 1e-9 for SparDL in every scenario, including under losses
  and across membership transitions;
* **dense exactness** — the dense baseline's reliable transport keeps its
  result exact at every drop rate;
* **honest billing** — every faulted run records ``rounds == fault-free
  rounds + fault_extra_rounds`` and drops/retries are visible in the
  counters;
* **straggler monotonicity** — simulated iteration time grows strictly
  with straggler severity (the factors are common random numbers across
  severities, so the curve is noise-free).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_faults.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.api import make
from repro.comm.cluster import SimulatedCluster
from repro.comm.faults import FaultPlan, MembershipEvent
from repro.comm.network import ETHERNET
from repro.core.pipeline import RetryPolicy, SyncSession
from repro.training.timing import ComputeProfile, iteration_time

NUM_WORKERS = 8
NUM_ELEMENTS = 3_000
DENSITY = 0.02
ITERATIONS = 6
SEED = 2024

DROP_RATES = (0.0, 0.1, 0.3, 0.5)
STRAGGLER_SEVERITIES = (1.0, 2.0, 4.0, 8.0)
STRAGGLER_RATE = 0.3
CHURN_LEVELS = (0, 1, 2, 3)

COMPUTE = ComputeProfile(compute_time_per_update=5e-3, paper_parameters=1e6)

METHOD_SPECS = {
    "spardl": f"spardl?density={DENSITY:g}&teams=2",
    "dense": "dense",
}


def _gradients(num_workers: int, iteration: int):
    return {worker: np.random.default_rng(9000 + 100 * iteration + worker)
                      .normal(size=NUM_ELEMENTS)
            for worker in range(NUM_WORKERS) if worker < num_workers}


def _churn_events(level: int):
    """0..3 membership events spread over the run (crash, join, crash)."""
    schedule = [MembershipEvent(iteration=2, kind="crash", worker=3),
                MembershipEvent(iteration=3, kind="join"),
                MembershipEvent(iteration=4, kind="crash", worker=0)]
    return schedule[:level]


def run_scenario(method: str, plan, iterations: int, failures: list,
                 label: str) -> dict:
    """Drive one (method, plan) scenario; returns its degradation row."""
    cluster = SimulatedCluster(NUM_WORKERS)
    if plan is not None:
        cluster.install_fault_plan(plan)
    sync = make(METHOD_SPECS[method], cluster, num_elements=NUM_ELEMENTS)
    session = SyncSession(sync)
    injected = np.zeros(NUM_ELEMENTS)
    delivered = np.zeros(NUM_ELEMENTS)
    proxy_errors = []
    sim_time = 0.0
    memberships = []
    network = (plan.heterogeneous_network(NUM_WORKERS, ETHERNET)
               if plan is not None and (plan.worker_profiles or plan.link_profiles)
               else ETHERNET)
    for iteration in range(iterations):
        session.poll_membership()
        memberships.append(session.num_workers)
        gradients = _gradients(session.num_workers, iteration)
        exact = sum(gradients.values())
        injected += exact
        result = session.step(gradients)
        if not result.is_consistent:
            failures.append(f"{label}: workers disagree at iteration {iteration}")
        delivered += result.gradient(0)
        proxy_errors.append(float(np.linalg.norm(result.gradient(0) - exact)
                                  / np.linalg.norm(exact)))
        factors = (plan.straggler_factors(iteration, session.num_workers)
                   if plan is not None else None)
        sim_time += iteration_time(result.stats, network, COMPUTE,
                                   compute_factors=factors).total
    residuals = getattr(sync, "residuals", None)
    conservation = 0.0
    if residuals is not None:
        conservation = float(np.abs(delivered + residuals.total_residual()
                                    - injected).max())
    else:
        conservation = float(np.abs(delivered - injected).max())
    stats = session.cumulative_stats
    return {
        "label": label,
        "method": method,
        "iterations": iterations,
        "rounds": stats.rounds,
        "fault_extra_rounds": stats.fault_extra_rounds,
        "dropped_messages": stats.dropped_messages,
        "retried_messages": stats.retried_messages,
        "lost_messages": stats.lost_messages,
        "forced_deliveries": stats.forced_deliveries,
        "delayed_messages": stats.delayed_messages,
        "total_volume_elements": stats.total_volume,
        "sim_time_s": sim_time,
        "proxy_error_mean": float(np.mean(proxy_errors)),
        "conservation_error": conservation,
        "memberships": memberships,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR6.json",
                        help="path of the JSON degradation report to write")
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations and grid points (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    iterations = 3 if args.quick else ITERATIONS
    drop_rates = DROP_RATES[:3] if args.quick else DROP_RATES
    severities = STRAGGLER_SEVERITIES[:3] if args.quick else STRAGGLER_SEVERITIES
    churn_levels = CHURN_LEVELS[:3] if args.quick else CHURN_LEVELS
    failures: list = []

    # ------------------------------------------------------------------
    # axis 1: drop rate under retry-with-backoff
    # ------------------------------------------------------------------
    drop_sweep = {method: [] for method in METHOD_SPECS}
    baseline = {}
    for method in METHOD_SPECS:
        baseline[method] = run_scenario(
            method, None, iterations, failures, f"{method}-noplan")
        for rate in drop_rates:
            plan = FaultPlan(seed=SEED, drop_rate=rate,
                             retry=RetryPolicy(max_retries=2))
            row = run_scenario(method, plan, iterations, failures,
                               f"{method}-drop{rate:g}")
            row["drop_rate"] = rate
            drop_sweep[method].append(row)

    # ------------------------------------------------------------------
    # axis 2: straggler severity x slow-NIC heterogeneity
    # ------------------------------------------------------------------
    straggler_sweep = {method: [] for method in METHOD_SPECS}
    for method in METHOD_SPECS:
        for severity in severities:
            plan = FaultPlan(
                seed=SEED,
                straggler_rate=0.0 if severity == 1.0 else STRAGGLER_RATE,
                straggler_slowdown=max(severity, 1.0),
                worker_profiles={0: ETHERNET.scaled(beta_factor=severity)},
            )
            row = run_scenario(method, plan, iterations, failures,
                               f"{method}-straggle{severity:g}x")
            row["straggler_severity"] = severity
            row["straggler_rate"] = 0.0 if severity == 1.0 else STRAGGLER_RATE
            straggler_sweep[method].append(row)
        clean = straggler_sweep[method][0]["sim_time_s"]
        for row in straggler_sweep[method]:
            row["slowdown_vs_clean"] = row["sim_time_s"] / clean

    # ------------------------------------------------------------------
    # axis 3: membership churn
    # ------------------------------------------------------------------
    churn_sweep = {method: [] for method in METHOD_SPECS}
    for method in METHOD_SPECS:
        for level in churn_levels:
            plan = FaultPlan(seed=SEED, events=_churn_events(level))
            row = run_scenario(method, plan, iterations, failures,
                               f"{method}-churn{level}")
            row["churn_events"] = level
            churn_sweep[method].append(row)

    report = {
        "bench": "PR6 fault, straggler and churn degradation curves",
        "config": {
            "num_workers": NUM_WORKERS,
            "num_elements": NUM_ELEMENTS,
            "density": DENSITY,
            "iterations": iterations,
            "seed": SEED,
            "drop_rates": list(drop_rates),
            "straggler_severities": list(severities),
            "straggler_rate": STRAGGLER_RATE,
            "churn_levels": list(churn_levels),
            "retry": {"max_retries": 2, "backoff": 2.0},
            "network": ETHERNET.name,
            "methods": dict(METHOD_SPECS),
        },
        "drop_sweep": drop_sweep,
        "straggler_sweep": straggler_sweep,
        "churn_sweep": churn_sweep,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for method in METHOD_SPECS:
        for row in drop_sweep[method]:
            print(f"{row['label']:18s} rounds {row['rounds']:4d} "
                  f"(+{row['fault_extra_rounds']:3d}) | dropped "
                  f"{row['dropped_messages']:4d} lost {row['lost_messages']:3d} "
                  f"| proxy {row['proxy_error_mean']:.4f} | "
                  f"conservation {row['conservation_error']:.2e}")
        for row in straggler_sweep[method]:
            print(f"{row['label']:18s} sim time {row['sim_time_s']*1e3:8.2f} ms "
                  f"({row['slowdown_vs_clean']:.2f}x clean)")
        for row in churn_sweep[method]:
            print(f"{row['label']:18s} memberships {row['memberships']} | "
                  f"conservation {row['conservation_error']:.2e}")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0

    # no-fault identity: zero-rate leg == no plan installed
    for method in METHOD_SPECS:
        zero = drop_sweep[method][0]
        plain = baseline[method]
        for key in ("rounds", "total_volume_elements", "proxy_error_mean"):
            if zero[key] != plain[key]:
                failures.append(f"{method}: zero-rate plan must match the "
                                f"reliable path ({key}: {zero[key]} vs {plain[key]})")
        if zero["fault_extra_rounds"] or zero["dropped_messages"]:
            failures.append(f"{method}: zero-rate plan must inject nothing")
    # conservation + honest billing on every scenario
    for method in METHOD_SPECS:
        for row in (drop_sweep[method] + straggler_sweep[method]
                    + churn_sweep[method]):
            if row["conservation_error"] > 1e-9:
                failures.append(f"{row['label']}: conservation violated "
                                f"({row['conservation_error']:.2e})")
    for method in METHOD_SPECS:
        fault_free_rounds = drop_sweep[method][0]["rounds"]
        for row in drop_sweep[method][1:]:
            if row["dropped_messages"] == 0:
                failures.append(f"{row['label']}: expected drops at rate "
                                f"{row['drop_rate']}")
            if row["rounds"] != fault_free_rounds + row["fault_extra_rounds"]:
                failures.append(f"{row['label']}: rounds not honestly billed")
    # dense stays exact at every drop rate (reliable transport)
    for row in drop_sweep["dense"]:
        if row["proxy_error_mean"] > 1e-12:
            failures.append(f"{row['label']}: dense must stay exact under drops")
    # straggler curve strictly degrades (common random numbers across severities)
    for method in METHOD_SPECS:
        times = [row["sim_time_s"] for row in straggler_sweep[method]]
        if not all(earlier < later for earlier, later in zip(times, times[1:])):
            failures.append(f"{method}: sim time must grow with straggler severity")
    # churn actually changed membership at the scheduled levels
    for method in METHOD_SPECS:
        for row in churn_sweep[method]:
            expected_changes = min(row["churn_events"], iterations - 1)
            changes = sum(1 for a, b in zip(row["memberships"],
                                            row["memberships"][1:]) if a != b)
            if changes < min(expected_changes, 1) and row["churn_events"]:
                failures.append(f"{row['label']}: membership never changed")

    if failures:
        print("FAULT BENCH GATE FAILED: " + "; ".join(failures[:10]),
              file=sys.stderr)
        return 1
    print("gates passed: no-fault identity, residual conservation under "
          "drops/churn, dense exactness, honest retry billing, straggler "
          "monotonicity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
