"""Observability trajectory point (PR 9): tracing overhead + trace validity.

Three legs, recorded as ``BENCH_PR9.json`` (plus the exported Chrome
trace ``BENCH_PR9_trace.json``, uploaded by CI next to it):

1. **Overhead** — the same simulated training run untraced and with
   ``trace=comm`` (the most expensive level: a span per stage and an
   instant per wire message).  Gates: the traced run is *bit-identical*
   to the untraced one (final parameters, per-iteration losses, rounds
   and messages — tracing observes, it never participates), the tracer's
   ``messages_total`` equals the cumulative ``CommStats.total_messages``,
   and the min-of-repeats wall-clock overhead stays below **5%**.
2. **Content** — a bucketed SparDL run under a lossy ``FaultPlan`` with
   the overlap-aware trainer, exported to Chrome trace-event JSON.
   Gates: the file re-validates (``validate_chrome_trace``: well-formed,
   monotone, properly nested spans) and covers the five event categories
   ``stage``, ``message``, ``retry``, ``iteration`` and ``overlap``.
3. **Per-rank streams** — a short ``backend=mp:2`` run; the two worker
   processes record their own spans, drained into the merged trace at
   close.  Gate: the export carries both worker pids (1000 and 1001).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_trace.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import make, make_factory
from repro.comm.cluster import SimulatedCluster
from repro.comm.faults import FaultPlan
from repro.comm.network import ETHERNET
from repro.core.pipeline import SyncSession
from repro.nn.parameter import flatten_values
from repro.obs import validate_chrome_trace, worker_pid
from repro.training.cases import get_case
from repro.training.trainer import DistributedTrainer, TrainerConfig

NUM_WORKERS = 4
CASE_ID = 5
SAMPLES = 160  # 5 iterations per epoch at batch 8 over 4 workers
EPOCHS = 2
DENSITY = 0.02
REPEATS = 5
REQUIRED_CATEGORIES = ("stage", "message", "retry", "iteration", "overlap")


def run_training(trace: str, epochs: int) -> dict:
    """One deterministic simulated training run; returns its fingerprint."""
    case = get_case(CASE_ID)
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=0)
    trainer = DistributedTrainer(
        SimulatedCluster(NUM_WORKERS),
        make_factory(f"spardl?density={DENSITY:g}"),
        case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0, trace=trace),
        network=ETHERNET, compute_profile=case.compute_profile,
        case_name=case.name,
    )
    start = time.perf_counter()
    history = trainer.train(epochs)
    wall = time.perf_counter() - start
    stats = trainer.session.cumulative_stats
    fingerprint = {
        "wall_s": wall,
        "final_params": flatten_values(trainer.replicas[0].parameters()),
        "iteration_losses": [record.loss for record in history.iterations],
        "rounds": stats.rounds,
        "total_messages": stats.total_messages,
        "total_volume": stats.total_volume,
    }
    if trainer.tracer is not None:
        snapshot = trainer.tracer.snapshot()
        fingerprint["traced_messages"] = sum(
            value for key, value in snapshot.items()
            if key.startswith("messages_total{"))
        fingerprint["events"] = len(trainer.tracer.events)
    return fingerprint


def leg_overhead(epochs: int, repeats: int) -> tuple[dict, list[str]]:
    """Traced-vs-untraced repeats; min-of-repeats overhead + bit-equality."""
    failures: list[str] = []
    # One unrecorded warm-up per mode, then interleaved repeats: allocator
    # and cache warm-up land outside the timings, and slow drift (CPU
    # frequency, co-tenants) hits both modes evenly instead of whichever
    # batch ran second.  min-of-repeats then prices the quiet iterations.
    run_training("off", epochs)
    run_training("comm", epochs)
    untraced, traced = [], []
    for _ in range(repeats):
        untraced.append(run_training("off", epochs))
        traced.append(run_training("comm", epochs))

    reference = untraced[0]
    for label, runs in (("untraced", untraced[1:]), ("traced", traced)):
        for run in runs:
            if not np.array_equal(run["final_params"], reference["final_params"]):
                failures.append(f"{label} run diverged: final parameters differ")
            if run["iteration_losses"] != reference["iteration_losses"]:
                failures.append(f"{label} run diverged: per-iteration losses differ")
            if (run["rounds"], run["total_messages"], run["total_volume"]) != (
                    reference["rounds"], reference["total_messages"],
                    reference["total_volume"]):
                failures.append(f"{label} run diverged: CommStats differ")
    for run in traced:
        if run["traced_messages"] != run["total_messages"]:
            failures.append(
                f"tracer counted {run['traced_messages']} messages but "
                f"CommStats recorded {run['total_messages']}")

    untraced_wall = min(run["wall_s"] for run in untraced)
    traced_wall = min(run["wall_s"] for run in traced)
    overhead = traced_wall / untraced_wall - 1.0
    report = {
        "repeats": repeats,
        "untraced_wall_s": [run["wall_s"] for run in untraced],
        "traced_wall_s": [run["wall_s"] for run in traced],
        "untraced_min_s": untraced_wall,
        "traced_min_s": traced_wall,
        "overhead": overhead,
        "events_per_run": traced[0]["events"],
        "messages_per_run": reference["total_messages"],
        "bit_identical": not failures,
    }
    return report, failures


def leg_content(epochs: int, trace_path: Path) -> tuple[dict, list[str]]:
    """Bucketed + faulty + overlapped run, exported and re-validated."""
    failures: list[str] = []
    case = get_case(CASE_ID)
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=0)
    cluster = SimulatedCluster(NUM_WORKERS)
    cluster.install_fault_plan(FaultPlan(seed=9, drop_rate=0.25))
    trainer = DistributedTrainer(
        cluster, make_factory(f"spardl?density={DENSITY:g}&buckets=layer"),
        case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0, trace="comm",
                             overlap_comm=True),
        network=ETHERNET, compute_profile=case.compute_profile,
        case_name=case.name,
    )
    trainer.train(epochs)
    trainer.tracer.export_chrome(trace_path)
    try:
        info = validate_chrome_trace(trace_path)
    except ValueError as error:
        return {"trace_file": str(trace_path)}, [f"exported trace invalid: {error}"]
    missing = [cat for cat in REQUIRED_CATEGORIES if cat not in info["categories"]]
    if missing:
        failures.append(f"trace is missing event categories {missing}")
    if info["spans"] <= 0 or info["instants"] <= 0:
        failures.append("trace must contain both spans and instant markers")
    report = {
        "trace_file": str(trace_path),
        "validated": dict(info),
        "fault_events": {
            key: value for key, value in trainer.tracer.snapshot().items()
            if key.startswith("fault_events_total{")},
    }
    return report, failures


def leg_mp_streams(iterations: int) -> tuple[dict, list[str]]:
    """backend=mp:2 run: both worker processes stream into one trace."""
    failures: list[str] = []
    sync = make(f"spardl?density=0.05&backend=mp:2&trace=comm",
                num_elements=2_000)
    try:
        session = SyncSession(sync)
        for index in range(iterations):
            grads = {rank: np.random.default_rng(100 * index + rank)
                     .normal(size=2_000) for rank in sync.cluster.ranks}
            session.step(grads)
    finally:
        sync.cluster.close()
    document = sync.tracer.export_chrome()
    info = validate_chrome_trace(document)
    expected_pids = {worker_pid(0), worker_pid(1)}
    present = expected_pids & set(info["pids"])
    if present != expected_pids:
        failures.append(
            f"merged trace must carry both worker streams; found pids "
            f"{sorted(info['pids'])}")
    worker_spans = [event for event in document["traceEvents"]
                    if event.get("pid") in expected_pids
                    and event.get("ph") == "X"]
    if not worker_spans:
        failures.append("worker streams must contain exchange spans")
    report = {
        "iterations": iterations,
        "validated": dict(info),
        "worker_pids": sorted(present),
        "worker_spans": len(worker_spans),
    }
    return report, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR9.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--trace-output", default="BENCH_PR9_trace.json",
                        help="path of the exported Chrome trace")
    parser.add_argument("--quick", action="store_true",
                        help="one epoch, two repeats (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    epochs = 1 if args.quick else EPOCHS
    repeats = 2 if args.quick else REPEATS

    overhead_report, failures = leg_overhead(epochs, repeats)
    content_report, content_failures = leg_content(epochs,
                                                   Path(args.trace_output))
    mp_report, mp_failures = leg_mp_streams(iterations=2 if args.quick else 3)
    failures += content_failures + mp_failures

    report = {
        "bench": "PR9 observability: tracing overhead + Chrome-trace validity",
        "config": {
            "num_workers": NUM_WORKERS,
            "case": get_case(CASE_ID).name,
            "samples": SAMPLES,
            "epochs": epochs,
            "density": DENSITY,
            "trace_level": "comm",
        },
        "overhead": overhead_report,
        "content": content_report,
        "mp_streams": mp_report,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"overhead: traced {overhead_report['traced_min_s']:.3f} s vs "
          f"untraced {overhead_report['untraced_min_s']:.3f} s "
          f"({overhead_report['overhead']:+.2%}), "
          f"{overhead_report['events_per_run']} events per run, "
          f"bit-identical: {overhead_report['bit_identical']}")
    print(f"content: {content_report.get('validated', {})}")
    print(f"mp: pids {mp_report['worker_pids']}, "
          f"{mp_report['worker_spans']} worker spans")
    print(f"wrote {args.output} and {args.trace_output}")

    if args.no_gate:
        return 0
    # The wall-clock gate is the only noise-sensitive one; everything else
    # above is deterministic.
    if overhead_report["overhead"] >= 0.05:
        failures.append(
            f"tracing overhead {overhead_report['overhead']:.2%} exceeds the "
            "5% end-to-end budget")
    if failures:
        print("TRACE BENCH GATE FAILED: " + "; ".join(failures),
              file=sys.stderr)
        return 1
    print("gates passed: bit-identical traced runs, <5% overhead, valid "
          "nested Chrome trace covering "
          + "/".join(REQUIRED_CATEGORIES)
          + ", per-rank mp streams merged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
