"""Compute/comm overlap + bucket fusion trajectory point (PR 8).

The payoff the per-layer bucketing of PR 4 has been waiting for: with the
overlap-aware iteration timing (``training/timing.py``) and the
MGWFBP/ASC fusion planners (``core/fusion.py``), bucketed SparDL finally
*hides* communication behind the backward pass instead of paying ~9x
latency rounds for nothing.  This bench trains the same scaled-down case
as BENCH_PR4 under four layouts — flat, naive per-layer buckets, and the
two ``buckets=auto`` fusion planners — and records, per layout, the
simulated wall-clock with overlap, the hidden-communication total, and
the fusion plan's bucket counts and predicted critical-path breakdown.
Emitted as ``BENCH_PR8.json``, uploaded by CI next to the earlier
trajectory points.

Deterministic gates (wall time is recorded but never gated):

* **fused beats flat**: ``buckets=auto`` (MGWFBP) simulated wall-clock is
  *strictly below* flat SparDL — the first configuration in this repo
  where bucketing wins end-to-end;
* **no-overlap bit-exactness**: the same auto-fused run with
  ``TrainerConfig(overlap_comm=False)`` reproduces the historical
  sequential ``compute + comm`` sum bit for bit (per iteration); its
  compute times are bit-identical to the overlapped run's and its
  communication identical up to float association (per-bucket vs merged
  summation order) — overlap only re-schedules, it never changes what is
  measured;
* **overlap accounting**: every overlapped bucketed run reports
  ``0 <= hidden_comm <= comm`` and ``total == compute + comm - hidden``;
* **plans partition the model**: each planner's bucket sizes sum to the
  model's parameter count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_overlap.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import make_factory
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.training.cases import get_case
from repro.training.trainer import DistributedTrainer, TrainerConfig

NUM_WORKERS = 4
CASE_ID = 5
SAMPLES = 160  # 5 iterations per epoch at batch 8 over 4 workers
EPOCHS = 2
DENSITY = 0.02


def build_configs():
    """label -> facade spec for the four benchmarked layouts."""
    return {
        "flat": f"spardl?density={DENSITY:g}",
        "bucketed-layer": f"spardl?density={DENSITY:g}&buckets=layer",
        "auto-mgwfbp": f"spardl?density={DENSITY:g}&buckets=auto:mgwfbp",
        "auto-asc": f"spardl?density={DENSITY:g}&buckets=auto:asc",
    }


def run_config(spec: str, epochs: int, samples: int,
               overlap: bool = True) -> dict:
    case = get_case(CASE_ID)
    train_set, test_set = case.build_datasets(num_samples=samples, seed=0)
    trainer = DistributedTrainer(
        SimulatedCluster(NUM_WORKERS), make_factory(spec), case.build_model,
        train_set, test_set,
        config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0,
                             check_consistency=True, overlap_comm=overlap),
        network=ETHERNET, compute_profile=case.compute_profile,
        case_name=case.name,
    )
    start = time.perf_counter()
    history = trainer.train(epochs)
    wall = time.perf_counter() - start
    plan = getattr(trainer.synchronizer, "fusion_plan", None)
    num_buckets = getattr(trainer.synchronizer, "num_buckets", 1)
    row = {
        "spec": spec,
        "overlap": overlap,
        "num_buckets": num_buckets,
        "iterations": len(history.iterations),
        "wall_s": wall,
        "sim_total_time_s": history.total_time,
        "sim_comm_time_s": history.total_communication_time,
        "sim_compute_time_s": history.total_compute_time,
        "sim_hidden_comm_s": history.total_hidden_comm_time,
        "rounds": trainer.session.cumulative_stats.rounds,
        "final_train_loss": history.epochs[-1].train_loss,
        "iteration_times_s": [r.total_time for r in history.iterations],
        "iteration_decomposition": [
            {"compute_s": r.compute_time, "comm_s": r.communication_time,
             "hidden_s": r.hidden_comm_time}
            for r in history.iterations
        ],
    }
    if plan is not None:
        # Per-plan bucket counts + predicted critical-path breakdown.
        row["fusion_plan"] = plan.breakdown()
        row["model_parameters"] = plan.total_elements
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR8.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="one epoch (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    epochs = 1 if args.quick else EPOCHS
    results = {label: run_config(spec, epochs, SAMPLES)
               for label, spec in build_configs().items()}
    # The bit-exactness reference: identical auto-fused run, overlap off.
    sequential = run_config(build_configs()["auto-mgwfbp"], epochs, SAMPLES,
                            overlap=False)

    report = {
        "bench": "PR8 compute/comm overlap + MGWFBP/ASC bucket fusion",
        "config": {
            "num_workers": NUM_WORKERS,
            "case": get_case(CASE_ID).name,
            "samples": SAMPLES,
            "epochs": epochs,
            "density": DENSITY,
            "network": ETHERNET.name,
        },
        "results": results,
        "sequential_reference": sequential,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for label, row in results.items():
        hidden_share = (row["sim_hidden_comm_s"] / row["sim_comm_time_s"]
                        if row["sim_comm_time_s"] else 0.0)
        print(f"{label:15s} buckets {row['num_buckets']:3d} | "
              f"sim total {row['sim_total_time_s']:7.3f} s "
              f"(comm {row['sim_comm_time_s']:7.3f} s, "
              f"hidden {row['sim_hidden_comm_s']:7.3f} s = {hidden_share:5.1%}) | "
              f"rounds {row['rounds']:5d} | loss {row['final_train_loss']:.4f}")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    failures = []
    flat = results["flat"]
    fused = results["auto-mgwfbp"]
    # THE gate of this PR: fused bucketed strictly beats flat wall-clock.
    if not fused["sim_total_time_s"] < flat["sim_total_time_s"]:
        failures.append(
            f"auto-fused bucketed SparDL must beat flat on simulated "
            f"wall-clock ({fused['sim_total_time_s']:.4f} s vs "
            f"{flat['sim_total_time_s']:.4f} s)")
    # Overlap accounting invariants on every overlapped layout.
    for label, row in results.items():
        if not 0.0 <= row["sim_hidden_comm_s"] <= row["sim_comm_time_s"] + 1e-9:
            failures.append(f"{label}: hidden comm must stay within [0, comm]")
        expected = (row["sim_compute_time_s"] + row["sim_comm_time_s"]
                    - row["sim_hidden_comm_s"])
        if abs(row["sim_total_time_s"] - expected) > 1e-9:
            failures.append(f"{label}: total must be compute + comm - hidden")
    if flat["sim_hidden_comm_s"] != 0.0:
        failures.append("flat runs cannot hide communication")
    # Bit-exactness: overlap off == the historical sequential sum, and the
    # decomposition matches the overlapped run exactly.
    for fast, slow in zip(results["auto-mgwfbp"]["iteration_decomposition"],
                          sequential["iteration_decomposition"]):
        if slow["hidden_s"] != 0.0:
            failures.append("overlap_comm=False must hide nothing")
            break
        if fast["compute_s"] != slow["compute_s"]:
            failures.append("overlap must not change the measured "
                            "compute time (bit-exact)")
            break
        # comm is the same measured quantity summed per bucket vs merged;
        # only float association may differ.
        if abs(fast["comm_s"] - slow["comm_s"]) > 1e-9 * max(1.0, slow["comm_s"]):
            failures.append("overlap must not change the measured "
                            "communication time")
            break
    seq_totals = sequential["iteration_times_s"]
    seq_expected = [d["compute_s"] + d["comm_s"]
                    for d in sequential["iteration_decomposition"]]
    if seq_totals != seq_expected:
        failures.append("no-overlap totals must equal compute + comm bit-exactly")
    # Plans must partition the model.
    for label in ("auto-mgwfbp", "auto-asc"):
        row = results[label]
        plan = row["fusion_plan"]
        if sum(plan["bucket_sizes"]) != row["model_parameters"]:
            failures.append(f"{label}: plan bucket sizes must sum to the "
                            "model's parameter count")
        if plan["num_buckets"] != row["num_buckets"]:
            failures.append(f"{label}: synchroniser must use the planned layout")
    if failures:
        print("OVERLAP BENCH GATE FAILED: " + "; ".join(failures),
              file=sys.stderr)
        return 1
    print("gates passed: fused < flat wall-clock, overlap accounting, "
          "no-overlap bit-exactness, plans partition the model")
    return 0


if __name__ == "__main__":
    sys.exit(main())
