"""Independent re-derivation of the quantized wire accounting.

The per-message accounting gates (``tests/test_quantized_pipeline.py`` and
``benchmarks/perf/bench_quantized.py``) must not mirror
``QuantizedCompressor.price`` — a bug copied into the checker would keep
both green.  This module is the single shared *reference* implementation
they check against, written from the accounting contract rather than from
the pricer's code:

* a sparse unit of ``nnz`` entries bills ``nnz`` full-precision indices,
  ``nnz * bits/32`` value elements and one scale element (``PackedBags``:
  one scale per non-empty bag) — i.e. the paper's ``2*nnz`` COO volume
  scaled by ``(1 + bits/32)/2``, plus the scale;
* dense float arrays bill ``bits/32`` per value, no scale;
* routing integers inside containers are free metadata; a bare scalar is
  one element of control traffic at full precision.
"""

from __future__ import annotations

import numpy as np

from repro.comm.cluster import SimulatedCluster
from repro.comm.packed import PackedBags
from repro.sparse.vector import SparseGradient

__all__ = ["expected_price", "spy_exchange"]


def expected_price(payload, bits: int) -> float:
    """Quantized wire size of ``payload`` per the accounting contract."""
    if payload is None:
        return 0.0
    if isinstance(payload, PackedBags):
        if payload.nnz == 0:
            return 0.0
        scales = int(np.count_nonzero(np.diff(payload.offsets)))
        return payload.nnz + payload.nnz * bits / 32 + scales
    if isinstance(payload, SparseGradient):
        if payload.nnz == 0:
            return 0.0
        return payload.nnz + payload.nnz * bits / 32 + 1
    if isinstance(payload, np.ndarray):
        return payload.size * bits / 32
    if isinstance(payload, (list, tuple)):
        return sum(expected_price(item, bits) for item in payload)
    if isinstance(payload, (int, np.integer)):
        return 0.0
    if isinstance(payload, (float, np.floating)):
        return 1.0
    raise TypeError(f"unexpected payload {type(payload)!r}")


def spy_exchange(cluster: SimulatedCluster) -> list:
    """Wrap ``cluster.exchange`` in place; returns the growing record list
    of ``(tag, billed size, size_final, payload)`` per message sent."""
    records: list = []
    original = cluster.exchange

    def spy(messages):
        inboxes = original(messages)
        for message in messages:
            records.append((message.tag, float(message.size),
                            message.size_final, message.payload))
        return inboxes

    cluster.exchange = spy
    return records
