"""DGC momentum-correction trajectory point (PR 10): convergence + hybrid.

Two parts, mirroring the two behaviours PR 10 ships on top of the
compressor stack:

* **convergence** — corrected vs naive momentum training-loss
  trajectories at high sparsity (density 0.01).  *Naive* momentum folds
  the momentum factor into each worker's optimizer after the sparse
  exchange, so delayed coordinates lose their velocity history and the
  bursty sparse updates are amplified by stale local velocity; DGC
  *correction* (``TrainerConfig.momentum_correction``) moves velocity
  accumulation into the residual store with momentum-factor masking.
  The sweep runs both variants over several seeds at an aggressive
  learning rate (2x the case default) where naive momentum destabilises
  while corrected stays on track;
* **hybrid volume accounting** — a per-layer bucketed run under the
  ``hybrid=dense<SIZE`` policy (small buckets dense, large buckets
  sparse+quantized), audited against the closed-form dense/sparse
  partition of the billed wire volume.

Deterministic gates (wall time is never gated; the simulation is seeded
numpy end to end and bit-identical across the compiled/fallback kernel
legs, so both trajectories are reproducible):

* **corrected beats naive** — mean final training loss of the corrected
  runs is strictly below the naive runs' at density 0.01;
* **dense closed form** — every dense bucket bills exactly the ring
  All-Reduce volume ``2 * n * (P - 1)`` per iteration;
* **sparse partition** — the hybrid run's sparse buckets bill exactly
  the same volume and rounds as the corresponding buckets of a
  pure-sparse (no ``hybrid=``) run, and the dense + sparse partition
  sums to the hybrid run's total billed volume;
* **residual conservation** — the momentum ledger ``sum_t global_t +
  residuals == sum_t inputs + m * sum_t velocity_before_t`` to 1e-9 for
  the hybrid run (momentum composes with the hybrid split without
  leaking mass; the velocity credit is the mass the recursion
  legitimately injects each step).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_momentum.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.api import make, make_factory
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.nn.models import build_mlp
from repro.training.cases import get_case
from repro.training.trainer import DistributedTrainer, TrainerConfig

# -- convergence sweep ------------------------------------------------------
NUM_WORKERS = 8
DENSITY = 0.01
#: Case 5's default momentum.  At the doubled learning rate, naive momentum
#: (optimizer-side velocity on the bursty sparse aggregate) destabilises on
#: one of the three seeds while the DGC-corrected runs stay stable on all of
#: them — that stability difference is what the mean-final-loss gate pins.
CONVERGENCE_MOMENTUM = 0.5
LR_SCALE = 2.0
CASE_ID = 5
SAMPLES = 192
EPOCHS = 6
SEEDS = (0, 1, 2)
QUICK_SEEDS = (1,)

# -- hybrid volume accounting -----------------------------------------------
HYBRID_WORKERS = 4
HYBRID_MOMENTUM = 0.9
HYBRID_DENSITY = 0.05
HYBRID_THRESHOLD = 64  # biases of the MLP below go dense, weights sparse
HYBRID_BITS = 8
HYBRID_ITERATIONS = 8
HYBRID_QUICK_ITERATIONS = 3


# ---------------------------------------------------------------------------
# corrected vs naive momentum at density 0.01
# ---------------------------------------------------------------------------
def run_convergence(correction: bool, seed: int) -> dict:
    """One training run; returns the per-epoch loss trajectory."""
    case = get_case(CASE_ID)
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=seed)
    trainer = DistributedTrainer(
        SimulatedCluster(NUM_WORKERS), make_factory(f"spardl?density={DENSITY:g}"),
        case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=8,
                             learning_rate=case.learning_rate * LR_SCALE,
                             momentum=CONVERGENCE_MOMENTUM,
                             momentum_correction=correction,
                             seed=seed),
        network=ETHERNET, compute_profile=case.compute_profile,
        case_name=case.name,
    )
    history = trainer.train(EPOCHS)
    return {
        "momentum": CONVERGENCE_MOMENTUM,
        "momentum_correction": correction,
        "seed": seed,
        "train_losses": [epoch.train_loss for epoch in history.epochs],
        "final_train_loss": history.epochs[-1].train_loss,
        "total_volume_elements": trainer.session.cumulative_stats.total_volume,
    }


# ---------------------------------------------------------------------------
# hybrid dense/sparse billed-volume partition
# ---------------------------------------------------------------------------
def _velocity(sync, num_elements: int) -> np.ndarray:
    """Assemble the per-bucket momentum velocity stores to full length."""
    velocity = np.zeros(num_elements)
    for (lo, hi), session in zip(sync.slices, sync.sessions):
        residuals = getattr(session.synchronizer, "residuals", None)
        if residuals is not None:
            velocity[lo:hi] = residuals.total_velocity()
    return velocity


def _hybrid_gradients(num_elements: int, iteration: int):
    return {worker: np.random.default_rng(9000 + 100 * iteration + worker)
                      .normal(size=num_elements)
            for worker in range(HYBRID_WORKERS)}


def run_hybrid(iterations: int, failures: list) -> dict:
    """Drive the hybrid policy next to a pure-sparse reference and audit the
    billed volume against the closed-form dense/sparse partition."""
    base = (f"spardl?density={HYBRID_DENSITY:g}&buckets=layer"
            f"&momentum={HYBRID_MOMENTUM:g}&bits={HYBRID_BITS}")
    spec = f"{base}&hybrid=dense<{HYBRID_THRESHOLD}"
    model = build_mlp(32, [32], 4, seed=0)
    num_elements = model.num_parameters()
    hybrid = make(spec, SimulatedCluster(HYBRID_WORKERS), model=model)
    pure = make(base, SimulatedCluster(HYBRID_WORKERS),
                model=build_mlp(32, [32], 4, seed=0))

    total_input = np.zeros(num_elements)
    total_global = np.zeros(num_elements)
    velocity_credit = np.zeros(num_elements)
    per_bucket_volume = np.zeros(hybrid.num_buckets)
    per_bucket_pure = np.zeros(hybrid.num_buckets)
    methods = None
    total_volume = 0.0
    for iteration in range(iterations):
        gradients = _hybrid_gradients(num_elements, iteration)
        total_input += sum(gradients.values())
        velocity_credit += HYBRID_MOMENTUM * _velocity(hybrid, num_elements)
        result = hybrid.synchronize(gradients)
        reference = pure.synchronize({w: g.copy() for w, g in gradients.items()})
        total_global += result.gradient(0)
        total_volume += result.stats.total_volume
        methods = result.info["bucket_methods"]
        for index, (stats, pure_stats) in enumerate(
                zip(result.info["bucket_stats"],
                    reference.info["bucket_stats"])):
            per_bucket_volume[index] += stats.total_volume
            per_bucket_pure[index] += pure_stats.total_volume
            if methods[index] != "Dense" and (
                    stats.total_volume != pure_stats.total_volume
                    or stats.rounds != pure_stats.rounds):
                failures.append(
                    f"hybrid: sparse bucket {hybrid.bucket_names[index]!r} "
                    f"diverged from the pure-sparse reference at iteration "
                    f"{iteration} ({stats.total_volume} vs "
                    f"{pure_stats.total_volume} elements)")

    dense_volume = 0.0
    expected_dense = 0.0
    sparse_volume = 0.0
    buckets = []
    for index, (name, size) in enumerate(zip(hybrid.bucket_names,
                                             hybrid.bucket_sizes)):
        volume = float(per_bucket_volume[index])
        is_dense = methods[index] == "Dense"
        closed_form = 2.0 * size * (HYBRID_WORKERS - 1) * iterations
        if is_dense:
            dense_volume += volume
            expected_dense += closed_form
            if volume != closed_form:
                failures.append(
                    f"hybrid: dense bucket {name!r} billed {volume} elements, "
                    f"closed form says {closed_form}")
        else:
            sparse_volume += volume
        buckets.append({
            "name": name,
            "elements": size,
            "method": methods[index],
            "volume_elements": volume,
            "closed_form_dense_volume": closed_form if is_dense else None,
            "pure_sparse_volume": float(per_bucket_pure[index]),
        })
    if dense_volume + sparse_volume != total_volume:
        failures.append(
            f"hybrid: dense ({dense_volume}) + sparse ({sparse_volume}) "
            f"partition does not sum to the billed total ({total_volume})")

    # Momentum conservation ledger across the hybrid split: telescoping the
    # per-iteration invariant ``global_t + R_t == R_{t-1} + m*V_{t-1} + G_t``
    # gives ``sum_t global_t + R_T == sum_t G_t + m * sum_t V_{t-1}``.
    conservation_error = float(np.abs(
        total_global + hybrid.total_residual()
        - total_input - velocity_credit).max())
    if conservation_error > 1e-9:
        failures.append(f"hybrid: residual conservation violated "
                        f"({conservation_error:.2e})")

    return {
        "spec": spec,
        "pure_spec": base,
        "num_workers": HYBRID_WORKERS,
        "iterations": iterations,
        "model_elements": num_elements,
        "buckets": buckets,
        "dense_volume_elements": dense_volume,
        "expected_dense_volume_closed_form": expected_dense,
        "sparse_volume_elements": sparse_volume,
        "total_volume_elements": total_volume,
        "dense_fraction_of_volume": dense_volume / total_volume,
        "conservation_error": conservation_error,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR10.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="single seed + fewer hybrid iterations (CI "
                             "smoke mode; the gates still apply)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    seeds = QUICK_SEEDS if args.quick else SEEDS
    iterations = HYBRID_QUICK_ITERATIONS if args.quick else HYBRID_ITERATIONS
    failures: list = []

    runs = {}
    for correction in (False, True):
        variant = "corrected" if correction else "naive"
        runs[variant] = [run_convergence(correction, seed) for seed in seeds]
    naive_final = [run["final_train_loss"] for run in runs["naive"]]
    corrected_final = [run["final_train_loss"] for run in runs["corrected"]]
    convergence = {
        "case": get_case(CASE_ID).name,
        "num_workers": NUM_WORKERS,
        "density": DENSITY,
        "momentum": CONVERGENCE_MOMENTUM,
        "learning_rate_scale": LR_SCALE,
        "samples": SAMPLES,
        "epochs": EPOCHS,
        "seeds": list(seeds),
        "naive": runs["naive"],
        "corrected": runs["corrected"],
        "naive_mean_final_loss": float(np.mean(naive_final)),
        "corrected_mean_final_loss": float(np.mean(corrected_final)),
    }

    hybrid = run_hybrid(iterations, failures)

    report = {
        "bench": "PR10 DGC momentum correction (convergence + hybrid volume)",
        "convergence": convergence,
        "hybrid": hybrid,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for variant in ("naive", "corrected"):
        for run in runs[variant]:
            losses = " ".join(f"{loss:.3f}" for loss in run["train_losses"])
            print(f"{variant:9s} seed {run['seed']}: {losses}")
    print(f"mean final loss: naive {convergence['naive_mean_final_loss']:.4f} "
          f"vs corrected {convergence['corrected_mean_final_loss']:.4f}")
    print(f"hybrid volume: dense {hybrid['dense_volume_elements']:.0f} "
          f"(closed form {hybrid['expected_dense_volume_closed_form']:.0f}) + "
          f"sparse {hybrid['sparse_volume_elements']:.0f} = "
          f"{hybrid['total_volume_elements']:.0f} elements | "
          f"conservation {hybrid['conservation_error']:.2e}")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    if not convergence["corrected_mean_final_loss"] < convergence["naive_mean_final_loss"]:
        failures.append(
            f"convergence: corrected momentum "
            f"({convergence['corrected_mean_final_loss']:.4f}) must strictly "
            f"beat naive ({convergence['naive_mean_final_loss']:.4f}) on mean "
            f"final training loss at density {DENSITY:g}")
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
