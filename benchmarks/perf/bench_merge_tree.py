"""Wide k-way merge + deferred-residual microbenchmarks (PR 3 harness).

Two measurements, both emitted into one JSON trajectory point
(``BENCH_PR3.json``) that CI uploads next to ``BENCH_PR1.json`` /
``BENCH_PR2.json``:

* **Tournament-tree merge_many** — times the compiled tournament-tree kernel
  against the O(total x streams) head-scan kernel it replaced, at stream
  counts matching very wide gathers (P = 8 .. 256), and asserts the outputs
  are bit-identical.  The NumPy fallback pair (bracket tree merge vs the
  packed-key stable sort) is recorded alongside.
* **Deferred residual accumulation** — runs the full SparDL synchroniser
  with eager and deferred residual collection on identical gradients and
  records the per-worker sparse-scatter counts (the deferred mode performs
  exactly one fold per worker per iteration) plus the bit-identity of
  ``total_residual``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_merge_tree.py

Exits non-zero if the tournament kernel fails to beat the head scan at
>= 64 streams or if the deferred path stops matching the eager path
bit-for-bit, so it doubles as a CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from naive_reference import naive_merge_many  # noqa: E402

from repro.comm.cluster import SimulatedCluster  # noqa: E402
from repro.core.config import SparDLConfig  # noqa: E402
from repro.core.spardl import SparDLSynchronizer  # noqa: E402
from repro.sparse.vector import (  # noqa: E402
    _get_c_kernels,
    _segment_sum_sorted,
    _stable_merge_sorted,
    _tree_merge_sorted,
    merge_many_coo,
)

#: Gradient length and per-stream selection for the merge benchmark.
N = 1_000_000
NNZ_PER_STREAM = 2_000
STREAM_COUNTS = (8, 64, 128, 256)

#: Minimum tournament-over-headscan speedup gated at wide fan-ins.  The
#: kernel-level win is far larger (see BENCH_PR3.json); the floor is kept
#: CI-noise-safe.
GATE_MIN_SPEEDUP = 1.5
GATE_STREAMS = 64

#: Deferred-residual scenario: P = 16 workers in two teams of eight.
RES_WORKERS = 16
RES_TEAMS = 2
RES_ELEMENTS = 40_000
RES_DENSITY = 0.01
RES_ITERATIONS = 3


def best_of(func, repeats: int, loops: int) -> float:
    """Best-of-``repeats`` mean seconds per call over ``loops`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            func()
        best = min(best, (time.perf_counter() - start) / loops)
    return best


def make_streams(rng: np.random.Generator, num_streams: int, n: int, nnz: int):
    index_streams, value_streams = [], []
    for _ in range(num_streams):
        index_streams.append(
            np.sort(rng.choice(n, size=nnz, replace=False)).astype(np.int64))
        value_streams.append(rng.normal(size=nnz))
    return index_streams, value_streams


def _numpy_tree(index_streams, value_streams):
    indices, values = _tree_merge_sorted(index_streams, value_streams)
    return _segment_sum_sorted(indices, values)


def _numpy_packed_key(index_streams, value_streams):
    indices, values = _stable_merge_sorted(index_streams, value_streams)
    return _segment_sum_sorted(indices, values)


def run_merge_benchmarks(repeats: int = 3, loops: int = 1,
                         seed: int = 0) -> Dict[str, dict]:
    """Time tournament vs head-scan at every stream count; verify bits."""
    kernels = _get_c_kernels()
    rng = np.random.default_rng(seed)
    results: Dict[str, dict] = {}
    for num_streams in STREAM_COUNTS:
        index_streams, value_streams = make_streams(
            rng, num_streams, N, NNZ_PER_STREAM)
        # Bit-identity to the seed fold (sequential pairwise np.unique +
        # np.add.at merging) — checked for the production dispatch AND the
        # NumPy bracket reference, independent of compiler availability.
        seed_fold = naive_merge_many(index_streams, value_streams)
        production = merge_many_coo(index_streams, value_streams)
        bracket = _numpy_tree(index_streams, value_streams)
        seed_identical = all(
            np.array_equal(seed_fold[0], candidate[0])
            and np.array_equal(seed_fold[1].view(np.int64),
                               candidate[1].view(np.int64))
            for candidate in (production, bracket))
        entry: Dict[str, object] = {
            "num_streams": num_streams,
            "total_entries": num_streams * NNZ_PER_STREAM,
            "seed_fold_bit_identical": bool(seed_identical),
        }
        if kernels is not None:
            reference = kernels.merge_many(index_streams, value_streams,
                                           impl="headscan")
            tournament = kernels.merge_many(index_streams, value_streams,
                                            impl="tournament")
            bit_identical = (
                np.array_equal(reference[0], tournament[0])
                and np.array_equal(reference[1].view(np.int64),
                                   tournament[1].view(np.int64)))
            headscan_s = best_of(
                lambda: kernels.merge_many(index_streams, value_streams,
                                           impl="headscan"),
                repeats, loops)
            tournament_s = best_of(
                lambda: kernels.merge_many(index_streams, value_streams,
                                           impl="tournament"),
                repeats, loops)
            entry.update({
                "bit_identical": bool(bit_identical),
                "headscan_s": headscan_s,
                "tournament_s": tournament_s,
                "speedup": headscan_s / tournament_s if tournament_s else
                float("inf"),
            })
        else:  # no compiler: record the NumPy pair only
            entry.update({"bit_identical": None, "headscan_s": None,
                          "tournament_s": None, "speedup": None})
        packed_key_s = best_of(
            lambda: _numpy_packed_key(index_streams, value_streams),
            repeats, loops)
        tree_s = best_of(
            lambda: _numpy_tree(index_streams, value_streams),
            repeats, loops)
        entry.update({
            "numpy_packed_key_s": packed_key_s,
            "numpy_tree_s": tree_s,
            "numpy_tree_speedup": packed_key_s / tree_s if tree_s else
            float("inf"),
        })
        results[f"streams_{num_streams}"] = entry
    return results


def _run_spardl(deferred: bool):
    cluster = SimulatedCluster(RES_WORKERS)
    config = SparDLConfig(density=RES_DENSITY, num_teams=RES_TEAMS,
                          deferred_residuals=deferred)
    sync = SparDLSynchronizer(cluster, RES_ELEMENTS, config)
    start = time.perf_counter()
    for iteration in range(RES_ITERATIONS):
        gradients = {
            worker: np.random.default_rng(97 * iteration + worker)
            .normal(size=RES_ELEMENTS)
            for worker in range(RES_WORKERS)
        }
        sync.synchronize(gradients)
    wall_s = time.perf_counter() - start
    total = sync.residuals.total_residual()
    scatters = {worker: sync.residuals.store(worker).scatter_count
                for worker in range(RES_WORKERS)}
    return total, scatters, wall_s


def run_residual_benchmarks() -> Dict[str, object]:
    """Eager vs deferred residual collection on identical SparDL runs."""
    eager_total, eager_scatters, eager_wall = _run_spardl(deferred=False)
    deferred_total, deferred_scatters, deferred_wall = _run_spardl(
        deferred=True)
    return {
        "config": {"num_workers": RES_WORKERS, "num_teams": RES_TEAMS,
                   "num_elements": RES_ELEMENTS, "density": RES_DENSITY,
                   "iterations": RES_ITERATIONS},
        "total_residual_bit_identical": bool(
            np.array_equal(eager_total.view(np.int64),
                           deferred_total.view(np.int64))),
        "eager": {"wall_s": eager_wall,
                  "max_scatters_per_worker": max(eager_scatters.values()),
                  "total_scatters": sum(eager_scatters.values())},
        "deferred": {"wall_s": deferred_wall,
                     "max_scatters_per_worker": max(deferred_scatters.values()),
                     "total_scatters": sum(deferred_scatters.values())},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR3.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing repeats (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record timings without enforcing the gates")
    args = parser.parse_args(argv)

    repeats, loops = (2, 1) if args.quick else (5, 2)
    merge = run_merge_benchmarks(repeats=repeats, loops=loops)
    residuals = run_residual_benchmarks()

    report = {
        "bench": "PR3 tournament-tree k-way merge + deferred residuals",
        "config": {"n": N, "nnz_per_stream": NNZ_PER_STREAM,
                   "stream_counts": list(STREAM_COUNTS),
                   "repeats": repeats, "loops": loops},
        "gate": {"min_speedup": GATE_MIN_SPEEDUP,
                 "gated_at_streams": GATE_STREAMS},
        "merge_many": merge,
        "deferred_residuals": residuals,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'streams':>8}  {'headscan':>10}  {'tournament':>10}  "
          f"{'speedup':>8}  {'numpy tree':>10}")
    for entry in merge.values():
        headscan = entry["headscan_s"]
        tournament = entry["tournament_s"]
        speedup = entry["speedup"]
        print(f"{entry['num_streams']:>8}  "
              f"{'-' if headscan is None else f'{headscan * 1e3:8.2f}ms'}  "
              f"{'-' if tournament is None else f'{tournament * 1e3:8.2f}ms'}  "
              f"{'-' if speedup is None else f'{speedup:7.1f}x'}  "
              f"{entry['numpy_tree_s'] * 1e3:8.2f}ms")
    deferred = residuals["deferred"]
    eager = residuals["eager"]
    print(f"residual scatters/worker: eager {eager['max_scatters_per_worker']}"
          f" -> deferred {deferred['max_scatters_per_worker']} "
          f"(bit-identical: {residuals['total_residual_bit_identical']})")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    failures = []
    for entry in merge.values():
        if entry["bit_identical"] is False:
            failures.append(
                f"streams={entry['num_streams']}: outputs not bit-identical")
        if not entry["seed_fold_bit_identical"]:
            failures.append(
                f"streams={entry['num_streams']}: diverged from the seed fold")
        if (entry["speedup"] is not None
                and entry["num_streams"] >= GATE_STREAMS
                and entry["speedup"] < GATE_MIN_SPEEDUP):
            failures.append(
                f"streams={entry['num_streams']}: tournament speedup "
                f"{entry['speedup']:.2f}x < {GATE_MIN_SPEEDUP}x")
    if not residuals["total_residual_bit_identical"]:
        failures.append("deferred total_residual diverged from eager")
    if (residuals["deferred"]["max_scatters_per_worker"]
            > RES_ITERATIONS):
        failures.append("deferred mode exceeded one scatter per worker "
                        "per iteration")
    if failures:
        print("PERF GATE FAILED:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
