"""Quantized-compress-stage trajectory point (PR 5): volume vs accuracy.

Sweeps the wire value quantization (``bits=2/4/8`` vs full precision)
through the staged pipeline in two shapes:

* **synchroniser-level sweep** (flat and per-layer bucketed SparDL on
  synthetic gradients): cumulative comm volume, the volume ratio against
  the full-precision run, a per-iteration accuracy proxy (relative L2
  distance of the synchronised global gradient from the exact dense sum),
  and the residual-conservation error;
* **training trajectory** (the PR 4 end-to-end case, flat SparDL): the
  per-epoch training-loss trajectory across bit widths — the accuracy
  proxy of the issue's acceptance criteria — with total volume alongside,
  so the volume-reduction/accuracy trade-off is one table.

Deterministic gates (wall time is never gated):

* **per-message accounting** — every non-final message of a quantized run
  bills the ``(1 + b/32)/2`` COO accounting exactly (one full element per
  index, ``b`` bits per value, one scale per non-empty sparse unit; dense
  payloads at ``b/32`` per value), re-derived independently of the
  pricer's own code path;
* **residual conservation** — ``sum_t global_t + residuals ==
  sum_t inputs`` (sent + quantization error + discards == input) to
  1e-9 for every configuration, flat and bucketed;
* **volume ordering** — fewer bits move strictly less volume, and every
  quantized run moves less than full precision;
* **proxy ordering** — the gradient-accuracy proxy degrades
  monotonically as bits shrink (8-bit closer to the exact sum than
  2-bit, averaged over the run).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_quantized.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from quantized_reference import expected_price, spy_exchange  # noqa: E402

from repro.api import make, make_factory
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.training.cases import get_case
from repro.training.trainer import DistributedTrainer, TrainerConfig

NUM_WORKERS = 4
NUM_ELEMENTS = 4_000
DENSITY = 0.02
ITERATIONS = 8
BIT_WIDTHS = (8, 4, 2)

CASE_ID = 5
SAMPLES = 160
EPOCHS = 2


# ---------------------------------------------------------------------------
# per-message accounting gate, checked against the shared independent
# re-derivation in quantized_reference.py (which must not mirror
# QuantizedCompressor.price)
# ---------------------------------------------------------------------------
def attach_accounting_gate(cluster: SimulatedCluster, bits: int, failures: list,
                           label: str):
    """Record every message; returns a ``check()`` that compares each
    non-final billed size against the reference accounting."""
    records = spy_exchange(cluster)

    def check():
        for tag, size, size_final, payload in records:
            if size_final:
                continue
            expected = expected_price(payload, bits)
            if size != expected:
                failures.append(f"{label}: message {tag!r} billed {size}, "
                                f"expected {expected}")
        records.clear()

    return check


# ---------------------------------------------------------------------------
# synchroniser-level sweep
# ---------------------------------------------------------------------------
def _gradients(iteration: int):
    return {worker: np.random.default_rng(7000 + 100 * iteration + worker)
                      .normal(size=NUM_ELEMENTS)
            for worker in range(NUM_WORKERS)}


def _bucket_sizes():
    # Uneven buckets, like real layer shapes.
    return [1_500, 400, 1_600, 500]


def run_sync_sweep(layout: str, bits, failures: list) -> dict:
    """Drive one configuration for ITERATIONS steps on synthetic gradients."""
    label = f"{layout}-{'fp32' if bits is None else f'{bits}bit'}"
    spec = f"spardl?density={DENSITY:g}"
    if bits is not None:
        spec += f"&bits={bits}"
    cluster = SimulatedCluster(NUM_WORKERS)
    if layout == "flat":
        sync = make(spec, cluster, num_elements=NUM_ELEMENTS)
    else:
        from repro.core.bucketed import BucketedSynchronizer

        sync = BucketedSynchronizer(
            cluster, _bucket_sizes(),
            factory=lambda c, n: make(spec, c, num_elements=n))
    check_accounting = None
    if bits is not None:
        check_accounting = attach_accounting_gate(cluster, bits, failures, label)

    total_input = np.zeros(NUM_ELEMENTS)
    total_global = np.zeros(NUM_ELEMENTS)
    proxy_errors = []
    total_volume = 0.0
    rounds = 0
    for iteration in range(ITERATIONS):
        gradients = _gradients(iteration)
        exact = sum(gradients.values())
        total_input += exact
        result = sync.synchronize(gradients)
        total_global += result.gradient(0)
        total_volume += result.stats.total_volume
        rounds += result.stats.rounds
        proxy_errors.append(float(np.linalg.norm(result.gradient(0) - exact)
                                  / np.linalg.norm(exact)))
    if check_accounting is not None:
        check_accounting()
    if layout == "flat":
        residual = sync.residuals.total_residual()
    else:
        residual = sync.total_residual()
    conservation_error = float(np.abs(total_global + residual - total_input).max())
    return {
        "label": label,
        "spec": spec,
        "layout": layout,
        "bits": bits,
        "iterations": ITERATIONS,
        "total_volume_elements": total_volume,
        "rounds": rounds,
        "gradient_proxy_error_mean": float(np.mean(proxy_errors)),
        "gradient_proxy_error_per_iteration": proxy_errors,
        "conservation_error": conservation_error,
    }


# ---------------------------------------------------------------------------
# training trajectory (accuracy proxy = per-epoch training loss)
# ---------------------------------------------------------------------------
def run_training(bits, epochs: int) -> dict:
    spec = f"spardl?density={DENSITY:g}"
    if bits is not None:
        spec += f"&bits={bits}"
    case = get_case(CASE_ID)
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=0)
    trainer = DistributedTrainer(
        SimulatedCluster(NUM_WORKERS), make_factory(spec), case.build_model,
        train_set, test_set,
        config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0,
                             check_consistency=True),
        network=ETHERNET, compute_profile=case.compute_profile,
        case_name=case.name,
    )
    history = trainer.train(epochs)
    session = trainer.session
    return {
        "spec": spec,
        "bits": bits,
        "train_losses": [epoch.train_loss for epoch in history.epochs],
        "final_train_loss": history.epochs[-1].train_loss,
        "total_volume_elements": session.cumulative_stats.total_volume,
        "rounds": session.cumulative_stats.rounds,
        "sim_comm_time_s": history.total_communication_time,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR5.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="one training epoch (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the gates")
    args = parser.parse_args(argv)

    epochs = 1 if args.quick else EPOCHS
    failures: list = []

    sweep = {}
    for layout in ("flat", "bucketed"):
        for bits in (None,) + BIT_WIDTHS:
            row = run_sync_sweep(layout, bits, failures)
            sweep[row["label"]] = row
    for layout in ("flat", "bucketed"):
        reference = sweep[f"{layout}-fp32"]["total_volume_elements"]
        for bits in BIT_WIDTHS:
            row = sweep[f"{layout}-{bits}bit"]
            row["volume_ratio_vs_fp32"] = row["total_volume_elements"] / reference

    training = {("fp32" if bits is None else f"{bits}bit"): run_training(bits, epochs)
                for bits in (None,) + BIT_WIDTHS}

    report = {
        "bench": "PR5 quantized compress stage (volume vs accuracy)",
        "config": {
            "num_workers": NUM_WORKERS,
            "num_elements": NUM_ELEMENTS,
            "density": DENSITY,
            "iterations": ITERATIONS,
            "bit_widths": list(BIT_WIDTHS),
            "bucket_sizes": _bucket_sizes(),
            "training_case": get_case(CASE_ID).name,
            "training_samples": SAMPLES,
            "training_epochs": epochs,
            "network": ETHERNET.name,
        },
        "sync_sweep": sweep,
        "training": training,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for label, row in sweep.items():
        ratio = row.get("volume_ratio_vs_fp32")
        print(f"{label:16s} volume {row['total_volume_elements']:10.1f} "
              f"({'ratio %.3f' % ratio if ratio else 'reference'}) | "
              f"proxy err {row['gradient_proxy_error_mean']:.4f} | "
              f"conservation {row['conservation_error']:.2e}")
    for label, row in training.items():
        print(f"train {label:10s} loss {row['final_train_loss']:.4f} | "
              f"volume {row['total_volume_elements']:10.1f} | "
              f"rounds {row['rounds']}")
    print(f"wrote {args.output}")

    if args.no_gate:
        return 0
    for label, row in sweep.items():
        if row["conservation_error"] > 1e-9:
            failures.append(f"{label}: residual conservation violated "
                            f"({row['conservation_error']:.2e})")
    for layout in ("flat", "bucketed"):
        volumes = [sweep[f"{layout}-fp32"]["total_volume_elements"]]
        volumes += [sweep[f"{layout}-{bits}bit"]["total_volume_elements"]
                    for bits in BIT_WIDTHS]  # descending bit widths
        if not all(earlier > later for earlier, later in zip(volumes, volumes[1:])):
            failures.append(f"{layout}: volume must shrink strictly with fewer bits")
        proxies = [sweep[f"{layout}-{bits}bit"]["gradient_proxy_error_mean"]
                   for bits in BIT_WIDTHS]
        if not all(earlier < later for earlier, later in zip(proxies, proxies[1:])):
            failures.append(f"{layout}: accuracy proxy must degrade with fewer bits")
        if sweep[f"{layout}-fp32"]["gradient_proxy_error_mean"] > \
                min(p for p in proxies):
            failures.append(f"{layout}: full precision must be the most accurate")
    if failures:
        print("QUANTIZED BENCH GATE FAILED: " + "; ".join(failures[:10]),
              file=sys.stderr)
        return 1
    print("gates passed: per-message quantized accounting, residual "
          "conservation, volume/proxy monotonicity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
