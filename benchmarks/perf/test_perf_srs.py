"""Smoke gate for the SRS batching benchmark and the dense crossover.

Runs the PR 2 microbenchmarks at quick settings and asserts the
deterministic properties: the packed wire format emits exactly one message
per worker per step, cuts the total message count, moves the same recorded
volume, and the simulated-time dense/sparse crossover sits where the
closed-form volume analysis puts it (``k/n = 0.5`` at a power-of-two worker
count).  Wall-clock speedups are recorded in ``BENCH_PR2.json`` but not
asserted — shared CI runners are too noisy.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import pytest

from bench_srs import run_crossover_benchmark, run_srs_benchmark

from repro.core.config import DEFAULT_DENSE_CROSSOVER


@pytest.fixture(scope="module")
def srs_results():
    return run_srs_benchmark(num_workers=16, num_elements=20_000, repeats=1)


def test_packed_emits_one_message_per_worker_per_step(srs_results):
    assert srs_results["packed"]["messages_per_step"] == 16


def test_batching_reduces_message_count(srs_results):
    assert srs_results["summary"]["message_reduction"] > 1.0


def test_batching_preserves_recorded_volume(srs_results):
    assert srs_results["summary"]["volume_identical"]


def test_measured_crossover_matches_volume_analysis():
    crossover = run_crossover_benchmark(num_workers=8, num_elements=10_000)
    measured = crossover["measured_crossover_density"]
    assert measured is not None
    # The COO volume 4k(P-1)/P meets the dense 2n(P-1)/P at k/n = 1/2; the
    # simulated alpha-beta measurement must land there (latency rounding
    # gives it a little slack) and the shipped default must match.
    assert measured == pytest.approx(0.5, abs=0.1)
    assert DEFAULT_DENSE_CROSSOVER == pytest.approx(measured, abs=0.1)
