"""SRS-step microbenchmark and dense-fallback crossover measurement (PR 2).

Two experiments, emitted as the ``BENCH_PR2.json`` trajectory point that CI
uploads alongside ``BENCH_PR1.json``:

* **SRS message batching** — runs Spar-Reduce-Scatter at ``P = 64`` workers
  with the batched :class:`~repro.comm.packed.PackedBags` wire format (one
  message per worker and step) and with the unbatched per-block wiring (one
  message per block and step), recording messages-per-step and wall time for
  both.  The recorded element volumes are identical by construction; only
  the Python-level message count and assembly cost differ.
* **Dense-fallback crossover** — sweeps the density ``k/n`` at a
  power-of-two worker count (where the dense All-Reduce is
  bandwidth-optimal) and reports the ratio of SparDL's simulated alpha-beta
  time to the dense baseline's, interpolating the crossover density at which
  the sparse pipeline starts losing.  This is the measurement behind
  ``repro.core.config.DEFAULT_DENSE_CROSSOVER``; wall-clock ratios are
  recorded as diagnostics only (the in-process simulator's Python overhead
  is not the quantity the paper models).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/bench_srs.py

Exits non-zero when the batched format fails to cut messages-per-step (the
deterministic gate; wall time is recorded but not gated — shared CI runners
are too noisy).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.core.config import DEFAULT_DENSE_CROSSOVER, SparDLConfig
from repro.core.residuals import ResidualManager
from repro.core.spardl import SparDLSynchronizer, make_teams
from repro.core.srs import spar_reduce_scatter
from repro.sparse.blocks import BlockLayout

#: SRS microbenchmark scale: the paper's large-model regime, one team.
SRS_WORKERS = 64
SRS_ELEMENTS = 100_000
SRS_DENSITY = 0.01

#: Crossover sweep: power-of-two workers so the dense baseline is
#: bandwidth-optimal (Rabenseifner), the regime with the tightest crossover.
CROSSOVER_WORKERS = 8
CROSSOVER_ELEMENTS = 50_000
CROSSOVER_DENSITIES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)


def _gradients(num_workers: int, num_elements: int, seed: int = 0) -> Dict[int, np.ndarray]:
    return {w: np.random.default_rng(seed + w).normal(size=num_elements)
            for w in range(num_workers)}


# ---------------------------------------------------------------------------
# experiment 1: SRS wire-format batching
# ---------------------------------------------------------------------------
def run_srs_benchmark(num_workers: int = SRS_WORKERS, num_elements: int = SRS_ELEMENTS,
                      density: float = SRS_DENSITY, repeats: int = 3) -> Dict[str, dict]:
    gradients = _gradients(num_workers, num_elements)
    teams = make_teams(num_workers, 1)
    layout = BlockLayout(num_elements, num_workers)
    k_block = max(1, int(round(density * num_elements)) // num_workers)

    results: Dict[str, dict] = {}
    for wire_format in ("per-block", "packed"):
        best = float("inf")
        stats = None
        for _ in range(repeats):
            cluster = SimulatedCluster(num_workers)
            residuals = ResidualManager(num_workers, num_elements)
            start = time.perf_counter()
            spar_reduce_scatter(cluster, teams, gradients, layout, k_block,
                                residuals, wire_format=wire_format)
            best = min(best, time.perf_counter() - start)
            stats = cluster.stats
        results[wire_format] = {
            "wall_s": best,
            "rounds": stats.rounds,
            "total_messages": stats.total_messages,
            "messages_per_step": stats.total_messages / stats.rounds,
            "max_received_elements": stats.max_received,
        }
    packed, legacy = results["packed"], results["per-block"]
    results["summary"] = {
        "message_reduction": legacy["total_messages"] / packed["total_messages"],
        "wall_speedup": legacy["wall_s"] / packed["wall_s"] if packed["wall_s"] else float("inf"),
        "volume_identical": legacy["max_received_elements"] == packed["max_received_elements"],
    }
    return results


# ---------------------------------------------------------------------------
# experiment 2: dense-fallback crossover
# ---------------------------------------------------------------------------
def run_crossover_benchmark(num_workers: int = CROSSOVER_WORKERS,
                            num_elements: int = CROSSOVER_ELEMENTS) -> Dict[str, object]:
    gradients = _gradients(num_workers, num_elements, seed=7)

    cluster = SimulatedCluster(num_workers)
    dense_result = DenseAllReduceSynchronizer(cluster, num_elements).synchronize(gradients)
    dense_sim = dense_result.stats.simulated_time(ETHERNET)

    points = []
    for rho in CROSSOVER_DENSITIES:
        cluster = SimulatedCluster(num_workers)
        sync = SparDLSynchronizer(cluster, num_elements,
                                  SparDLConfig(density=rho, dense_fallback=False))
        start = time.perf_counter()
        result = sync.synchronize({w: g.copy() for w, g in gradients.items()})
        wall = time.perf_counter() - start
        points.append({
            "density": rho,
            "sim_time_ratio": result.stats.simulated_time(ETHERNET) / dense_sim,
            "wall_s": wall,
        })

    crossover = None
    for prev, curr in zip(points, points[1:]):
        a, b = prev["sim_time_ratio"], curr["sim_time_ratio"]
        if a < 1.0 <= b:
            # Linear interpolation of the density where the ratio hits 1.
            frac = (1.0 - a) / (b - a)
            crossover = prev["density"] + frac * (curr["density"] - prev["density"])
            break

    return {
        "num_workers": num_workers,
        "num_elements": num_elements,
        "network": ETHERNET.name,
        "dense_sim_time_s": dense_sim,
        "points": points,
        "measured_crossover_density": crossover,
        "shipped_default": DEFAULT_DENSE_CROSSOVER,
    }


# ---------------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_PR2.json",
                        help="path of the JSON trajectory point to write")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing repeats (CI smoke mode)")
    parser.add_argument("--no-gate", action="store_true",
                        help="record results without enforcing the batching gate")
    args = parser.parse_args(argv)

    srs = run_srs_benchmark(repeats=1 if args.quick else 3)
    crossover = run_crossover_benchmark()

    report = {
        "bench": "PR2 batched SRS wire format + dense-fallback crossover",
        "config": {
            "srs": {"num_workers": SRS_WORKERS, "num_elements": SRS_ELEMENTS,
                    "density": SRS_DENSITY},
            "crossover": {"num_workers": CROSSOVER_WORKERS,
                          "num_elements": CROSSOVER_ELEMENTS,
                          "densities": list(CROSSOVER_DENSITIES)},
        },
        "srs_batching": srs,
        "dense_crossover": crossover,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    summary = srs["summary"]
    print(f"SRS @ P={SRS_WORKERS}: messages/step "
          f"{srs['per-block']['messages_per_step']:.0f} -> "
          f"{srs['packed']['messages_per_step']:.0f} "
          f"({summary['message_reduction']:.1f}x fewer messages, "
          f"wall {summary['wall_speedup']:.2f}x)")
    measured = crossover["measured_crossover_density"]
    print(f"dense/sparse crossover @ P={CROSSOVER_WORKERS} ({ETHERNET.name}): "
          f"k/n = {measured:.3f} (shipped default {DEFAULT_DENSE_CROSSOVER})"
          if measured is not None else
          "dense/sparse crossover: sparse never lost inside the sweep")
    print(f"wrote {args.output}")

    if not args.no_gate:
        failures = []
        if srs["packed"]["messages_per_step"] != SRS_WORKERS:
            failures.append("packed format must emit exactly one message per worker per step")
        if summary["message_reduction"] <= 1.0:
            failures.append("batching must reduce the message count")
        if not summary["volume_identical"]:
            failures.append("batching must not change recorded volumes")
        if failures:
            print("SRS BATCHING GATE FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
