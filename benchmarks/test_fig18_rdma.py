"""Fig. 18 — per-update time on an RDMA (InfiniBand) network with 5 workers.

The paper repeats the per-update comparison on a 5-machine A800 cluster with
RDMA networking for VGG-19/CIFAR-100 (all baselines) and BERT/Wikipedia
(Ok-Topk only).  This benchmark prices the measured communication with the
RDMA profile and asserts the same ordering as the paper: SparDL remains the
fastest even when both latency and bandwidth are an order of magnitude
cheaper.
"""

from __future__ import annotations


from bench_utils import MethodSpec, measure_per_update, print_per_update_table
from repro.comm.network import RDMA

NUM_WORKERS = 5
DENSITY = 0.01


def test_fig18a_vgg19_rdma(run_once):
    methods = [
        MethodSpec("TopkDSA", density=DENSITY),
        MethodSpec("TopkA", density=DENSITY),
        MethodSpec("Ok-Topk", density=DENSITY),
        MethodSpec("SparDL", density=DENSITY),
    ]
    results = run_once(measure_per_update, 2, methods, NUM_WORKERS, RDMA)
    print_per_update_table(f"Fig. 18(a) reproduction (VGG-19, RDMA, P={NUM_WORKERS})", results)
    comm = {name: result.communication_time for name, result in results.items()}
    assert min(comm, key=comm.get) == "SparDL"
    assert comm["Ok-Topk"] / comm["SparDL"] > 1.2
    assert comm["TopkDSA"] / comm["SparDL"] > 1.5
    assert comm["TopkA"] / comm["SparDL"] > 1.2


def test_fig18b_bert_rdma(run_once):
    methods = [MethodSpec("Ok-Topk", density=DENSITY), MethodSpec("SparDL", density=DENSITY)]
    results = run_once(measure_per_update, 7, methods, NUM_WORKERS, RDMA)
    print_per_update_table(f"Fig. 18(b) reproduction (BERT, RDMA, P={NUM_WORKERS})", results)
    speedup = results["Ok-Topk"].communication_time / results["SparDL"].communication_time
    print(f"communication speedup of SparDL over Ok-Topk: {speedup:.2f}x (paper: 4.2x)")
    assert speedup > 1.3
