"""Fig. 7 — number of sparse gradients after the inter-team Bruck All-Gather.

The paper motivates B-SAG's adaptive top-h with the observation that the
non-zero count after synchronising teams with a Bruck All-Gather changes
slowly across training batches.  This benchmark trains the VGG-16 case with
SparDL (B-SAG, d = 7) on 14 workers and prints the per-iteration merged
non-zero count together with the controller's h, asserting that the count
stays within its analytical range [L, d*L] and drifts slowly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import Series, format_series
from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.spardl import SparDLSynchronizer

NUM_WORKERS = 14
NUM_TEAMS = 7
NUM_ELEMENTS = 5_000
DENSITY = 0.02
ITERATIONS = 30


def run_bsag_iterations():
    cluster = SimulatedCluster(NUM_WORKERS)
    config = SparDLConfig(density=DENSITY, num_teams=NUM_TEAMS, sag_mode="bsag")
    sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, config)

    # Gradient supports drift slowly across iterations, as in real training:
    # each worker's "hot" coordinates move by a few positions per batch.
    rng = np.random.default_rng(0)
    bases = {w: rng.permutation(NUM_ELEMENTS) for w in range(NUM_WORKERS)}
    counts = []
    h_values = []
    for iteration in range(ITERATIONS):
        gradients = {}
        for worker in range(NUM_WORKERS):
            magnitudes = np.exp(-np.arange(NUM_ELEMENTS) / (0.05 * NUM_ELEMENTS))
            shifted = np.roll(bases[worker], iteration * 3)
            dense = np.zeros(NUM_ELEMENTS)
            dense[shifted] = magnitudes * rng.normal(1.0, 0.1, size=NUM_ELEMENTS)
            gradients[worker] = dense
        result = sync.synchronize(gradients)
        counts.append(result.info["sag_merged_nnz_mean"])
        h_values.append(result.info["sag_h"])
    return sync, counts, h_values


def test_fig7_bsag_merged_gradient_count(run_once):
    sync, counts, h_values = run_once(run_bsag_iterations)

    count_series = Series("merged nnz after inter-team All-Gather")
    h_series = Series("controller top-h")
    for iteration, (count, h) in enumerate(zip(counts, h_values)):
        count_series.append(iteration, count)
        h_series.append(iteration, h)
    print()
    print(format_series([count_series, h_series], x_label="iteration", y_label="count",
                        title="Fig. 7 reproduction: B-SAG merged non-zero count (P=14, d=7)"))

    k = sync.k
    L = sync.k_block
    h_min = k / NUM_WORKERS
    assert all(h_min - 1 <= count <= NUM_TEAMS * L + 1e-9 for count in counts), \
        "merged count must stay within the analytical range [k/P, d*L]"
    # The adaptive top-h keeps the merged count near the target L = d*k/P.
    assert 0.5 * L <= float(np.mean(counts)) <= 1.5 * L
    # The count changes slowly between consecutive iterations (the paper's
    # observation motivating a slowly-adapted h).
    steps = np.abs(np.diff(counts))
    assert np.median(steps) <= 0.25 * np.mean(counts)
    # The controller reacts: h moves away from its initial value.
    assert len(set(h_values)) > 1
