"""Unit tests for top-k / threshold selection primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.topk import (
    kth_largest_magnitude,
    threshold_indices,
    top_k_indices,
    top_k_mask,
)


class TestTopKIndices:
    def test_selects_largest_magnitudes(self):
        values = np.array([0.1, -5.0, 2.0, 0.0, -3.0])
        picked = top_k_indices(values, 2)
        assert set(picked.tolist()) == {1, 4}

    def test_result_is_sorted(self):
        values = np.array([5.0, -1.0, 4.0, 3.0, -6.0])
        picked = top_k_indices(values, 3)
        assert list(picked) == sorted(picked)

    def test_k_zero_returns_empty(self):
        assert top_k_indices(np.array([1.0, 2.0]), 0).size == 0

    def test_k_negative_returns_empty(self):
        assert top_k_indices(np.array([1.0, 2.0]), -3).size == 0

    def test_k_larger_than_length_returns_all(self):
        values = np.array([1.0, -2.0, 3.0])
        assert list(top_k_indices(values, 10)) == [0, 1, 2]

    def test_empty_input(self):
        assert top_k_indices(np.array([]), 3).size == 0

    def test_deterministic_tie_breaking_towards_lower_index(self):
        values = np.array([1.0, -1.0, 1.0, 1.0])
        picked = top_k_indices(values, 2)
        assert list(picked) == [0, 1]

    def test_absolute_value_not_sign(self):
        values = np.array([-10.0, 1.0, 2.0])
        assert 0 in top_k_indices(values, 1)

    def test_repeated_calls_identical(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        first = top_k_indices(values, 17)
        second = top_k_indices(values.copy(), 17)
        np.testing.assert_array_equal(first, second)

    def test_nan_ranks_below_every_magnitude(self):
        # A stable argsort (the seed idiom) sorts NaN last, so NaN entries
        # are only selected once every finite magnitude is taken — and then
        # by lowest index.  The partition path must reproduce that.
        values = np.array([np.nan, 5.0, 4.0, 3.0])
        np.testing.assert_array_equal(top_k_indices(values, 2), [1, 2])
        np.testing.assert_array_equal(top_k_indices(values, 3), [1, 2, 3])
        many_nan = np.array([np.nan, 1.0, np.nan, 2.0, np.nan])
        np.testing.assert_array_equal(top_k_indices(many_nan, 3), [0, 1, 3])
        np.testing.assert_array_equal(top_k_indices(many_nan, 4), [0, 1, 2, 3])


class TestTopKMask:
    def test_mask_marks_exactly_k(self):
        values = np.random.default_rng(1).normal(size=50)
        mask = top_k_mask(values, 7)
        assert mask.sum() == 7

    def test_mask_matches_indices(self):
        values = np.random.default_rng(2).normal(size=20)
        mask = top_k_mask(values, 5)
        np.testing.assert_array_equal(np.flatnonzero(mask), top_k_indices(values, 5))


class TestKthLargestMagnitude:
    def test_empty_input_returns_zero(self):
        # Regression: the seed returned inf for an empty vector although the
        # docstring promised 0.0 whenever k exceeds the number of entries.
        assert kth_largest_magnitude(np.array([]), 3) == 0.0

    def test_empty_input_with_nonpositive_k_returns_zero(self):
        assert kth_largest_magnitude(np.array([]), 0) == 0.0
        assert kth_largest_magnitude(np.array([]), -1) == 0.0

    def test_nonpositive_k_returns_zero(self):
        assert kth_largest_magnitude(np.array([1.0, 2.0]), 0) == 0.0

    def test_exact_value(self):
        values = np.array([1.0, -4.0, 3.0, 2.0])
        assert kth_largest_magnitude(values, 2) == 3.0

    def test_k_equals_length_returns_min(self):
        values = np.array([1.0, -4.0, 3.0])
        assert kth_largest_magnitude(values, 3) == 1.0

    def test_k_exceeds_length_returns_min_magnitude(self):
        values = np.array([2.0, -5.0])
        assert kth_largest_magnitude(values, 10) == 2.0

    def test_selection_consistency_with_topk(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=200)
        k = 31
        cut = kth_largest_magnitude(values, k)
        assert (np.abs(values) >= cut).sum() >= k


class TestThresholdIndices:
    def test_keeps_entries_at_or_above_threshold(self):
        values = np.array([0.5, -2.0, 1.0, 0.1])
        picked = threshold_indices(values, 1.0)
        assert set(picked.tolist()) == {1, 2}

    def test_zero_threshold_keeps_all(self):
        values = np.array([0.0, 1.0, -1.0])
        assert threshold_indices(values, 0.0).size == 3

    def test_large_threshold_keeps_none(self):
        values = np.array([0.5, -2.0])
        assert threshold_indices(values, 100.0).size == 0

    def test_may_select_more_than_k(self):
        # Threshold pruning (as used by Ok-Topk) has no hard cardinality bound.
        values = np.ones(10)
        assert threshold_indices(values, 1.0).size == 10
