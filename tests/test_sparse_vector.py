"""Unit tests for the COO sparse gradient container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.vector import SparseGradient


class TestConstruction:
    def test_from_dense_keeps_nonzeros(self):
        dense = np.array([0.0, 1.0, 0.0, -2.0])
        sparse = SparseGradient.from_dense(dense)
        assert sparse.nnz == 2
        assert set(sparse.indices.tolist()) == {1, 3}

    def test_from_dense_with_offset(self):
        dense = np.array([1.0, 2.0])
        sparse = SparseGradient.from_dense(dense, offset=10, length=20)
        assert list(sparse.indices) == [10, 11]
        assert sparse.length == 20

    def test_empty(self):
        sparse = SparseGradient.empty(5)
        assert sparse.nnz == 0
        assert sparse.length == 5

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            SparseGradient(np.array([5]), np.array([1.0]), length=3)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            SparseGradient(np.array([-1]), np.array([1.0]), length=3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SparseGradient(np.array([0, 1]), np.array([1.0]), length=3)

    def test_duplicate_indices_are_merged(self):
        sparse = SparseGradient(np.array([2, 2, 0]), np.array([1.0, 3.0, 5.0]), length=4)
        assert sparse.nnz == 2
        dense = sparse.to_dense()
        assert dense[2] == 4.0
        assert dense[0] == 5.0

    def test_unsorted_indices_are_sorted(self):
        sparse = SparseGradient(np.array([3, 1]), np.array([1.0, 2.0]), length=5)
        assert list(sparse.indices) == [1, 3]

    def test_top_k_of_dense_returns_residual(self):
        dense = np.array([1.0, -5.0, 0.5, 3.0])
        sparse, residual = SparseGradient.top_k_of_dense(dense, 2)
        assert set(sparse.indices.tolist()) == {1, 3}
        assert residual[1] == 0.0 and residual[3] == 0.0
        assert residual[0] == 1.0 and residual[2] == 0.5

    def test_comm_size_is_two_per_entry(self):
        sparse = SparseGradient(np.array([0, 2]), np.array([1.0, 2.0]), length=4)
        assert sparse.comm_size == 4.0


class TestAlgebra:
    def test_round_trip_dense(self):
        dense = np.array([0.0, 1.5, 0.0, -2.5, 0.0])
        sparse = SparseGradient.from_dense(dense)
        np.testing.assert_allclose(sparse.to_dense(), dense)

    def test_add_disjoint(self):
        a = SparseGradient(np.array([0]), np.array([1.0]), 4)
        b = SparseGradient(np.array([2]), np.array([2.0]), 4)
        merged = a.add(b)
        np.testing.assert_allclose(merged.to_dense(), [1.0, 0.0, 2.0, 0.0])

    def test_add_overlapping_sums_values(self):
        a = SparseGradient(np.array([1, 2]), np.array([1.0, 1.0]), 4)
        b = SparseGradient(np.array([2, 3]), np.array([2.0, 3.0]), 4)
        merged = a.add(b)
        np.testing.assert_allclose(merged.to_dense(), [0.0, 1.0, 3.0, 3.0])

    def test_add_exhibits_sga_growth(self):
        # The sum of two k-sparse gradients with different supports has up to
        # 2k non-zeros: the root of the SGA dilemma.
        a = SparseGradient(np.array([0, 1, 2]), np.ones(3), 10)
        b = SparseGradient(np.array([5, 6, 7]), np.ones(3), 10)
        assert a.add(b).nnz == 6

    def test_add_empty_is_identity(self):
        a = SparseGradient(np.array([1]), np.array([2.0]), 4)
        assert a.add(SparseGradient.empty(4)) is a

    def test_add_length_mismatch_raises(self):
        a = SparseGradient(np.array([1]), np.array([2.0]), 4)
        b = SparseGradient(np.array([1]), np.array([2.0]), 5)
        with pytest.raises(ValueError):
            a.add(b)

    def test_scale(self):
        a = SparseGradient(np.array([1]), np.array([2.0]), 4)
        np.testing.assert_allclose(a.scale(0.5).to_dense(), [0.0, 1.0, 0.0, 0.0])

    def test_add_commutative(self):
        rng = np.random.default_rng(0)
        a = SparseGradient.from_dense(rng.normal(size=30) * (rng.random(30) < 0.3))
        b = SparseGradient.from_dense(rng.normal(size=30) * (rng.random(30) < 0.3))
        np.testing.assert_allclose(a.add(b).to_dense(), b.add(a).to_dense())


class TestSparsification:
    def test_top_k_keeps_largest(self):
        sparse = SparseGradient(np.array([0, 1, 2]), np.array([1.0, -5.0, 2.0]), 5)
        kept, dropped = sparse.top_k(1)
        assert list(kept.indices) == [1]
        assert set(dropped.indices.tolist()) == {0, 2}

    def test_top_k_preserves_mass(self):
        rng = np.random.default_rng(1)
        sparse = SparseGradient.from_dense(rng.normal(size=40))
        kept, dropped = sparse.top_k(10)
        np.testing.assert_allclose(kept.to_dense() + dropped.to_dense(), sparse.to_dense())

    def test_top_k_with_k_larger_than_nnz(self):
        sparse = SparseGradient(np.array([0]), np.array([1.0]), 5)
        kept, dropped = sparse.top_k(10)
        assert kept.nnz == 1
        assert dropped.nnz == 0

    def test_top_k_zero(self):
        sparse = SparseGradient(np.array([0]), np.array([1.0]), 5)
        kept, dropped = sparse.top_k(0)
        assert kept.nnz == 0
        assert dropped.nnz == 1

    def test_threshold_split(self):
        sparse = SparseGradient(np.array([0, 1, 2]), np.array([0.5, -2.0, 1.5]), 5)
        kept, dropped = sparse.threshold(1.0)
        assert set(kept.indices.tolist()) == {1, 2}
        assert set(dropped.indices.tolist()) == {0}


class TestTrustedConstructor:
    def test_matches_validating_constructor(self):
        indices = np.array([1, 4, 7], dtype=np.int64)
        values = np.array([1.0, -2.0, 3.0])
        trusted = SparseGradient.from_sorted_unique(indices, values, 10)
        checked = SparseGradient(indices, values, 10)
        np.testing.assert_array_equal(trusted.indices, checked.indices)
        np.testing.assert_array_equal(trusted.values, checked.values)
        assert trusted.length == checked.length

    def test_does_not_copy_arrays(self):
        indices = np.array([0, 2], dtype=np.int64)
        values = np.array([1.0, 2.0])
        sparse = SparseGradient.from_sorted_unique(indices, values, 5)
        assert sparse.indices is indices
        assert sparse.values is values

    def test_skips_validation(self):
        # The trust contract: invalid invariants are the caller's problem and
        # are NOT detected (this is what makes the constructor free).
        sparse = SparseGradient.from_sorted_unique(
            np.array([9, 3], dtype=np.int64), np.array([1.0, 2.0]), 5)
        np.testing.assert_array_equal(sparse.indices, [9, 3])


class TestMergeMany:
    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            SparseGradient.merge_many([])

    def test_single_piece_is_returned_unchanged(self):
        sparse = SparseGradient(np.array([1]), np.array([2.0]), 4)
        assert SparseGradient.merge_many([sparse]) is sparse

    def test_all_empty_pieces(self):
        merged = SparseGradient.merge_many([SparseGradient.empty(6),
                                            SparseGradient.empty(6)])
        assert merged.nnz == 0
        assert merged.length == 6

    def test_length_mismatch_raises(self):
        a = SparseGradient(np.array([1]), np.array([2.0]), 4)
        b = SparseGradient(np.array([1]), np.array([2.0]), 5)
        with pytest.raises(ValueError):
            SparseGradient.merge_many([a, b])

    def test_matches_pairwise_fold(self):
        rng = np.random.default_rng(3)
        pieces = []
        for _ in range(5):
            dense = rng.normal(size=40) * (rng.random(40) < 0.4)
            pieces.append(SparseGradient.from_dense(dense, length=40))
        merged = SparseGradient.merge_many(pieces)
        folded = pieces[0]
        for piece in pieces[1:]:
            folded = folded.add(piece)
        np.testing.assert_array_equal(merged.indices, folded.indices)
        np.testing.assert_array_equal(merged.values, folded.values)

    def test_overlapping_supports_sum(self):
        a = SparseGradient(np.array([0, 2]), np.array([1.0, 1.0]), 4)
        b = SparseGradient(np.array([2, 3]), np.array([2.0, 3.0]), 4)
        c = SparseGradient(np.array([0, 3]), np.array([4.0, 5.0]), 4)
        merged = SparseGradient.merge_many([a, b, c])
        np.testing.assert_allclose(merged.to_dense(), [5.0, 0.0, 3.0, 8.0])

    def test_non_contiguous_input_arrays(self):
        # Strided views are legal at the API boundary; the compiled kernels
        # read raw pointers and must compact them first.
        big_indices = np.arange(20, dtype=np.int64)
        big_values = np.ones(20)
        a = SparseGradient(big_indices[::2], big_values[::2], 100)
        b = SparseGradient(np.array([0, 2], dtype=np.int64),
                           np.array([1.0, 1.0]), 100)
        added = a.add(b)
        np.testing.assert_array_equal(added.indices, np.arange(0, 20, 2))
        np.testing.assert_allclose(added.to_dense()[[0, 2, 4]], [2.0, 2.0, 1.0])
        merged = SparseGradient.merge_many([a, b, a])
        np.testing.assert_array_equal(merged.indices, np.arange(0, 20, 2))
        np.testing.assert_allclose(merged.to_dense()[[0, 2, 4]], [3.0, 3.0, 2.0])


class TestSlicing:
    def test_restrict_range(self):
        sparse = SparseGradient(np.array([0, 3, 7]), np.array([1.0, 2.0, 3.0]), 10)
        restricted = sparse.restrict(2, 8)
        assert set(restricted.indices.tolist()) == {3, 7}
        assert restricted.length == 10

    def test_restrict_empty_range(self):
        sparse = SparseGradient(np.array([0, 3]), np.array([1.0, 2.0]), 10)
        assert sparse.restrict(4, 4).nnz == 0

    def test_restrict_inverted_range_is_empty(self):
        sparse = SparseGradient(np.array([0, 3, 7]), np.array([1.0, 2.0, 3.0]), 10)
        assert sparse.restrict(8, 2).nnz == 0

    def test_restrict_beyond_bounds(self):
        sparse = SparseGradient(np.array([0, 3, 7]), np.array([1.0, 2.0, 3.0]), 10)
        assert sparse.restrict(-5, 50).nnz == 3
        assert sparse.restrict(8, 50).nnz == 0

    def test_restrict_boundaries_are_half_open(self):
        sparse = SparseGradient(np.array([2, 5, 8]), np.array([1.0, 2.0, 3.0]), 10)
        restricted = sparse.restrict(2, 8)
        assert set(restricted.indices.tolist()) == {2, 5}

    def test_index_set(self):
        sparse = SparseGradient(np.array([2, 5]), np.array([1.0, 2.0]), 10)
        assert sparse.index_set() == {2, 5}

    def test_len_is_nnz(self):
        sparse = SparseGradient(np.array([2, 5]), np.array([1.0, 2.0]), 10)
        assert len(sparse) == 2
