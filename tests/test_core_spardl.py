"""Integration-level tests of the SparDL synchroniser (framework of Fig. 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster
from repro.core.config import SAGMode, SparDLConfig
from repro.core.residuals import ResidualPolicy
from repro.core.spardl import SparDLSynchronizer, make_teams

from tests.helpers import random_gradients


def build(num_workers, num_elements, *, k=None, density=0.05, num_teams=1,
          sag_mode=SAGMode.AUTO, residual_policy=ResidualPolicy.GLOBAL,
          sparsify_all=False, dense_fallback=True, dense_fallback_ratio=None):
    cluster = SimulatedCluster(num_workers)
    config = SparDLConfig(k=k, density=None if k else density, num_teams=num_teams,
                          sag_mode=sag_mode, residual_policy=residual_policy,
                          sparsify_all_blocks=sparsify_all,
                          dense_fallback=dense_fallback,
                          dense_fallback_ratio=dense_fallback_ratio)
    return cluster, SparDLSynchronizer(cluster, num_elements, config)


class TestMakeTeams:
    def test_contiguous_teams(self):
        assert make_teams(6, 3) == [[0, 1], [2, 3], [4, 5]]

    def test_single_team(self):
        assert make_teams(4, 1) == [[0, 1, 2, 3]]

    def test_invalid(self):
        with pytest.raises(ValueError):
            make_teams(6, 4)
        with pytest.raises(ValueError):
            make_teams(0, 1)


class TestSparDLBasics:
    @pytest.mark.parametrize("num_workers", [1, 2, 3, 5, 6, 8, 14])
    def test_all_workers_hold_identical_gradients(self, num_workers):
        _, sync = build(num_workers, 400)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.is_consistent

    @pytest.mark.parametrize("num_teams,num_workers", [(2, 8), (4, 8), (7, 14), (3, 12), (14, 14)])
    def test_consistency_with_teams(self, num_teams, num_workers):
        _, sync = build(num_workers, 400, num_teams=num_teams)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.is_consistent

    def test_final_nnz_close_to_k(self):
        num_workers, num_elements = 8, 800
        _, sync = build(num_workers, num_elements, k=80)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        # P blocks of k/P non-zeros each -> about k in total.
        assert result.info["final_nnz"] <= 80
        assert result.info["final_nnz"] >= 80 // 2

    def test_dense_k_equals_exact_allreduce(self):
        """With k = n the *sparse pipeline* degenerates to an exact dense
        All-Reduce (fallback disabled so the sparse path itself is tested)."""
        num_workers, num_elements = 6, 120
        _, sync = build(num_workers, num_elements, k=num_elements, dense_fallback=False)
        gradients = random_gradients(num_workers, num_elements)
        result = sync.synchronize(gradients)
        assert not sync.uses_dense_fallback
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-9)

    def test_latency_matches_equation_4(self):
        """SparDL (d=1) uses 2*ceil(log2 P) rounds."""
        for num_workers in (2, 3, 5, 6, 8, 14):
            cluster, sync = build(num_workers, 300)
            result = sync.synchronize(random_gradients(num_workers, 300))
            assert result.stats.rounds == 2 * math.ceil(math.log2(num_workers))

    def test_bandwidth_matches_equation_4(self):
        """SparDL (d=1) receives at most 4k(P-1)/P elements per worker."""
        num_workers, num_elements, k = 8, 800, 80
        cluster, sync = build(num_workers, num_elements, k=k)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        bound = 4 * k * (num_workers - 1) / num_workers
        assert result.stats.max_received <= bound + 1e-9

    def test_single_worker_no_communication(self):
        _, sync = build(1, 100, k=10)
        gradients = random_gradients(1, 100)
        result = sync.synchronize(gradients)
        assert result.stats.rounds == 0
        assert result.info["final_nnz"] <= 10

    def test_stats_window_is_per_synchronize_call(self):
        _, sync = build(4, 200)
        first = sync.synchronize(random_gradients(4, 200, seed=1))
        second = sync.synchronize(random_gradients(4, 200, seed=2))
        assert first.stats.rounds == second.stats.rounds

    def test_iteration_counter_advances(self):
        _, sync = build(4, 200)
        sync.synchronize(random_gradients(4, 200))
        sync.synchronize(random_gradients(4, 200))
        assert sync.iteration == 2

    def test_gradient_validation(self):
        _, sync = build(4, 200)
        with pytest.raises(ValueError):
            sync.synchronize({0: np.zeros(200)})
        with pytest.raises(ValueError):
            sync.synchronize({w: np.zeros(100) for w in range(4)})


class TestSparDLResidualConservation:
    @pytest.mark.parametrize("num_teams,num_workers,mode", [
        (1, 6, SAGMode.AUTO),
        (2, 8, SAGMode.RSAG),
        (4, 8, SAGMode.RSAG),
        (7, 14, SAGMode.BSAG),
        (3, 12, SAGMode.BSAG),
        (2, 8, SAGMode.BSAG),
    ])
    def test_global_gradient_plus_residuals_conserves_mass(self, num_teams, num_workers, mode):
        num_elements = 300
        _, sync = build(num_workers, num_elements, num_teams=num_teams, sag_mode=mode)
        gradients = random_gradients(num_workers, num_elements)
        result = sync.synchronize(gradients)
        reconstructed = result.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(reconstructed, sum(gradients.values()), atol=1e-8)

    def test_conservation_holds_across_iterations(self):
        """Residuals are re-applied each iteration, so (final + residual)
        always equals the sum of everything fed in so far minus what was
        already applied to the model."""
        num_workers, num_elements = 6, 200
        _, sync = build(num_workers, num_elements, density=0.02)
        applied = np.zeros(num_elements)
        fed = np.zeros(num_elements)
        for iteration in range(4):
            gradients = random_gradients(num_workers, num_elements, seed=iteration)
            fed += sum(gradients.values())
            result = sync.synchronize(gradients)
            applied += result.gradient(0)
            np.testing.assert_allclose(applied + sync.residuals.total_residual(), fed,
                                       atol=1e-8)


class TestSparDLWithSAG:
    def test_rsag_reduces_rounds_versus_d1(self):
        num_workers, num_elements = 8, 800
        _, base = build(num_workers, num_elements, k=80, num_teams=1)
        _, teamed = build(num_workers, num_elements, k=80, num_teams=2, sag_mode=SAGMode.RSAG)
        r_base = base.synchronize(random_gradients(num_workers, num_elements))
        r_team = teamed.synchronize(random_gradients(num_workers, num_elements))
        assert r_team.stats.rounds < r_base.stats.rounds

    def test_bsag_reduces_rounds_versus_d1_on_14_workers(self):
        num_workers, num_elements = 14, 700
        _, base = build(num_workers, num_elements, k=140, num_teams=1)
        _, teamed = build(num_workers, num_elements, k=140, num_teams=7, sag_mode=SAGMode.BSAG)
        r_base = base.synchronize(random_gradients(num_workers, num_elements))
        r_team = teamed.synchronize(random_gradients(num_workers, num_elements))
        assert r_team.stats.rounds < r_base.stats.rounds

    def test_bsag_controller_tracks_history(self):
        num_workers = 12
        _, sync = build(num_workers, 600, k=120, num_teams=3, sag_mode=SAGMode.BSAG)
        for iteration in range(5):
            sync.synchronize(random_gradients(num_workers, 600, seed=iteration))
        assert sync.controller is not None
        assert len(sync.controller.history) == 5
        assert len(sync.merged_nnz_history) == 5

    def test_rsag_has_no_controller(self):
        _, sync = build(8, 400, num_teams=2, sag_mode=SAGMode.RSAG)
        assert sync.controller is None

    def test_sag_info_reported(self):
        _, sync = build(14, 700, k=140, num_teams=7, sag_mode=SAGMode.BSAG)
        result = sync.synchronize(random_gradients(14, 700))
        assert "sag_steps" in result.info
        assert result.info["sag_h"] is not None

    def test_latency_matches_equation_7_for_rsag(self):
        """2*ceil(log2(P/d)) + log2(d) rounds."""
        num_workers, num_teams = 8, 4
        _, sync = build(num_workers, 400, k=80, num_teams=num_teams, sag_mode=SAGMode.RSAG)
        result = sync.synchronize(random_gradients(num_workers, 400))
        expected = 2 * math.ceil(math.log2(num_workers // num_teams)) + int(math.log2(num_teams))
        assert result.stats.rounds == expected

    def test_latency_matches_equation_10_for_bsag(self):
        """2*ceil(log2(P/d)) + ceil(log2 d) rounds."""
        num_workers, num_teams = 12, 3
        _, sync = build(num_workers, 600, k=120, num_teams=num_teams, sag_mode=SAGMode.BSAG)
        result = sync.synchronize(random_gradients(num_workers, 600))
        expected = (2 * math.ceil(math.log2(num_workers // num_teams))
                    + math.ceil(math.log2(num_teams)))
        assert result.stats.rounds == expected


class TestDenseFallback:
    def test_engages_at_default_crossover(self):
        _, sync = build(8, 400, density=0.5)
        assert sync.uses_dense_fallback
        _, sync = build(8, 400, density=0.1)
        assert not sync.uses_dense_fallback

    def test_fallback_result_is_exact_and_consistent(self):
        num_workers, num_elements = 8, 400
        _, sync = build(num_workers, num_elements, density=0.8)
        gradients = random_gradients(num_workers, num_elements)
        result = sync.synchronize(gradients)
        assert result.info["dense_fallback"] is True
        assert result.is_consistent
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-9)
        # Exact reduction leaves no residual behind.
        assert sync.residuals.total_residual() == pytest.approx(0.0)

    def test_fallback_consumes_stored_residuals(self):
        """Residuals accumulated by earlier sparse iterations are applied,
        not dropped, when the fallback engages (single synchroniser configs
        never mix, so simulate by injecting residual mass directly)."""
        num_workers, num_elements = 4, 100
        _, sync = build(num_workers, num_elements, density=0.9)
        sync.residuals.store(2).add_dense(np.full(num_elements, 0.5))
        gradients = random_gradients(num_workers, num_elements)
        result = sync.synchronize(gradients)
        expected = sum(gradients.values()) + 0.5
        np.testing.assert_allclose(result.gradient(0), expected, atol=1e-9)

    def test_ratio_override_moves_the_crossover(self):
        _, sync = build(8, 400, density=0.2, dense_fallback_ratio=0.15)
        assert sync.uses_dense_fallback
        _, sync = build(8, 400, density=0.6, dense_fallback_ratio=2.0)
        assert not sync.uses_dense_fallback

    def test_disable_keeps_sparse_pipeline(self):
        _, sync = build(8, 400, density=0.8, dense_fallback=False)
        assert not sync.uses_dense_fallback
        result = sync.synchronize(random_gradients(8, 400))
        assert result.info["dense_fallback"] is False

    def test_fallback_cheaper_than_sparse_at_high_density(self):
        from repro.comm.network import ETHERNET

        num_workers, num_elements = 8, 800
        gradients = random_gradients(num_workers, num_elements)
        _, fallback = build(num_workers, num_elements, density=0.9)
        _, sparse = build(num_workers, num_elements, density=0.9, dense_fallback=False)
        t_fallback = fallback.synchronize(gradients).stats.simulated_time(ETHERNET)
        t_sparse = sparse.synchronize(gradients).stats.simulated_time(ETHERNET)
        assert t_fallback < t_sparse


class TestSparDLResidualPolicies:
    @pytest.mark.parametrize("policy", [ResidualPolicy.GLOBAL, ResidualPolicy.PARTIAL,
                                        ResidualPolicy.LOCAL, ResidualPolicy.NONE])
    def test_all_policies_produce_consistent_results(self, policy):
        _, sync = build(6, 300, residual_policy=policy)
        result = sync.synchronize(random_gradients(6, 300))
        assert result.is_consistent

    def test_global_keeps_at_least_as_much_residual_mass_as_partial_and_local(self):
        gradients = random_gradients(8, 400, seed=9)
        norms = {}
        for policy in (ResidualPolicy.GLOBAL, ResidualPolicy.PARTIAL, ResidualPolicy.LOCAL):
            _, sync = build(8, 400, density=0.02, residual_policy=policy)
            sync.synchronize({k: v.copy() for k, v in gradients.items()})
            norms[policy] = float(np.abs(sync.residuals.total_residual()).sum())
        assert norms[ResidualPolicy.GLOBAL] >= norms[ResidualPolicy.PARTIAL] - 1e-9
        assert norms[ResidualPolicy.GLOBAL] >= norms[ResidualPolicy.LOCAL] - 1e-9

    def test_sparsify_all_blocks_still_consistent(self):
        _, sync = build(6, 300, sparsify_all=True)
        result = sync.synchronize(random_gradients(6, 300))
        assert result.is_consistent
