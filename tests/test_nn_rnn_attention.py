"""Unit tests for the LSTM and Transformer substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import (
    LearnedPositionalEmbedding,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
    softmax,
)
from repro.nn.layers import Linear
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential
from repro.nn.rnn import LSTM, LSTMCell

from tests.helpers import numerical_gradient_check


def _mse(pred, target):
    return MSELoss()(pred, target)


class TestLSTMCell:
    def test_step_shapes(self):
        cell = LSTMCell(4, 6, rng=np.random.default_rng(0))
        h, c, cache = cell.step(np.zeros((3, 4)), np.zeros((3, 6)), np.zeros((3, 6)))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 6)
        np.testing.assert_array_equal(cell.bias.data[6:12], np.ones(6))

    def test_module_interface_gradient_check(self):
        rng = np.random.default_rng(1)
        model = Sequential(LSTMCell(4, 5, rng=rng), Linear(5, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(3, 2))
        assert numerical_gradient_check(model, x, _mse, y) < 1e-6


class TestLSTM:
    def test_output_shape(self):
        lstm = LSTM(4, 6, num_layers=2, rng=np.random.default_rng(0))
        out = lstm.forward(np.zeros((3, 7, 4)))
        assert out.shape == (3, 7, 6)

    def test_backward_shape(self):
        lstm = LSTM(4, 6, rng=np.random.default_rng(0))
        out = lstm.forward(np.random.default_rng(1).normal(size=(3, 7, 4)))
        grad = lstm.backward(np.ones_like(out))
        assert grad.shape == (3, 7, 4)

    def test_gradient_check_single_layer(self):
        rng = np.random.default_rng(2)
        model = Sequential(LSTM(3, 4, rng=rng), Linear(4, 2, rng=rng))
        x = rng.normal(size=(2, 5, 3))
        y = rng.normal(size=(2, 5, 2))
        assert numerical_gradient_check(model, x, _mse, y, num_checks=30) < 1e-6

    def test_gradient_check_two_layers(self):
        rng = np.random.default_rng(3)
        model = Sequential(LSTM(3, 4, num_layers=2, rng=rng), Linear(4, 2, rng=rng))
        x = rng.normal(size=(2, 4, 3))
        y = rng.normal(size=(2, 4, 2))
        assert numerical_gradient_check(model, x, _mse, y, num_checks=30) < 1e-6

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            LSTM(3, 4, num_layers=0)

    def test_sequence_order_matters(self):
        """The LSTM is genuinely recurrent: permuting time steps changes the
        final hidden state."""
        lstm = LSTM(3, 4, rng=np.random.default_rng(4))
        x = np.random.default_rng(5).normal(size=(1, 6, 3))
        out = lstm.forward(x)[:, -1, :]
        out_reversed = lstm.forward(x[:, ::-1, :])[:, -1, :]
        assert not np.allclose(out, out_reversed)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        values = np.random.default_rng(0).normal(size=(3, 5))
        out = softmax(values)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_numerically_stable_for_large_inputs(self):
        out = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])


class TestAttention:
    def test_output_shape(self):
        attention = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        out = attention.forward(np.zeros((2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_model_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2)

    def test_gradient_check(self):
        rng = np.random.default_rng(6)
        model = Sequential(MultiHeadSelfAttention(6, 2, rng=rng), Linear(6, 2, rng=rng))
        x = rng.normal(size=(2, 4, 6))
        y = rng.normal(size=(2, 4, 2))
        assert numerical_gradient_check(model, x, _mse, y, num_checks=30) < 1e-6

    def test_attention_mixes_positions(self):
        """Changing one timestep changes the output at other timesteps."""
        attention = MultiHeadSelfAttention(4, 2, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(1, 5, 4))
        base = attention.forward(x)
        x2 = x.copy()
        x2[0, 0] += 1.0
        out2 = attention.forward(x2)
        assert not np.allclose(base[0, 3], out2[0, 3])


class TestTransformerEncoder:
    def test_output_shape(self):
        layer = TransformerEncoderLayer(8, 2, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_gradient_check(self):
        rng = np.random.default_rng(7)
        model = Sequential(TransformerEncoderLayer(6, 2, rng=rng), Linear(6, 2, rng=rng))
        x = rng.normal(size=(2, 3, 6))
        y = rng.normal(size=(2, 3, 2))
        assert numerical_gradient_check(model, x, _mse, y, num_checks=40) < 1e-6

    def test_residual_path_preserves_scale(self):
        layer = TransformerEncoderLayer(8, 2, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(2, 4, 8))
        out = layer.forward(x)
        # Pre-LN residual blocks keep the input as an additive component.
        assert np.abs(out - x).mean() < 10 * np.abs(x).mean()


class TestPositionalEmbedding:
    def test_adds_per_position_offset(self):
        pos = LearnedPositionalEmbedding(8, 4, rng=np.random.default_rng(0))
        x = np.zeros((2, 5, 4))
        out = pos.forward(x)
        np.testing.assert_allclose(out[0], pos.weight.data[:5])
        np.testing.assert_allclose(out[0], out[1])

    def test_sequence_longer_than_max_rejected(self):
        pos = LearnedPositionalEmbedding(4, 4)
        with pytest.raises(ValueError):
            pos.forward(np.zeros((1, 5, 4)))

    def test_backward_accumulates_over_batch(self):
        pos = LearnedPositionalEmbedding(6, 3, rng=np.random.default_rng(0))
        pos.forward(np.zeros((4, 2, 3)))
        pos.backward(np.ones((4, 2, 3)))
        np.testing.assert_allclose(pos.weight.grad[:2], np.full((2, 3), 4.0))
        np.testing.assert_allclose(pos.weight.grad[2:], 0.0)
