"""Unit tests for convolution, pooling and batch normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.conv import BatchNorm2d, Conv2d, GlobalAvgPool2d, MaxPool2d, col2im, im2col
from repro.nn.layers import Flatten, Linear
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential

from tests.helpers import numerical_gradient_check


def _mse(pred, target):
    return MSELoss()(pred, target)


class TestIm2Col:
    def test_shapes(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> (the defining adjoint property)."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 6, 6))
        cols = im2col(x, 3, 3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 3, stride=1, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_stride_reduces_output(self):
        x = np.zeros((1, 1, 8, 8))
        cols = im2col(x, 2, 2, stride=2, padding=0)
        assert cols.shape == (16, 4)


class TestConv2d:
    def test_output_shape_same_padding(self):
        conv = Conv2d(3, 8, 3, stride=1, padding=1, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 8, 16, 16)

    def test_output_shape_stride_two(self):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 4, 8, 8)

    def test_known_convolution_value(self):
        conv = Conv2d(1, 1, 3, stride=1, padding=0, rng=np.random.default_rng(0))
        conv.weight.data[...] = np.ones((1, 1, 3, 3))
        conv.bias.data[...] = 0.0
        x = np.ones((1, 1, 3, 3))
        assert conv.forward(x)[0, 0, 0, 0] == pytest.approx(9.0)

    def test_wrong_channel_count_rejected(self):
        conv = Conv2d(3, 4, 3)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 8, 8)))

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        model = Sequential(
            Conv2d(2, 3, 3, stride=1, padding=1, rng=rng),
            Flatten(),
            Linear(3 * 6 * 6, 2, rng=rng),
        )
        x = rng.normal(size=(2, 2, 6, 6))
        y = rng.normal(size=(2, 2))
        assert numerical_gradient_check(model, x, _mse, y) < 1e-6


class TestPooling:
    def test_maxpool_selects_maximum(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_gradient_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad[0, 0, 1, 1] == 1.0  # position of value 5
        assert grad[0, 0, 0, 0] == 0.0
        assert grad.sum() == 4.0

    def test_maxpool_gradient_check(self):
        rng = np.random.default_rng(3)
        model = Sequential(
            Conv2d(1, 2, 3, padding=1, rng=rng),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 3 * 3, 2, rng=rng),
        )
        x = rng.normal(size=(2, 1, 6, 6))
        y = rng.normal(size=(2, 2))
        assert numerical_gradient_check(model, x, _mse, y) < 1e-6

    def test_global_avg_pool(self):
        pool = GlobalAvgPool2d()
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        out = pool.forward(x)
        np.testing.assert_allclose(out, [[1.5, 5.5]])
        grad = pool.backward(np.ones((1, 2)))
        np.testing.assert_allclose(grad, np.full((1, 2, 2, 2), 0.25))


class TestBatchNorm2d:
    def test_training_normalises_batch(self):
        norm = BatchNorm2d(3)
        x = np.random.default_rng(0).normal(loc=2.0, scale=4.0, size=(8, 3, 5, 5))
        out = norm.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated_in_training_only(self):
        norm = BatchNorm2d(2, momentum=0.5)
        x = np.random.default_rng(1).normal(loc=3.0, size=(4, 2, 4, 4))
        norm.forward(x)
        mean_after_train = norm.running_mean.copy()
        norm.eval()
        norm.forward(x)
        np.testing.assert_array_equal(norm.running_mean, mean_after_train)

    def test_eval_uses_running_stats(self):
        norm = BatchNorm2d(1, momentum=0.0)
        x = np.full((2, 1, 2, 2), 4.0)
        norm.forward(x + np.random.default_rng(0).normal(scale=0.1, size=x.shape))
        norm.eval()
        out = norm.forward(x)
        assert np.isfinite(out).all()

    def test_gradient_check_in_training_mode(self):
        rng = np.random.default_rng(4)
        conv = Conv2d(1, 2, 3, padding=1, rng=rng)
        norm = BatchNorm2d(2)
        model = Sequential(conv, norm, Flatten(), Linear(2 * 4 * 4, 2, rng=rng))
        x = rng.normal(size=(3, 1, 4, 4))
        y = rng.normal(size=(3, 2))

        # Keep batch-norm in training mode (batch statistics) for the check.
        model.train()
        outputs = model.forward(x)
        _, grad_output = _mse(outputs, y)
        model.zero_grad()
        model.backward(grad_output)
        analytic = norm.gamma.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(analytic)
        for index in range(analytic.size):
            norm.gamma.data[index] += eps
            loss_plus, _ = _mse(model.forward(x), y)
            norm.gamma.data[index] -= 2 * eps
            loss_minus, _ = _mse(model.forward(x), y)
            norm.gamma.data[index] += eps
            numeric[index] = (loss_plus - loss_minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)
