"""The composable CompressorStack: construction, the (payload, error)
contract, conservation across every stage combination, momentum-off
bit-identity, and per-bucket ``bits=`` override composition.

The stack is the single compression object a synchroniser owns (PR 10).
Its invariants:

* stage order is validated against the canonical momentum -> sparsify ->
  quantize chain (any other order is mathematically wrong);
* ``compress_*`` returns ``(payload, error)`` with ``payload + error ==
  input`` exactly, so the conservation ledger ``global + residual_after ==
  residual_before + m * velocity_before + sum_w gradient_w`` holds to 1e-9
  for every combination of momentum x sparsify x quantize x deferred;
* with momentum and bits both unset, ``from_config`` returns ``None`` and
  every synchroniser keeps its pre-stack code path bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import describe, make, parse_spec
from repro.baselines.registry import make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.compression import (
    CompressorStack,
    CompressorStage,
    MomentumCorrection,
    QuantizeStage,
    TopKSparsifier,
)
from repro.compression.quantization import QuantizedCompressor, quantized_sparse_cost
from repro.core.config import SparDLConfig
from repro.core.residuals import ResidualManager
from repro.core.spardl import SparDLSynchronizer
from repro.nn.models import build_mlp
from repro.sparse.vector import SparseGradient

from tests.helpers import random_gradients


def _quantize(bits: int, workers: int = 2) -> QuantizeStage:
    return QuantizeStage(QuantizedCompressor(bits, workers, seed=0))


class TestStackConstruction:
    def test_canonical_order_accepted(self):
        stack = CompressorStack([MomentumCorrection(0.9), TopKSparsifier(),
                                 _quantize(8)])
        assert stack.describe() == "momentum(0.9) -> topk -> quantize(8)"
        assert stack.momentum == 0.9
        assert stack.num_bits == 8
        assert stack.transforms_wire
        assert stack.prices

    def test_wrong_order_raises(self):
        with pytest.raises(ValueError, match="stage order"):
            CompressorStack([_quantize(8), MomentumCorrection(0.9)])
        with pytest.raises(ValueError, match="stage order"):
            CompressorStack([TopKSparsifier(), MomentumCorrection(0.9)])

    def test_duplicate_stage_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            CompressorStack([TopKSparsifier(), TopKSparsifier()])

    def test_empty_stack_raises(self):
        with pytest.raises(ValueError, match="at least one stage"):
            CompressorStack([])

    def test_unknown_kind_raises(self):
        class Bogus(CompressorStage):
            kind = "frobnicate"

        with pytest.raises(ValueError, match="unknown stage kind"):
            CompressorStack([Bogus()])

    def test_momentum_factor_validated(self):
        with pytest.raises(ValueError):
            MomentumCorrection(0.0)
        with pytest.raises(ValueError):
            MomentumCorrection(1.0)

    def test_from_config_trivial_is_none(self):
        assert CompressorStack.from_config(4) is None
        assert CompressorStack.from_config(4, sparsify=True) is None

    def test_from_config_momentum_only(self):
        stack = CompressorStack.from_config(4, momentum=0.9, sparsify=True)
        assert stack.describe() == "momentum(0.9) -> topk"
        assert not stack.transforms_wire
        assert not stack.prices
        assert stack.num_bits is None
        assert stack.quantize is None

    def test_from_config_full(self):
        stack = CompressorStack.from_config(4, momentum=0.5, num_bits=4,
                                            sparsify=True)
        assert stack.describe() == "momentum(0.5) -> topk -> quantize(4)"
        assert stack.stage("sparsify") is not None

    def test_pricing_without_quantize_raises(self):
        stack = CompressorStack.from_config(4, momentum=0.9, sparsify=True)
        assert stack.sparse_cost(10) == 20.0
        assert stack.dense_cost(10) == 10.0
        with pytest.raises(RuntimeError, match="stack.prices"):
            stack.price(np.zeros(4))
        with pytest.raises(RuntimeError, match="stack.prices"):
            stack.price_message(None)

    def test_pricing_with_quantize_delegates(self):
        stack = CompressorStack.from_config(4, num_bits=8, sparsify=True)
        assert stack.sparse_cost(10) == quantized_sparse_cost(10, 8)
        assert stack.dense_cost(32) == 32 * 8 / 32


class TestPayloadErrorContract:
    def test_declarative_stack_is_identity(self):
        stack = CompressorStack.from_config(2, momentum=0.9, sparsify=True)
        sparse = SparseGradient(np.array([1, 5, 9]), np.array([1.0, -2.0, 0.5]), 12)
        payload, error = stack.compress_sparse(0, sparse)
        assert payload is sparse
        assert error.nnz == 0
        dense = np.linspace(-1.0, 1.0, 8)
        out, err = stack.compress_dense(0, dense)
        np.testing.assert_array_equal(out, dense)
        np.testing.assert_array_equal(err, np.zeros(8))

    def test_sparse_payload_plus_error_reconstructs_exactly(self):
        stack = CompressorStack.from_config(2, momentum=0.9, num_bits=3,
                                            sparsify=True)
        rng = np.random.default_rng(7)
        dense = rng.normal(size=40)
        sparse, _ = SparseGradient.top_k_of_dense(dense, 10, length=40)
        payload, error = stack.compress_sparse(1, sparse)
        np.testing.assert_array_equal(payload.to_dense() + error.to_dense(),
                                      sparse.to_dense())

    def test_dense_payload_plus_error_reconstructs_exactly(self):
        stack = CompressorStack.from_config(2, num_bits=4)
        dense = np.random.default_rng(3).normal(size=25)
        payload, error = stack.compress_dense(0, dense)
        # The dense error is computed in the quantizer's scaled space, so
        # reconstruction is exact up to one float64 rounding per value.
        np.testing.assert_allclose(payload + error, dense, rtol=0, atol=1e-14)

    def test_bind_residuals_installs_momentum(self):
        stack = CompressorStack.from_config(3, momentum=0.7, sparsify=True)
        manager = ResidualManager(3, 20)
        stack.bind_residuals(manager)
        assert manager.momentum == 0.7
        assert manager.velocity(0) is not None


class TestConservationProperty:
    """ISSUE gate: ``sent + error + discards == input`` to 1e-9 across
    momentum x sparsify x quantize x deferred.  With momentum correction the
    ledger gains the re-fed velocity term:
    ``global + residual_after == residual_before + m * velocity_before +
    sum_w gradient_w``  (``m = 0`` reduces it to plain GRES conservation)."""

    @given(momentum=st.sampled_from([None, 0.5, 0.9]),
           bits=st.sampled_from([None, 8, 4]),
           deferred=st.booleans(),
           seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_spardl_ledger_all_stage_combinations(self, momentum, bits,
                                                  deferred, seed):
        num_workers, num_elements = 4, 120
        cluster = SimulatedCluster(num_workers)
        sync = SparDLSynchronizer(cluster, num_elements, SparDLConfig(
            density=0.05, num_bits=bits, momentum=momentum,
            deferred_residuals=deferred))
        factor = momentum or 0.0
        for i in range(3):
            grads = random_gradients(num_workers, num_elements, seed=seed + 7 * i)
            residual_before = sync.residuals.total_residual()
            velocity_before = sync.residuals.total_velocity()
            result = sync.synchronize(grads)
            assert result.is_consistent
            lhs = result.gradient(0) + sync.residuals.total_residual()
            rhs = residual_before + factor * velocity_before + sum(grads.values())
            np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @given(method=st.sampled_from(["TopkA", "Dense"]),
           momentum=st.sampled_from([0.5, 0.9]),
           bits=st.sampled_from([None, 8]),
           seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_baseline_ledger_with_momentum(self, method, momentum, bits, seed):
        num_workers, num_elements = 4, 90
        cluster = SimulatedCluster(num_workers)
        kwargs = {} if method == "Dense" else {"density": 0.1}
        sync = make_synchronizer(method, cluster, num_elements,
                                 momentum=momentum, num_bits=bits, **kwargs)
        for i in range(3):
            grads = random_gradients(num_workers, num_elements, seed=seed + 11 * i)
            residual_before = sync.residuals.total_residual()
            velocity_before = sync.residuals.total_velocity()
            result = sync.synchronize(grads)
            lhs = result.gradient(0) + sync.residuals.total_residual()
            rhs = residual_before + momentum * velocity_before + sum(grads.values())
            np.testing.assert_allclose(lhs, rhs, atol=1e-9)


ALL_METHODS = ["SparDL", "TopkA", "TopkDSA", "gTopk", "Ok-Topk", "Dense"]


class TestMomentumOffBitIdentity:
    """With ``momentum=`` unset the stack machinery must be invisible: no
    velocity is allocated, no ``momentum`` info key appears, and two
    identical builds produce byte-identical gradients, residual stores and
    communication statistics (the PR 9 behaviour)."""

    def _build(self, method):
        cluster = SimulatedCluster(4)
        kwargs = {} if method == "Dense" else {"density": 0.05}
        return make_synchronizer(method, cluster, 160, **kwargs)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_no_stack_no_momentum_key(self, method):
        sync = self._build(method)
        assert sync.stack is None
        assert sync.compressor is None
        result = sync.synchronize(random_gradients(4, 160, seed=3))
        assert "momentum" not in result.info

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_two_builds_byte_identical(self, method):
        a, b = self._build(method), self._build(method)
        for i in range(2):
            grads = random_gradients(4, 160, seed=17 + i)
            result_a = a.synchronize(grads)
            result_b = b.synchronize({w: g.copy() for w, g in grads.items()})
            for rank in range(4):
                np.testing.assert_array_equal(result_a.gradient(rank),
                                              result_b.gradient(rank))
            assert result_a.stats.total_volume == result_b.stats.total_volume
            assert result_a.stats.rounds == result_b.stats.rounds
            residuals_a = getattr(a, "residuals", None)
            if residuals_a is not None:
                np.testing.assert_array_equal(residuals_a.total_residual(),
                                              b.residuals.total_residual())

    def test_momentum_zero_manager_matches_plain_manager(self):
        plain = ResidualManager(3, 50)
        zero = ResidualManager(3, 50, momentum=0.0)
        assert zero.velocity(0) is None
        grads = random_gradients(3, 50, seed=5)
        corrected_plain = plain.apply(grads)
        corrected_zero = zero.apply({w: g.copy() for w, g in grads.items()})
        for worker in range(3):
            np.testing.assert_array_equal(corrected_plain[worker],
                                          corrected_zero[worker])
        np.testing.assert_array_equal(zero.total_velocity(), np.zeros(50))


class TestPerBucketBits:
    """Satellite 1: ``bits=8,emb:32`` per-bucket overrides — grammar
    round-trip and mixed-bucket pricer composition."""

    def test_spec_round_trips(self):
        spec = "spardl?density=0.2&buckets=layer&bits=8,out:32"
        parsed = parse_spec(spec)
        assert parsed.bits == "8,out:32"
        assert parsed.canonical() == spec
        assert parse_spec(parsed.canonical()).canonical() == spec

    def test_plain_bits_canonicalizes_to_int(self):
        assert parse_spec("spardl?density=0.1&bits=8").bits == 8

    @pytest.mark.parametrize("bad,match", [
        ("spardl?density=0.1&buckets=layer&bits=emb:q,8", "integer between"),
        ("spardl?density=0.1&buckets=layer&bits=emb:32,8", "must come before"),
        ("spardl?density=0.1&buckets=layer&bits=8,emb:32,emb:16", "duplicate bits"),
        ("spardl?density=0.1&buckets=layer&bits=8,:16", "bucket-name pattern"),
        ("spardl?density=0.1&buckets=layer&bits=8,16", "one default"),
    ])
    def test_malformed_overrides_raise(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_spec(bad)

    def test_overrides_on_flat_layout_raise(self):
        with pytest.raises(ValueError, match="non-flat buckets"):
            make("spardl?density=0.1&bits=8,emb:32", SimulatedCluster(4),
                 num_elements=100)

    def test_mixed_bucket_pricer_composition(self):
        """Each bucket prices its own wire: ``out``-matching buckets carry a
        32-bit compressor, the rest the 8-bit default, and the per-bucket
        info reports the mix after a live step."""
        model = build_mlp(8, [8], 2, seed=0)
        cluster = SimulatedCluster(4)
        spec = "spardl?density=0.2&buckets=layer&bits=8,out:32"
        sync = make(spec, cluster, model=model)
        assert describe(sync) == spec
        widths = {}
        for name, session in zip(sync.bucket_names, sync.sessions):
            widths[name] = session.synchronizer.compressor.num_bits
        for name, bits in widths.items():
            assert bits == (32 if "out" in name else 8), name
        assert sorted(set(widths.values())) == [8, 32]

        grads = random_gradients(4, model.num_parameters(), seed=9)
        result = sync.synchronize(grads)
        reported = [info.get("quantized_bits")
                    for info in result.info["per_bucket_info"]]
        expected = [32 if "out" in name else 8 for name in sync.bucket_names]
        assert reported == expected
        # Conservation survives the mixed-precision composition.
        recon = result.gradient(0) + sync.total_residual()
        np.testing.assert_allclose(recon, sum(grads.values()), atol=1e-9)

    def test_override_matches_fused_bucket_by_member_tensor(self):
        model = build_mlp(8, [8], 2, seed=0)
        cluster = SimulatedCluster(2)
        sync = make("spardl?density=0.2&buckets=size:100000&bits=8,out:32",
                    cluster, model=model)
        # Everything fuses into one bucket whose name joins all tensors with
        # "+"; the "out" pattern matches a member, so the override applies.
        assert sync.num_buckets == 1
        assert sync.sessions[0].synchronizer.compressor.num_bits == 32
