"""Unit tests for the Table I complexity formulas."""

from __future__ import annotations

import math

import pytest

from repro.analysis.complexity import (
    ComplexityBound,
    dense_allreduce_complexity,
    gtopk_complexity,
    ok_topk_complexity,
    predicted_time,
    spardl_bsag_complexity,
    spardl_complexity,
    spardl_rsag_complexity,
    table1,
    topk_a_complexity,
    topk_dsa_complexity,
)

P, N, K = 14, 1_000_000, 10_000


class TestTableIRows:
    def test_topk_a(self):
        bound = topk_a_complexity(P, N, K)
        assert bound.latency_rounds == math.ceil(math.log2(P))
        assert bound.bandwidth_low == 2 * (P - 1) * K

    def test_topk_dsa(self):
        bound = topk_dsa_complexity(P, N, K)
        assert bound.latency_rounds == P + 2 * math.ceil(math.log2(P))
        assert bound.bandwidth_low == pytest.approx(4 * K * (P - 1) / P)
        assert bound.bandwidth_high == pytest.approx((2 * K + N) * (P - 1) / P)
        assert bound.has_range

    def test_gtopk(self):
        bound = gtopk_complexity(P, N, K)
        assert bound.latency_rounds == 2 * math.ceil(math.log2(P))
        assert bound.bandwidth_low == 4 * math.ceil(math.log2(P)) * K

    def test_ok_topk(self):
        bound = ok_topk_complexity(P, N, K)
        assert bound.latency_rounds == 2 * (P + math.ceil(math.log2(P)))
        assert bound.bandwidth_low == pytest.approx(2 * K * (P - 1) / P)
        assert bound.bandwidth_high == pytest.approx(6 * K * (P - 1) / P)

    def test_spardl(self):
        bound = spardl_complexity(P, N, K)
        assert bound.latency_rounds == 2 * math.ceil(math.log2(P))
        assert bound.bandwidth_low == pytest.approx(4 * K * (P - 1) / P)
        assert not bound.has_range

    def test_spardl_rsag_matches_equation_7(self):
        d = 2
        bound = spardl_rsag_complexity(P, N, K, d)
        expected_latency = 2 * math.ceil(math.log2(P / d)) + math.log2(d)
        assert bound.latency_rounds == expected_latency
        expected_bw = 2 * K * ((2 * P - 2 * d) / P + d / P * math.log2(d))
        assert bound.bandwidth_low == pytest.approx(expected_bw)

    def test_spardl_rsag_d2_same_bandwidth_as_d1(self):
        """The paper: with d=2 R-SAG keeps the bandwidth of SparDL (d=1) while
        reducing the latency by one round."""
        base = spardl_complexity(16, N, K)
        rsag = spardl_rsag_complexity(16, N, K, 2)
        assert rsag.bandwidth_low == pytest.approx(base.bandwidth_low)
        assert rsag.latency_rounds == base.latency_rounds - 1

    def test_spardl_rsag_requires_power_of_two_d(self):
        with pytest.raises(ValueError):
            spardl_rsag_complexity(12, N, K, 3)

    def test_spardl_bsag_matches_equation_10(self):
        d = 7
        bound = spardl_bsag_complexity(P, N, K, d)
        expected_latency = 2 * math.ceil(math.log2(P / d)) + math.ceil(math.log2(d))
        assert bound.latency_rounds == expected_latency
        assert bound.bandwidth_low == pytest.approx(2 * K * (d * d + P - 2 * d) / (P * d))
        assert bound.bandwidth_high == pytest.approx(2 * K * (d * d + 2 * P - 3 * d) / P)

    def test_spardl_bsag_upper_bound_at_d2_equals_d1(self):
        """The paper: the B-SAG upper bound at d=2 equals SparDL (d=1)."""
        base = spardl_complexity(16, N, K)
        bsag = spardl_bsag_complexity(16, N, K, 2)
        assert bsag.bandwidth_high == pytest.approx(base.bandwidth_low)

    def test_bsag_lower_bound_minimised_near_sqrt_p(self):
        """The B-SAG lower bound decreases up to d ~ sqrt(P) then increases."""
        candidates = [d for d in range(1, 17) if 16 % d == 0]
        lows = {d: spardl_bsag_complexity(16, N, K, d).bandwidth_low for d in candidates}
        best = min(lows, key=lows.get)
        assert best == 4  # sqrt(16)

    def test_dense_allreduce(self):
        bound = dense_allreduce_complexity(8, N)
        assert bound.latency_rounds == 6
        assert bound.bandwidth_low == pytest.approx(2 * N * 7 / 8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            spardl_complexity(0, N, K)
        with pytest.raises(ValueError):
            spardl_complexity(P, N, 0)
        with pytest.raises(ValueError):
            spardl_bsag_complexity(P, N, K, 5)  # 5 does not divide 14


class TestOrderings:
    def test_spardl_has_lowest_latency_and_bandwidth_among_sparse_methods(self):
        """The qualitative claim of Table I: SparDL dominates on both axes
        compared to TopkA (bandwidth), TopkDSA and Ok-Topk (latency)."""
        rows = table1(P, N, K)
        spardl = rows["SparDL"]
        assert spardl.latency_rounds <= rows["TopkA"].latency_rounds * 2
        assert spardl.latency_rounds < rows["TopkDSA"].latency_rounds
        assert spardl.latency_rounds < rows["Ok-Topk"].latency_rounds
        assert spardl.bandwidth_high < rows["TopkA"].bandwidth_high
        assert spardl.bandwidth_high < rows["TopkDSA"].bandwidth_high
        assert spardl.bandwidth_high < rows["Ok-Topk"].bandwidth_high
        assert spardl.bandwidth_high < rows["gTopk"].bandwidth_high

    def test_table1_includes_sag_rows_when_d_given(self):
        rows = table1(P, N, K, d=7)
        assert any("B-SAG" in name for name in rows)
        rows = table1(16, N, K, d=4)
        assert any("R-SAG" in name for name in rows)

    def test_predicted_time_upper_at_least_lower(self):
        for bound in table1(P, N, K).values():
            low, high = predicted_time(bound, alpha=1e-3, beta=1e-8)
            assert high >= low

    def test_describe_mentions_method(self):
        bound = spardl_complexity(P, N, K)
        assert "SparDL" in bound.describe()
        assert "alpha" in bound.describe()
