"""Per-layer bucketed synchronisation: layout, equivalence, trainer wiring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp_st

from repro.api import make, make_factory
from repro.comm.cluster import SimulatedCluster
from repro.core.bucketed import BucketedSynchronizer, fuse_buckets, layer_buckets
from repro.nn.models import build_mlp
from repro.training.cases import get_case
from repro.training.trainer import DistributedTrainer, TrainerConfig

NUM_WORKERS = 4


def _model():
    return build_mlp(20, [32, 16], 4, seed=0)


def _gradients(num_elements: int, iteration: int = 0):
    return {w: np.random.default_rng(100 * iteration + w).normal(size=num_elements)
            for w in range(NUM_WORKERS)}


class TestBucketLayout:
    def test_layer_buckets_cover_every_parameter(self):
        model = _model()
        buckets = layer_buckets(model)
        assert sum(size for _, size in buckets) == model.num_parameters()
        assert len(buckets) == len(model.parameters())

    def test_fuse_respects_cap_except_oversized_tensors(self):
        buckets = [("a", 100), ("b", 50), ("c", 400), ("d", 30), ("e", 30)]
        fused = fuse_buckets(buckets, 200)
        assert sum(size for _, size in fused) == 610
        # The 400-element tensor keeps its own bucket; the others fuse.
        assert ("c", 400) in fused
        assert all(size <= 200 for _, size in fused if size != 400)

    def test_fuse_preserves_order(self):
        fused = fuse_buckets([("a", 10), ("b", 10), ("c", 10)], 25)
        assert fused == [("a+b", 20), ("c", 10)]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fuse_buckets([("a", 10)], 0)
        with pytest.raises(ValueError):
            BucketedSynchronizer(SimulatedCluster(2), [],
                                 factory=lambda c, n: None)


class TestBucketedVersusFlat:
    def test_dense_path_equivalent_to_flat(self):
        """Satellite requirement: bucketed == flat for the dense path (the
        allreduce is exact, so slicing cannot change the result beyond
        float addition order)."""
        model = _model()
        n = model.num_parameters()
        grads = _gradients(n)
        flat = make("dense", SimulatedCluster(NUM_WORKERS), num_elements=n)
        bucketed = make("dense?buckets=layer", SimulatedCluster(NUM_WORKERS), model=model)
        flat_result = flat.synchronize({w: g.copy() for w, g in grads.items()})
        bucketed_result = bucketed.synchronize({w: g.copy() for w, g in grads.items()})
        exact = sum(grads.values())
        for worker in range(NUM_WORKERS):
            np.testing.assert_allclose(bucketed_result.global_gradients[worker],
                                       flat_result.global_gradients[worker],
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(bucketed_result.global_gradients[worker],
                                       exact, rtol=1e-9, atol=1e-12)
        # Same elements move in total (the dense volume is layout-invariant);
        # bucketing pays extra latency rounds, which the stats expose honestly.
        assert bucketed_result.stats.total_volume == pytest.approx(
            flat_result.stats.total_volume)
        assert bucketed_result.stats.rounds >= flat_result.stats.rounds

    def test_spardl_path_equivalent_conservation(self):
        """Satellite requirement for the SparDL path: per-bucket top-k picks
        *different* indices than flat top-k (small layers are guaranteed
        representation), but both pipelines conserve gradient mass exactly:
        global + residuals == exact dense sum."""
        model = _model()
        n = model.num_parameters()
        grads = _gradients(n)
        exact = sum(grads.values())
        flat = make("spardl?density=0.05", SimulatedCluster(NUM_WORKERS), num_elements=n)
        bucketed = make("spardl?density=0.05&buckets=layer",
                        SimulatedCluster(NUM_WORKERS), model=model)
        flat_result = flat.synchronize({w: g.copy() for w, g in grads.items()})
        bucketed_result = bucketed.synchronize({w: g.copy() for w, g in grads.items()})
        assert flat_result.is_consistent and bucketed_result.is_consistent
        np.testing.assert_allclose(
            flat_result.gradient(0) + flat.residuals.total_residual(),
            exact, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            bucketed_result.gradient(0) + bucketed.total_residual(),
            exact, rtol=1e-9, atol=1e-12)

    def test_spardl_buckets_give_small_layers_representation(self):
        """Per-layer selection is not flat selection: every bucket
        contributes at least one non-zero to the global gradient."""
        model = _model()
        bucketed = make("spardl?density=0.05&buckets=layer",
                        SimulatedCluster(NUM_WORKERS), model=model)
        result = bucketed.synchronize(_gradients(model.num_parameters()))
        for info in result.info["per_bucket_info"]:
            assert info["final_nnz"] >= 1

    def test_stats_aggregate_per_bucket(self):
        model = _model()
        bucketed = make("spardl?density=0.05&buckets=layer",
                        SimulatedCluster(NUM_WORKERS), model=model)
        result = bucketed.synchronize(_gradients(model.num_parameters()))
        sessions = bucketed.sessions
        assert result.stats.rounds == sum(s.cumulative_stats.rounds for s in sessions)
        assert result.stats.total_volume == pytest.approx(
            sum(s.cumulative_stats.total_volume for s in sessions))
        assert result.info["buckets"] == len(sessions)

    def test_size_fusion_reduces_bucket_count(self):
        model = _model()
        per_layer = make("spardl?density=0.05&buckets=layer",
                         SimulatedCluster(NUM_WORKERS), model=model)
        fused = make("spardl?density=0.05&buckets=size:100000",
                     SimulatedCluster(NUM_WORKERS), model=model)
        assert fused.num_buckets < per_layer.num_buckets
        assert fused.num_elements == per_layer.num_elements

    def test_absolute_k_is_a_global_budget_not_per_bucket(self):
        """k=50 over 6 buckets must select ~50 entries in total, not 6x50."""
        model = _model()
        bucketed = make("spardl?k=50&buckets=layer",
                        SimulatedCluster(NUM_WORKERS), model=model)
        total_k = bucketed.k
        assert total_k is not None
        # Pro-rata split with a 1-entry floor per bucket: close to 50, never
        # anywhere near 6 * 50.
        assert 50 <= total_k <= 50 + bucketed.num_buckets

    def test_bucketed_requires_model(self):
        with pytest.raises(ValueError, match="needs the model"):
            make("spardl?density=0.05&buckets=layer", SimulatedCluster(4),
                 num_elements=100)


class TestTrainerWiring:
    def test_trainer_builds_bucketed_synchronizer_from_factory(self):
        case = get_case(5)
        train, test = case.build_datasets(num_samples=48, seed=0)
        cluster = SimulatedCluster(NUM_WORKERS)
        trainer = DistributedTrainer(
            cluster, make_factory("spardl?density=0.05&buckets=layer"),
            case.build_model, train, test,
            config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                                 momentum=case.momentum, seed=0,
                                 check_consistency=True),
            compute_profile=case.compute_profile,
        )
        assert isinstance(trainer.synchronizer, BucketedSynchronizer)
        assert trainer.synchronizer.num_elements == trainer.num_elements
        history = trainer.train(1)
        assert np.isfinite(history.epochs[0].train_loss)
        # The trainer's session accumulated the whole epoch's traffic.
        assert trainer.session.iteration == len(history.iterations)
        assert trainer.session.cumulative_stats.rounds > 0

    def test_trainer_accepts_flat_factory_and_prebuilt(self):
        case = get_case(5)
        train, test = case.build_datasets(num_samples=32, seed=0)
        cluster = SimulatedCluster(2)
        trainer = DistributedTrainer(
            cluster, make_factory("spardl?density=0.1"), case.build_model,
            train, test, config=TrainerConfig(batch_size=8),
            compute_profile=case.compute_profile,
        )
        assert trainer.synchronizer.num_elements == trainer.num_elements

    def test_prebuilt_mismatch_still_raises(self):
        case = get_case(5)
        train, test = case.build_datasets(num_samples=32, seed=0)
        cluster = SimulatedCluster(2)
        sync = make("spardl?density=0.1", cluster, num_elements=123)
        with pytest.raises(ValueError, match="parameters"):
            DistributedTrainer(cluster, sync, case.build_model, train, test,
                               config=TrainerConfig(batch_size=8))


class TestBucketLayoutProperties:
    """Property backfill for fuse_buckets / layer_buckets (previously only
    exercised through hand-picked examples)."""

    buckets_strategy = hyp_st.lists(
        hyp_st.tuples(hyp_st.text("abcdef", min_size=1, max_size=3),
                      hyp_st.integers(1, 10_000)),
        min_size=1, max_size=12)

    @given(buckets=buckets_strategy, cap=hyp_st.integers(1, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_fusion_preserves_total_size_and_ordering(self, buckets, cap):
        fused = fuse_buckets(buckets, cap)
        assert sum(size for _, size in fused) == sum(size for _, size in buckets)
        # Ordering: the fused names, joined, reproduce the original order.
        assert ("+".join(name for name, _ in fused)
                == "+".join(name for name, _ in buckets))
        # Never more groups than inputs; a huge cap fuses everything.
        assert 1 <= len(fused) <= len(buckets)

    @given(buckets=buckets_strategy)
    @settings(max_examples=30, deadline=None)
    def test_unbounded_cap_fuses_everything(self, buckets):
        total = sum(size for _, size in buckets)
        assert len(fuse_buckets(buckets, total)) == 1

    @given(buckets=buckets_strategy, cap=hyp_st.integers(1, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_groups_respect_cap_except_oversized_singletons(self, buckets, cap):
        for name, size in fuse_buckets(buckets, cap):
            assert size <= cap or "+" not in name

    @given(cap=hyp_st.integers(-5, 0))
    @settings(max_examples=10, deadline=None)
    def test_rejects_non_positive_cap(self, cap):
        with pytest.raises(ValueError):
            fuse_buckets([("a", 10)], cap)

    def test_single_parameter_model_produces_one_bucket(self):
        class _OneParam:
            name = "w"
            size = 7

        class _Module:
            def parameters(self):
                return [_OneParam()]

        buckets = layer_buckets(_Module())
        assert buckets == [("w", 7)]
        # And fusion at any cap keeps the single bucket intact.
        assert fuse_buckets(buckets, 1) == [("w", 7)]
        assert fuse_buckets(buckets, 10_000) == [("w", 7)]

    def test_empty_and_invalid_modules_rejected(self):
        class _Empty:
            def parameters(self):
                return []

        class _ZeroParam:
            def parameters(self):
                class P:
                    name = "z"
                    size = 0
                return [P()]

        with pytest.raises(ValueError):
            layer_buckets(_Empty())
        with pytest.raises(ValueError):
            layer_buckets(_ZeroParam())
