"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def cluster4() -> SimulatedCluster:
    return SimulatedCluster(4)


@pytest.fixture
def cluster6() -> SimulatedCluster:
    return SimulatedCluster(6)


@pytest.fixture
def cluster8() -> SimulatedCluster:
    return SimulatedCluster(8)
