"""The staged pipeline must reproduce the legacy one-shot call bit for bit.

Acceptance criterion of the staged-pipeline redesign: for every method in
``SYNCHRONIZER_NAMES``, driving the stages through a
:class:`~repro.core.pipeline.SyncSession` (and through a single-flat-bucket
:class:`~repro.core.bucketed.BucketedSynchronizer`) with a constant
schedule produces bit-identical ``SyncResult.global_gradients`` and equal
``CommStats`` volumes to the legacy ``synchronize()`` adapter, across
multiple iterations (i.e. with residual state evolving).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SYNCHRONIZER_NAMES, make
from repro.comm.cluster import SimulatedCluster
from repro.core.bucketed import BucketedSynchronizer
from repro.core.pipeline import PIPELINE_STAGES, SyncSession, SyncStage

NUM_ELEMENTS = 600
ITERATIONS = 3


def _spec(method: str) -> str:
    if method == "Dense":
        return "dense"
    return f"{method.lower()}?density=0.05"


def _gradients(num_workers: int, iteration: int):
    return {
        worker: np.random.default_rng(1000 * iteration + worker)
                  .normal(size=NUM_ELEMENTS)
        for worker in range(num_workers)
    }


def _assert_stats_equal(actual, expected):
    assert actual.rounds == expected.rounds
    assert actual.total_messages == expected.total_messages
    assert actual.sent_per_worker == expected.sent_per_worker
    assert actual.received_per_worker == expected.received_per_worker
    assert actual.per_round_max_received == expected.per_round_max_received


def _methods_for(num_workers: int):
    return [name for name in SYNCHRONIZER_NAMES
            if name != "gTopk" or (num_workers & (num_workers - 1)) == 0]


class TestSessionEqualsLegacySynchronize:
    @pytest.mark.parametrize("num_workers", [5, 8])
    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_bit_identical_gradients_and_stats(self, method, num_workers):
        if method not in _methods_for(num_workers):
            pytest.skip("gTopk needs a power-of-two worker count")
        legacy = make(_spec(method), SimulatedCluster(num_workers),
                      num_elements=NUM_ELEMENTS)
        staged = make(_spec(method), SimulatedCluster(num_workers),
                      num_elements=NUM_ELEMENTS)
        session = SyncSession(staged)
        for iteration in range(ITERATIONS):
            grads = _gradients(num_workers, iteration)
            expected = legacy.synchronize({w: g.copy() for w, g in grads.items()})
            actual = session.step({w: g.copy() for w, g in grads.items()})
            for worker in range(num_workers):
                np.testing.assert_array_equal(
                    actual.global_gradients[worker],
                    expected.global_gradients[worker],
                    err_msg=f"{method}: worker {worker} diverged at iteration {iteration}")
            _assert_stats_equal(actual.stats, expected.stats)
            assert actual.info.get("k") == expected.info.get("k")
            assert actual.info.get("final_nnz") == expected.info.get("final_nnz")
        assert session.iteration == ITERATIONS

    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_single_flat_bucket_is_bit_identical(self, method):
        num_workers = 8
        legacy = make(_spec(method), SimulatedCluster(num_workers),
                      num_elements=NUM_ELEMENTS)
        cluster = SimulatedCluster(num_workers)
        bucketed = BucketedSynchronizer(
            cluster, [NUM_ELEMENTS],
            factory=lambda c, n: make(_spec(method), c, num_elements=n))
        for iteration in range(ITERATIONS):
            grads = _gradients(num_workers, iteration)
            expected = legacy.synchronize({w: g.copy() for w, g in grads.items()})
            actual = bucketed.synchronize({w: g.copy() for w, g in grads.items()})
            for worker in range(num_workers):
                np.testing.assert_array_equal(
                    actual.global_gradients[worker],
                    expected.global_gradients[worker])
            _assert_stats_equal(actual.stats, expected.stats)

    def test_cumulative_stats_accumulate_across_steps(self):
        sync = make("spardl?density=0.05", SimulatedCluster(4),
                    num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        per_step = []
        for iteration in range(ITERATIONS):
            result = session.step(_gradients(4, iteration))
            per_step.append(result.stats)
        assert session.cumulative_stats.rounds == sum(s.rounds for s in per_step)
        assert session.cumulative_stats.total_volume == pytest.approx(
            sum(s.total_volume for s in per_step))


class TestStageProtocol:
    def test_stages_fire_in_order_with_context(self):
        sync = make("spardl?density=0.05", SimulatedCluster(4),
                    num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        seen = []

        def hook(stage, context):
            seen.append(stage)
            if stage is SyncStage.SELECT:
                assert context.selected is not None
            if stage is SyncStage.COMPRESS:
                assert context.wire is not None
            if stage is SyncStage.EXCHANGE:
                assert context.exchanged is not None
            if stage is SyncStage.COMBINE:
                assert context.global_gradients is not None
                assert context.reference is not None

        session.add_stage_hook(hook)
        session.step(_gradients(4, 0))
        assert seen == list(PIPELINE_STAGES)

    def test_exchange_stage_owns_all_traffic(self):
        """Every round of cluster traffic happens inside the exchange and
        combine stages (select/compress are communication-free)."""
        cluster = SimulatedCluster(6)
        sync = make("spardl?density=0.05", cluster, num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        rounds_at_stage = {}

        def hook(stage, context):
            rounds_at_stage[stage] = cluster.stats.rounds

        session.add_stage_hook(hook)
        result = session.step(_gradients(6, 0))
        assert rounds_at_stage[SyncStage.SELECT] == 0
        assert rounds_at_stage[SyncStage.COMPRESS] == 0
        assert rounds_at_stage[SyncStage.RESIDUAL_UPDATE] == result.stats.rounds
