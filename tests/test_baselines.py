"""Unit tests for the baseline sparse All-Reduce methods."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.base import power_of_two_split
from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.baselines.gtopk import GTopkSynchronizer
from repro.baselines.ok_topk import OkTopkSynchronizer
from repro.baselines.topk_a import TopkASynchronizer
from repro.baselines.topk_dsa import TopkDSASynchronizer
from repro.comm.cluster import SimulatedCluster

from tests.helpers import random_gradients


class TestPowerOfTwoSplit:
    def test_exact_power(self):
        assert power_of_two_split(8) == (8, 0)

    def test_non_power(self):
        assert power_of_two_split(14) == (8, 6)
        assert power_of_two_split(5) == (4, 1)

    def test_single_worker(self):
        assert power_of_two_split(1) == (1, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            power_of_two_split(0)


class TestDenseAllReduce:
    @pytest.mark.parametrize("num_workers", [1, 2, 4, 6, 8])
    def test_exact_sum(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        sync = DenseAllReduceSynchronizer(cluster, 64)
        gradients = random_gradients(num_workers, 64)
        result = sync.synchronize(gradients)
        assert result.is_consistent
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-10)


class TestTopkA:
    @pytest.mark.parametrize("num_workers", [1, 2, 4, 5, 8, 14])
    def test_consistency(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        sync = TopkASynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.is_consistent

    def test_result_is_sum_of_local_selections(self):
        num_workers = 4
        cluster = SimulatedCluster(num_workers)
        sync = TopkASynchronizer(cluster, 100, k=100)
        gradients = random_gradients(num_workers, 100)
        result = sync.synchronize(gradients)
        # k = n means nothing is pruned: exact sum.
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-10)

    def test_latency_log_p_for_power_of_two(self):
        cluster = SimulatedCluster(8)
        sync = TopkASynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(8, 400))
        assert result.stats.rounds == 3

    def test_latency_non_power_of_two_adds_fold_rounds(self):
        cluster = SimulatedCluster(14)
        sync = TopkASynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(14, 400))
        assert result.stats.rounds == 3 + 2  # log2(8) + fold-in + fold-out

    def test_bandwidth_close_to_2_p_minus_1_k(self):
        """TopkA's gathered contributions grow towards 2(P-1)k elements."""
        num_workers, k = 8, 30
        cluster = SimulatedCluster(num_workers)
        sync = TopkASynchronizer(cluster, 3000, k=k)
        result = sync.synchronize(random_gradients(num_workers, 3000))
        bound = 2 * (num_workers - 1) * k
        assert result.stats.max_received <= bound + 1e-9
        assert result.stats.max_received >= 0.5 * bound

    def test_sga_dilemma_visible_in_final_density(self):
        """Because TopkA only sums at the end, the global gradient has up to
        P*k non-zeros (the SGA dilemma it does not try to compress away)."""
        num_workers, k = 8, 25
        cluster = SimulatedCluster(num_workers)
        sync = TopkASynchronizer(cluster, 5000, k=k)
        result = sync.synchronize(random_gradients(num_workers, 5000))
        assert result.info["final_nnz"] > 3 * k


class TestTopkDSA:
    @pytest.mark.parametrize("num_workers", [1, 2, 4, 5, 8, 14])
    def test_consistency(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        sync = TopkDSASynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.is_consistent

    def test_exact_when_k_equals_n(self):
        num_workers = 6
        cluster = SimulatedCluster(num_workers)
        sync = TopkDSASynchronizer(cluster, 90, k=90)
        gradients = random_gradients(num_workers, 90)
        result = sync.synchronize(gradients)
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-10)

    def test_latency_includes_direct_send_reduce_scatter(self):
        num_workers = 8
        cluster = SimulatedCluster(num_workers)
        sync = TopkDSASynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(num_workers, 400))
        # P-1 reduce-scatter rounds plus log2(P) all-gather rounds.
        assert result.stats.rounds == (num_workers - 1) + 3

    def test_dense_switching_caps_block_size(self):
        """A block's transfer never costs more than its dense representation."""
        num_workers, num_elements = 4, 80
        cluster = SimulatedCluster(num_workers)
        sync = TopkDSASynchronizer(cluster, num_elements, k=num_elements)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        block = num_elements / num_workers
        # Reduce-scatter: (P-1) COO region messages of up to 2*block elements.
        # All-gather: every received block is capped at its dense size, so the
        # busiest worker gets at most (P-1) dense blocks there.  Without the
        # dense switch the all-gather term would be twice as large.
        bound = (num_workers - 1) * block * 2 + (num_workers - 1) * block
        assert result.stats.max_received <= bound + 1e-9


class TestGTopk:
    def test_requires_power_of_two(self):
        cluster = SimulatedCluster(6)
        with pytest.raises(ValueError):
            GTopkSynchronizer(cluster, 100, k=10)

    @pytest.mark.parametrize("num_workers", [2, 4, 8])
    def test_consistency(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        sync = GTopkSynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.is_consistent

    def test_final_gradient_has_exactly_k_nonzeros(self):
        num_workers, k = 8, 25
        cluster = SimulatedCluster(num_workers)
        sync = GTopkSynchronizer(cluster, 2000, k=k)
        result = sync.synchronize(random_gradients(num_workers, 2000))
        assert result.info["final_nnz"] == k

    def test_latency_is_log_p(self):
        cluster = SimulatedCluster(8)
        sync = GTopkSynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(8, 400))
        assert result.stats.rounds == 3

    def test_bandwidth_bounded_by_2k_log_p(self):
        num_workers, k = 8, 30
        cluster = SimulatedCluster(num_workers)
        sync = GTopkSynchronizer(cluster, 3000, k=k)
        result = sync.synchronize(random_gradients(num_workers, 3000))
        assert result.stats.max_received <= 2 * k * math.log2(num_workers) * 2 + 1e-9


class TestOkTopk:
    @pytest.mark.parametrize("num_workers", [1, 2, 4, 5, 8, 14])
    def test_consistency(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        sync = OkTopkSynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.is_consistent

    def test_threshold_pruning_selection_fluctuates_around_k(self):
        num_workers, k = 4, 50
        cluster = SimulatedCluster(num_workers)
        sync = OkTopkSynchronizer(cluster, 2000, k=k)
        counts = []
        for iteration in range(6):
            result = sync.synchronize(random_gradients(num_workers, 2000, seed=iteration))
            counts.extend(result.info["selected_per_worker"].values())
        mean_count = np.mean(counts)
        assert 0.4 * k <= mean_count <= 3.0 * k

    def test_threshold_pruning_can_exceed_k(self):
        """The paper notes Ok-Topk's threshold pruning may select more than k."""
        num_workers, k = 4, 50
        cluster = SimulatedCluster(num_workers)
        sync = OkTopkSynchronizer(cluster, 2000, k=k)
        exceeded = False
        for iteration in range(8):
            result = sync.synchronize(random_gradients(num_workers, 2000, seed=100 + iteration))
            if any(count > k for count in result.info["selected_per_worker"].values()):
                exceeded = True
        assert exceeded

    def test_latency_higher_than_spardl(self):
        """Ok-Topk's direct-send phases make its round count grow linearly in P."""
        num_workers = 8
        cluster = SimulatedCluster(num_workers)
        sync = OkTopkSynchronizer(cluster, 400, k=20)
        result = sync.synchronize(random_gradients(num_workers, 400))
        assert result.stats.rounds >= 2 * (num_workers - 1)

    def test_rebalancing_runs_on_schedule(self):
        num_workers = 4
        cluster = SimulatedCluster(num_workers)
        sync = OkTopkSynchronizer(cluster, 400, k=20, rebalance_period=2)
        baseline_rounds = []
        for iteration in range(4):
            result = sync.synchronize(random_gradients(num_workers, 400, seed=iteration))
            baseline_rounds.append(result.stats.rounds)
        # Iterations 0 and 2 include the extra rebalancing exchange.
        assert baseline_rounds[0] > baseline_rounds[1]
        assert baseline_rounds[2] > baseline_rounds[3]

    def test_region_boundaries_remain_valid_after_rebalance(self):
        num_workers = 4
        cluster = SimulatedCluster(num_workers)
        sync = OkTopkSynchronizer(cluster, 400, k=20, rebalance_period=1)
        for iteration in range(3):
            sync.synchronize(random_gradients(num_workers, 400, seed=iteration))
            assert sync.boundaries[0] == 0
            assert sync.boundaries[-1] == 400
            assert all(b1 < b2 for b1, b2 in zip(sync.boundaries, sync.boundaries[1:]))
