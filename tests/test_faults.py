"""Fault injection, retry billing, and heterogeneous timing.

Gates of the robustness layer:

* with no :class:`~repro.comm.faults.FaultPlan` installed — and with a
  zero-rate plan installed — every method's pipeline output and
  ``CommStats`` are bit-identical to the reliable path;
* a seeded plan is deterministic across runs;
* every retry, backoff idle and late arrival is billed as extra recorded
  rounds in ``CommStats``;
* messages lost past the retry budget fold their mass into the residual
  path, so conservation holds to 1e-9 under faults;
* reliable (non-lossy) messages are force-delivered, keeping the dense
  baseline exact under arbitrary drop rates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SYNCHRONIZER_NAMES, make
from repro.comm.cluster import Message, SimulatedCluster
from repro.comm.faults import FaultPlan, MembershipEvent, membership_transition
from repro.comm.network import ETHERNET, PERFECT, RDMA, HeterogeneousNetwork, NetworkProfile
from repro.comm.stats import CommStats
from repro.core.config import SparDLConfig
from repro.core.pipeline import RetryPolicy
from repro.core.spardl import SparDLSynchronizer
from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.training.timing import communication_time, iteration_time, ComputeProfile

from tests.helpers import random_gradients

NUM_ELEMENTS = 500


def _spec(method: str) -> str:
    if method == "Dense":
        return "dense"
    return f"{method.lower()}?density=0.05"


def _assert_stats_equal(actual: CommStats, expected: CommStats) -> None:
    assert actual.rounds == expected.rounds
    assert actual.total_messages == expected.total_messages
    assert actual.sent_per_worker == expected.sent_per_worker
    assert actual.received_per_worker == expected.received_per_worker
    assert actual.per_round_max_received == expected.per_round_max_received
    assert actual.per_round_received == expected.per_round_received
    assert actual.dropped_messages == expected.dropped_messages
    assert actual.retried_messages == expected.retried_messages
    assert actual.lost_messages == expected.lost_messages
    assert actual.forced_deliveries == expected.forced_deliveries
    assert actual.delayed_messages == expected.delayed_messages
    assert actual.fault_extra_rounds == expected.fault_extra_rounds


# ---------------------------------------------------------------------------
# plan validation and deterministic sampling
# ---------------------------------------------------------------------------
class TestFaultPlanValidation:
    @pytest.mark.parametrize("field,value", [
        ("drop_rate", -0.1), ("drop_rate", 1.5), ("drop_rate", float("nan")),
        ("delay_rate", 2.0), ("straggler_rate", -1.0),
    ])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ValueError):
            FaultPlan(**{field: value})

    def test_slowdown_and_delay_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan(max_delay_rounds=0)
        with pytest.raises(ValueError):
            FaultPlan(timeout_rounds=-1)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            MembershipEvent(iteration=-1, kind="crash")
        with pytest.raises(ValueError):
            MembershipEvent(iteration=0, kind="leave")
        with pytest.raises(ValueError):
            MembershipEvent(iteration=0, kind="crash", worker=-3)

    def test_zero_rate_plan_injects_nothing(self):
        assert not FaultPlan().injects_message_faults
        assert FaultPlan(drop_rate=0.1).injects_message_faults
        assert FaultPlan(delay_rate=0.1).injects_message_faults


class TestDeterministicSampling:
    def test_message_fate_is_pure_in_seed_and_key(self):
        plan = FaultPlan(seed=42, drop_rate=0.3, delay_rate=0.3,
                         max_delay_rounds=3, timeout_rounds=3)
        fates = [plan.message_fate(7, 1, 0, 3, "srs-2") for _ in range(5)]
        assert len(set(fates)) == 1
        again = FaultPlan(seed=42, drop_rate=0.3, delay_rate=0.3,
                          max_delay_rounds=3, timeout_rounds=3)
        assert again.message_fate(7, 1, 0, 3, "srs-2") == fates[0]

    def test_different_keys_decorrelate(self):
        plan = FaultPlan(seed=0, drop_rate=0.5)
        fates = {(r, a): plan.message_fate(r, a, 0, 1, "t")
                 for r in range(20) for a in (1, 2)}
        outcomes = {fate for fate in fates.values()}
        assert len(outcomes) > 1  # not all attempts share one fate

    def test_delay_past_timeout_is_a_drop(self):
        # delay_rate=1 with max lateness far beyond the timeout: every
        # sampled lateness above timeout_rounds must come back as a drop.
        plan = FaultPlan(seed=1, delay_rate=1.0, max_delay_rounds=50,
                         timeout_rounds=0)
        for attempt in range(1, 5):
            assert plan.message_fate(0, attempt, 0, 1, "x") == ("drop", 0)

    def test_straggler_factors_are_seeded_and_bounded(self):
        plan = FaultPlan(seed=9, straggler_rate=0.5, straggler_slowdown=4.0)
        factors = plan.straggler_factors(3, 32)
        assert factors == plan.straggler_factors(3, 32)
        assert all(1.0 <= factor <= 4.0 for factor in factors)
        assert any(factor > 1.0 for factor in factors)
        assert any(factor == 1.0 for factor in factors)
        assert FaultPlan(seed=9).straggler_factor(3, 5) == 1.0


class TestMembershipTransition:
    def test_join_is_identity_over_old_ranks(self):
        new_size, mapping = membership_transition(
            3, MembershipEvent(iteration=0, kind="join"))
        assert new_size == 4
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_crash_renumbers_and_hands_off_to_successor(self):
        new_size, mapping = membership_transition(
            8, MembershipEvent(iteration=0, kind="crash", worker=3))
        assert new_size == 7
        # survivors 0,1,2,4,...,7 renumbered contiguously
        assert mapping[4] == 3 and mapping[7] == 6
        # crashed rank's residual goes to its cyclic successor (old rank 4)
        assert mapping[3] == mapping[4]

    def test_crash_default_is_highest_rank(self):
        new_size, mapping = membership_transition(
            4, MembershipEvent(iteration=0, kind="crash"))
        assert new_size == 3
        assert mapping[3] == mapping[0] == 0

    def test_crash_errors(self):
        with pytest.raises(ValueError):
            membership_transition(4, MembershipEvent(0, "crash", worker=4))
        with pytest.raises(ValueError):
            membership_transition(1, MembershipEvent(0, "crash", worker=0))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=float("inf"))

    def test_idle_rounds_grow_geometrically(self):
        policy = RetryPolicy(max_retries=4, backoff=2.0)
        assert policy.idle_rounds(1) == 0
        assert policy.idle_rounds(2) == 0  # first retry is immediate
        assert policy.idle_rounds(3) == 1
        assert policy.idle_rounds(4) == 3


# ---------------------------------------------------------------------------
# bit-identity gates
# ---------------------------------------------------------------------------
class TestNoPlanBitIdentity:
    """No installed plan == zero-rate plan == the reliable exchange path."""

    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_zero_rate_plan_is_bit_identical(self, method):
        num_workers = 8
        plain = make(_spec(method), SimulatedCluster(num_workers),
                     num_elements=NUM_ELEMENTS)
        planned_cluster = SimulatedCluster(num_workers)
        planned_cluster.install_fault_plan(FaultPlan(seed=123))
        planned = make(_spec(method), planned_cluster, num_elements=NUM_ELEMENTS)
        for iteration in range(3):
            grads = random_gradients(num_workers, NUM_ELEMENTS, seed=10 * iteration)
            expected = plain.synchronize({w: g.copy() for w, g in grads.items()})
            actual = planned.synchronize({w: g.copy() for w, g in grads.items()})
            for worker in range(num_workers):
                np.testing.assert_array_equal(
                    actual.global_gradients[worker],
                    expected.global_gradients[worker])
            _assert_stats_equal(actual.stats, expected.stats)

    def test_fault_counters_zero_on_reliable_path(self, cluster4):
        sync = SparDLSynchronizer(cluster4, NUM_ELEMENTS, SparDLConfig(density=0.05))
        result = sync.synchronize(random_gradients(4, NUM_ELEMENTS))
        stats = result.stats
        assert stats.dropped_messages == 0
        assert stats.retried_messages == 0
        assert stats.lost_messages == 0
        assert stats.forced_deliveries == 0
        assert stats.delayed_messages == 0
        assert stats.fault_extra_rounds == 0
        assert "lost_messages" not in result.info

    def test_install_returns_previous_plan(self, cluster4):
        first = FaultPlan(seed=1)
        assert cluster4.install_fault_plan(first) is None
        assert cluster4.fault_plan is first
        assert cluster4.install_fault_plan(None) is first


class TestSeededScenarioDeterminism:
    def test_same_seed_same_everything(self):
        results = []
        for _ in range(2):
            cluster = SimulatedCluster(8)
            cluster.install_fault_plan(FaultPlan(
                seed=7, drop_rate=0.25, delay_rate=0.2, max_delay_rounds=2,
                timeout_rounds=2, retry=RetryPolicy(max_retries=2)))
            sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                      SparDLConfig(density=0.05, num_teams=2))
            out = [sync.synchronize(random_gradients(8, NUM_ELEMENTS, seed=i))
                   for i in range(3)]
            results.append(out)
        for first, second in zip(*results):
            for worker in range(8):
                np.testing.assert_array_equal(first.global_gradients[worker],
                                              second.global_gradients[worker])
            _assert_stats_equal(first.stats, second.stats)

    def test_different_seeds_differ(self):
        def run(seed):
            cluster = SimulatedCluster(8)
            cluster.install_fault_plan(FaultPlan(seed=seed, drop_rate=0.4))
            sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                      SparDLConfig(density=0.05))
            return sync.synchronize(random_gradients(8, NUM_ELEMENTS)).stats
        a, b = run(1), run(2)
        assert (a.dropped_messages, a.rounds) != (b.dropped_messages, b.rounds)


# ---------------------------------------------------------------------------
# retry billing and graceful degradation
# ---------------------------------------------------------------------------
class TestRetryBilling:
    def test_retries_and_extra_rounds_are_billed(self):
        baseline_cluster = SimulatedCluster(8)
        baseline = SparDLSynchronizer(baseline_cluster, NUM_ELEMENTS,
                                      SparDLConfig(density=0.05))
        fault_free = baseline.synchronize(random_gradients(8, NUM_ELEMENTS)).stats

        cluster = SimulatedCluster(8)
        cluster.install_fault_plan(FaultPlan(seed=3, drop_rate=0.4,
                                             retry=RetryPolicy(max_retries=3)))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, SparDLConfig(density=0.05))
        faulted = sync.synchronize(random_gradients(8, NUM_ELEMENTS)).stats

        assert faulted.dropped_messages > 0
        assert faulted.retried_messages > 0
        assert faulted.fault_extra_rounds > 0
        assert faulted.rounds == fault_free.rounds + faulted.fault_extra_rounds

    def test_late_arrivals_bill_extra_rounds(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(seed=5, delay_rate=0.6,
                                             max_delay_rounds=2, timeout_rounds=2))
        sync = DenseAllReduceSynchronizer(cluster, NUM_ELEMENTS)
        grads = random_gradients(4, NUM_ELEMENTS)
        result = sync.synchronize(grads)
        assert result.stats.delayed_messages > 0
        assert result.stats.fault_extra_rounds > 0
        # Delays never corrupt the result, only the billing.
        np.testing.assert_allclose(result.gradient(0), sum(grads.values()))

    def test_volume_conserved_for_delivered_messages(self):
        # Force-delivered messages still bill their volume exactly once.
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(seed=3, drop_rate=0.5,
                                             retry=RetryPolicy(max_retries=0)))
        baseline = DenseAllReduceSynchronizer(SimulatedCluster(4), NUM_ELEMENTS)
        reference = baseline.synchronize(random_gradients(4, NUM_ELEMENTS)).stats
        sync = DenseAllReduceSynchronizer(cluster, NUM_ELEMENTS)
        faulted = sync.synchronize(random_gradients(4, NUM_ELEMENTS)).stats
        assert faulted.lost_messages == 0  # dense messages are reliable
        assert faulted.forced_deliveries > 0
        assert faulted.total_volume == reference.total_volume


class TestGracefulDegradation:
    @pytest.mark.parametrize("wire_format", ["packed", "per-block"])
    @pytest.mark.parametrize("deferred", [False, True])
    def test_conservation_under_heavy_loss(self, wire_format, deferred):
        cluster = SimulatedCluster(8)
        cluster.install_fault_plan(FaultPlan(seed=3, drop_rate=0.6,
                                             retry=RetryPolicy(max_retries=0)))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, SparDLConfig(
            density=0.05, num_teams=2, wire_format=wire_format,
            deferred_residuals=deferred))
        lost_total = 0
        for iteration in range(3):
            grads = random_gradients(8, NUM_ELEMENTS, seed=100 * iteration)
            # Residual state carries across iterations: this step must
            # account for the new inputs plus the carried-over residual.
            expected = sum(grads.values()) + sync.residuals.total_residual()
            result = sync.synchronize(grads)
            assert result.is_consistent
            recon = result.gradient(0) + sync.residuals.total_residual()
            lost_total += result.stats.lost_messages
            # conservation: sent + error + discards == input, under faults
            np.testing.assert_allclose(recon, expected, atol=1e-9)
            # losses reported both in stats and diagnostics
            if result.stats.lost_messages:
                assert result.info["lost_messages"] == result.stats.lost_messages
                assert result.info["lost_mass"] > 0
        assert lost_total > 0  # the scenario actually exercised the loss path

    def test_conservation_across_iterations_under_loss(self):
        cluster = SimulatedCluster(8)
        cluster.install_fault_plan(FaultPlan(seed=11, drop_rate=0.5,
                                             retry=RetryPolicy(max_retries=0)))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                  SparDLConfig(density=0.05, num_teams=2))
        delivered = np.zeros(NUM_ELEMENTS)
        injected = np.zeros(NUM_ELEMENTS)
        for iteration in range(4):
            grads = random_gradients(8, NUM_ELEMENTS, seed=7 * iteration + 1)
            injected += sum(grads.values())
            delivered += sync.synchronize(grads).gradient(0)
        recon = delivered + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, injected, atol=1e-9)

    def test_quantized_pipeline_conserves_under_loss(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(seed=2, drop_rate=0.5,
                                             retry=RetryPolicy(max_retries=0)))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                  SparDLConfig(density=0.05, num_bits=8))
        grads = random_gradients(4, NUM_ELEMENTS, seed=13)
        result = sync.synchronize(grads)
        recon = result.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, sum(grads.values()), atol=1e-9)

    def test_dense_stays_exact_under_drops(self):
        cluster = SimulatedCluster(6)
        cluster.install_fault_plan(FaultPlan(seed=3, drop_rate=0.6,
                                             retry=RetryPolicy(max_retries=1)))
        sync = DenseAllReduceSynchronizer(cluster, NUM_ELEMENTS)
        grads = random_gradients(6, NUM_ELEMENTS)
        result = sync.synchronize(grads)
        assert result.stats.lost_messages == 0
        np.testing.assert_allclose(result.gradient(0), sum(grads.values()))


# ---------------------------------------------------------------------------
# cluster-level mechanics
# ---------------------------------------------------------------------------
class TestClusterFaultMechanics:
    def test_inbox_order_matches_submission_order(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(seed=1, delay_rate=0.9,
                                             max_delay_rounds=3, timeout_rounds=3))
        messages = [Message(src=s, dst=3, payload=float(s), tag="t")
                    for s in range(3)]
        inboxes = cluster.exchange(messages)
        assert [m.src for m in inboxes[3]] == [0, 1, 2]

    def test_lost_messages_are_drained_once(self):
        cluster = SimulatedCluster(2)
        cluster.install_fault_plan(FaultPlan(seed=0, drop_rate=1.0,
                                             retry=RetryPolicy(max_retries=0)))
        inboxes = cluster.exchange([Message(src=0, dst=1, payload=np.ones(3),
                                            tag="x", lossy=True)])
        assert inboxes == {}
        assert cluster.stats.lost_messages == 1
        lost = cluster.drain_lost()
        assert len(lost) == 1 and lost[0].src == 0
        assert cluster.drain_lost() == []

    def test_resize_refuses_undrained_losses(self):
        cluster = SimulatedCluster(3)
        cluster.install_fault_plan(FaultPlan(seed=0, drop_rate=1.0,
                                             retry=RetryPolicy(max_retries=0)))
        cluster.exchange([Message(src=0, dst=1, payload=np.ones(3), lossy=True)])
        with pytest.raises(RuntimeError):
            cluster.resize(4)
        cluster.drain_lost()
        cluster.resize(4)
        assert cluster.num_workers == 4
        assert cluster.stats.num_workers == 4

    def test_certain_drop_forces_reliable_delivery(self):
        cluster = SimulatedCluster(2)
        cluster.install_fault_plan(FaultPlan(seed=0, drop_rate=1.0,
                                             retry=RetryPolicy(max_retries=2)))
        message = Message(src=0, dst=1, payload=np.arange(4.0))
        inboxes = cluster.exchange([message])
        assert inboxes[1] == [message]
        stats = cluster.stats
        assert stats.forced_deliveries == 1
        assert stats.dropped_messages == 3  # one per attempt
        assert stats.retried_messages == 2
        # attempt rounds + backoff idle + forced round, minus the nominal one
        assert stats.fault_extra_rounds == stats.rounds - 1
        # volume billed exactly once, in the forced round
        assert stats.received_per_worker[1] == 4.0


class TestPricerValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_invalid_pricer_output_raises(self, cluster4, bad):
        cluster4.install_pricer(lambda message: bad)
        with pytest.raises(ValueError, match="pricer returned invalid"):
            cluster4.exchange([Message(src=0, dst=1, payload=np.ones(3))])

    def test_valid_pricer_still_applies(self, cluster4):
        cluster4.install_pricer(lambda message: 2.5)
        cluster4.exchange([Message(src=0, dst=1, payload=np.ones(3))])
        assert cluster4.stats.received_per_worker[1] == 2.5


# ---------------------------------------------------------------------------
# heterogeneity and straggler-aware timing
# ---------------------------------------------------------------------------
class TestScaledProfiles:
    def test_scaled_name_does_not_chain(self):
        once = ETHERNET.scaled(alpha_factor=2.0)
        twice = once.scaled(alpha_factor=2.0)
        assert once.name == "ethernet-scaled"
        assert twice.name == "ethernet-scaled"
        assert twice.alpha == ETHERNET.alpha * 4.0

    def test_scaled_explicit_name_wins(self):
        assert ETHERNET.scaled(beta_factor=3.0, name="slow").name == "slow"

    @pytest.mark.parametrize("factor", [float("nan"), float("inf"), -0.5])
    def test_scaled_validates_factors(self, factor):
        with pytest.raises(ValueError):
            ETHERNET.scaled(alpha_factor=factor)
        with pytest.raises(ValueError):
            ETHERNET.scaled(beta_factor=factor)


class TestHeterogeneousNetwork:
    def test_round_time_is_max_over_critical_paths(self):
        slow = NetworkProfile(name="slow", alpha=1.0, beta=1.0)
        fast = NetworkProfile(name="fast", alpha=0.1, beta=0.01)
        network = HeterogeneousNetwork(default=fast, overrides={1: slow})
        # worker 0: 0.1 + 0.01*100 = 1.1 ; worker 1: 1 + 10 = 11
        assert network.round_time([100.0, 10.0]) == pytest.approx(11.0)
        assert network.round_time([]) == fast.alpha
        assert network.profile_for(1) is slow
        assert network.profile_for(0) is fast

    def test_plan_builds_ingress_profiles(self):
        slow = NetworkProfile(name="slow-nic", alpha=1.0, beta=1e-6)
        congested = NetworkProfile(name="congested", alpha=0.5, beta=1e-5)
        plan = FaultPlan(worker_profiles={1: slow},
                         link_profiles={(0, 2): congested})
        network = plan.heterogeneous_network(4, ETHERNET)
        assert network.profile_for(1) is slow
        # link override folds in element-wise max against the default
        ingress = network.profile_for(2)
        assert ingress.alpha == max(ETHERNET.alpha, congested.alpha)
        assert ingress.beta == max(ETHERNET.beta, congested.beta)
        assert network.profile_for(3) is ETHERNET

    def test_communication_time_uses_per_round_volumes(self):
        cluster = SimulatedCluster(3)
        cluster.exchange([Message(src=0, dst=1, size=100.0),
                          Message(src=0, dst=2, size=10.0)])
        cluster.exchange([Message(src=1, dst=2, size=50.0)])
        stats = cluster.stats
        slow = NetworkProfile(name="slow", alpha=1.0, beta=1.0)
        network = HeterogeneousNetwork(default=PERFECT, overrides={2: slow})
        # round 1: worker 2 receives 10 -> 11 ; round 2: receives 50 -> 51
        assert communication_time(stats, network) == pytest.approx(62.0)
        # uniform pricing is unchanged
        assert communication_time(stats, RDMA) == pytest.approx(
            RDMA.alpha * 2 + RDMA.beta * 150.0)

    def test_rounds_without_rows_price_at_default_alpha(self):
        stats = CommStats(num_workers=2)
        stats.rounds = 3  # e.g. merged from pre-heterogeneity data
        network = HeterogeneousNetwork(default=NetworkProfile("n", 2.0, 0.0))
        assert communication_time(stats, network) == pytest.approx(6.0)


class TestStragglerTiming:
    def test_compute_scales_by_slowest_worker(self):
        stats = CommStats(num_workers=2)
        profile = ComputeProfile(compute_time_per_update=2.0, paper_parameters=1e6)
        timing = iteration_time(stats, PERFECT, profile,
                                compute_factors=[1.0, 3.0, 1.5])
        assert timing.compute_time == pytest.approx(6.0)
        assert iteration_time(stats, PERFECT, profile).compute_time == 2.0

    def test_compute_factors_validated(self):
        stats = CommStats(num_workers=2)
        profile = ComputeProfile(compute_time_per_update=1.0, paper_parameters=1e6)
        with pytest.raises(ValueError):
            iteration_time(stats, PERFECT, profile, compute_factors=[])
        with pytest.raises(ValueError):
            iteration_time(stats, PERFECT, profile, compute_factors=[-1.0])

    def test_plan_straggler_factors_feed_timing(self):
        plan = FaultPlan(seed=4, straggler_rate=1.0, straggler_slowdown=2.0)
        stats = CommStats(num_workers=4)
        profile = ComputeProfile(compute_time_per_update=1.0, paper_parameters=1e6)
        factors = plan.straggler_factors(0, 4)
        timing = iteration_time(stats, PERFECT, profile, compute_factors=factors)
        assert timing.compute_time == pytest.approx(max(factors))
        assert 1.0 < timing.compute_time <= 2.0
