"""Unit tests for the dense collective algorithms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster
from repro.comm.collectives import (
    allgather_bruck,
    allgather_bruck_grouped,
    allgather_recursive_doubling,
    allreduce_dense,
    allreduce_rabenseifner,
    allreduce_ring,
    reduce_scatter_direct,
)


def _items(num_workers):
    return {rank: np.array([float(rank)]) for rank in range(num_workers)}


class TestBruckAllGather:
    @pytest.mark.parametrize("num_workers", [1, 2, 3, 4, 5, 6, 7, 8, 14])
    def test_all_workers_get_all_items_in_order(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        result = allgather_bruck(cluster, _items(num_workers))
        expected = [float(rank) for rank in range(num_workers)]
        for rank in range(num_workers):
            assert [float(item[0]) for item in result[rank]] == expected

    @pytest.mark.parametrize("num_workers", [2, 4, 8, 16])
    def test_round_count_is_log2_for_power_of_two(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        allgather_bruck(cluster, _items(num_workers))
        assert cluster.stats.rounds == int(math.log2(num_workers))

    @pytest.mark.parametrize("num_workers", [3, 5, 6, 7, 14])
    def test_round_count_is_ceil_log2_for_any_count(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        allgather_bruck(cluster, _items(num_workers))
        assert cluster.stats.rounds == math.ceil(math.log2(num_workers))

    def test_bandwidth_reaches_lower_bound(self):
        # Each worker receives exactly (P-1) items of unit size.
        num_workers = 6
        cluster = SimulatedCluster(num_workers)
        allgather_bruck(cluster, _items(num_workers))
        assert cluster.stats.max_received == num_workers - 1

    def test_grouped_execution_shares_rounds(self):
        cluster = SimulatedCluster(8)
        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        items = _items(8)
        result = allgather_bruck_grouped(cluster, groups, items)
        assert cluster.stats.rounds == 2  # log2(4), shared by both groups
        assert [float(i[0]) for i in result[5]] == [4.0, 5.0, 6.0, 7.0]

    def test_duplicate_ranks_rejected(self):
        cluster = SimulatedCluster(4)
        with pytest.raises(ValueError):
            allgather_bruck_grouped(cluster, [[0, 0, 1]], _items(4))

    def test_single_worker_group(self):
        cluster = SimulatedCluster(3)
        result = allgather_bruck_grouped(cluster, [[2]], {2: np.array([9.0])})
        assert result[2][0][0] == 9.0
        assert cluster.stats.rounds == 0


class TestRecursiveDoublingAllGather:
    @pytest.mark.parametrize("num_workers", [1, 2, 4, 8])
    def test_gathers_in_order(self, num_workers):
        cluster = SimulatedCluster(num_workers)
        result = allgather_recursive_doubling(cluster, _items(num_workers))
        for rank in range(num_workers):
            assert [float(item[0]) for item in result[rank]] == [float(r) for r in range(num_workers)]

    def test_rejects_non_power_of_two(self):
        cluster = SimulatedCluster(6)
        with pytest.raises(ValueError):
            allgather_recursive_doubling(cluster, _items(6))

    def test_round_count(self):
        cluster = SimulatedCluster(8)
        allgather_recursive_doubling(cluster, _items(8))
        assert cluster.stats.rounds == 3


class TestReduceScatterDirect:
    @pytest.mark.parametrize("num_workers", [2, 3, 5, 8])
    def test_each_worker_holds_reduced_partition(self, num_workers):
        n = 12
        cluster = SimulatedCluster(num_workers)
        vectors = {r: np.random.default_rng(r).normal(size=n) for r in range(num_workers)}
        result = reduce_scatter_direct(cluster, vectors)
        total = sum(vectors.values())
        rebuilt = np.concatenate([result[r] for r in range(num_workers)])
        np.testing.assert_allclose(rebuilt, total)

    def test_uses_p_minus_one_rounds(self):
        cluster = SimulatedCluster(5)
        vectors = {r: np.ones(10) for r in range(5)}
        reduce_scatter_direct(cluster, vectors)
        assert cluster.stats.rounds == 4


class TestDenseAllReduce:
    @pytest.mark.parametrize("algorithm", [allreduce_ring, allreduce_dense])
    @pytest.mark.parametrize("num_workers", [1, 2, 3, 4, 6, 8])
    def test_result_equals_sum(self, algorithm, num_workers):
        n = 16
        cluster = SimulatedCluster(num_workers)
        vectors = {r: np.random.default_rng(r).normal(size=n) for r in range(num_workers)}
        result = algorithm(cluster, vectors)
        total = sum(vectors.values())
        for rank in range(num_workers):
            np.testing.assert_allclose(result[rank], total, atol=1e-10)

    @pytest.mark.parametrize("num_workers", [2, 4, 8])
    def test_rabenseifner_equals_sum(self, num_workers):
        n = 16
        cluster = SimulatedCluster(num_workers)
        vectors = {r: np.random.default_rng(r).normal(size=n) for r in range(num_workers)}
        result = allreduce_rabenseifner(cluster, vectors)
        total = sum(vectors.values())
        for rank in range(num_workers):
            np.testing.assert_allclose(result[rank], total, atol=1e-10)

    def test_rabenseifner_rejects_non_power_of_two(self):
        cluster = SimulatedCluster(6)
        with pytest.raises(ValueError):
            allreduce_rabenseifner(cluster, {r: np.ones(4) for r in range(6)})

    def test_ring_bandwidth_near_lower_bound(self):
        num_workers, n = 4, 64
        cluster = SimulatedCluster(num_workers)
        vectors = {r: np.ones(n) for r in range(num_workers)}
        allreduce_ring(cluster, vectors)
        lower_bound = 2 * n * (num_workers - 1) / num_workers
        assert cluster.stats.max_received == pytest.approx(lower_bound, rel=0.05)

    def test_dense_dispatches_by_worker_count(self):
        # Power of two -> Rabenseifner round count (2 log P); otherwise ring (2(P-1)).
        cluster = SimulatedCluster(8)
        allreduce_dense(cluster, {r: np.ones(16) for r in range(8)})
        assert cluster.stats.rounds == 6
        cluster = SimulatedCluster(6)
        allreduce_dense(cluster, {r: np.ones(18) for r in range(6)})
        assert cluster.stats.rounds == 10


class TestVolumeAccounting:
    """Recorded volumes must equal the closed-form element counts exactly —
    control metadata (group positions, slice offsets, block ids) is free."""

    @pytest.mark.parametrize("num_workers", [2, 4, 8, 16])
    def test_recursive_doubling_allgather_volume_is_exact(self, num_workers):
        item_size = 3
        cluster = SimulatedCluster(num_workers)
        items = {r: np.full(item_size, float(r)) for r in range(num_workers)}
        allgather_recursive_doubling(cluster, items)
        # Every worker ends holding all P items, P-1 of which arrived over
        # the wire; the position ints it also receives are metadata.
        expected = float(item_size * (num_workers - 1))
        for rank in range(num_workers):
            assert cluster.stats.received_per_worker[rank] == expected

    @pytest.mark.parametrize("num_workers", [2, 4, 8, 16])
    def test_rabenseifner_volume_is_exact(self, num_workers):
        n = 16 * num_workers  # divisible so halving never truncates
        cluster = SimulatedCluster(num_workers)
        vectors = {r: np.random.default_rng(r).normal(size=n) for r in range(num_workers)}
        allreduce_rabenseifner(cluster, vectors)
        # Recursive halving: n/2 + n/4 + ... + n/P = n(P-1)/P, then the
        # all-gather mirrors it; slice offsets are metadata.
        expected = 2.0 * n * (num_workers - 1) / num_workers
        for rank in range(num_workers):
            assert cluster.stats.received_per_worker[rank] == expected

    @pytest.mark.parametrize("num_workers", [2, 3, 5, 8])
    def test_bruck_sparse_allgather_volume_is_exact(self, num_workers):
        from repro.sparse.vector import SparseGradient

        nnz = 4
        cluster = SimulatedCluster(num_workers)
        items = {
            r: SparseGradient(np.arange(nnz, dtype=np.int64) + r * nnz,
                              np.ones(nnz), num_workers * nnz)
            for r in range(num_workers)
        }
        allgather_bruck(cluster, items)
        # P-1 foreign items of 2*nnz elements each; the packed wire format's
        # bag ids and offsets must not change the count.
        expected = 2.0 * nnz * (num_workers - 1)
        for rank in range(num_workers):
            assert cluster.stats.received_per_worker[rank] == expected
