"""Property tests for the MGWFBP/ASC bucket-fusion planners, the alpha-beta
fit, the transport micro-benchmark, and the spec-grammar wiring."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make, parse_spec
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET, RDMA, NetworkProfile
from repro.core.fusion import (
    AlphaBetaFit,
    FusionPlan,
    benchmark_transport,
    bucket_comm_model,
    fit_alpha_beta,
    plan_asc,
    plan_buckets,
    plan_mgwfbp,
)
from repro.nn.models import build_mlp
from repro.training.timing import ComputeProfile

PLANNERS = {"mgwfbp": plan_mgwfbp, "asc": plan_asc}


def _linear_estimator(rounds: float = 1.0):
    """A purely additive comm model: one round, volume == elements."""
    return lambda elements: (rounds, float(elements))


def _layers(sizes):
    return [(f"l{i}", size) for i, size in enumerate(sizes)]


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
layer_sizes = st.lists(st.integers(1, 50_000), min_size=1, max_size=8)
alpha_values = st.floats(0.0, 1.0)
beta_values = st.floats(0.0, 1e-4)


@st.composite
def layout_and_computes(draw):
    sizes = draw(layer_sizes)
    computes = draw(st.lists(st.floats(0.0, 0.5), min_size=len(sizes),
                             max_size=len(sizes)))
    return sizes, computes


class TestPlanIsValidPartition:
    @given(data=layout_and_computes(), planner=st.sampled_from(["mgwfbp", "asc"]),
           alpha=alpha_values, beta=beta_values)
    @settings(max_examples=60, deadline=None)
    def test_sizes_sum_and_order_preserved(self, data, planner, alpha, beta):
        sizes, computes = data
        fit = AlphaBetaFit(alpha=alpha, beta=beta)
        plan = PLANNERS[planner](_layers(sizes), computes,
                                 _linear_estimator(), fit)
        # Sizes sum to the model's parameter count.
        assert sum(plan.sizes) == sum(sizes)
        # Order preserved: joining the fused names reproduces the layer
        # names in their original order.
        assert "+".join(plan.names) == "+".join(name for name, _ in _layers(sizes))
        # Groups are a contiguous ordered cover (FusionPlan validates too).
        assert plan.groups[0][0] == 0
        assert plan.groups[-1][1] == len(sizes)
        for (_, stop), (start, _) in zip(plan.groups, plan.groups[1:]):
            assert stop == start

    @given(data=layout_and_computes(), planner=st.sampled_from(["mgwfbp", "asc"]),
           method=st.sampled_from(["SparDL", "Dense", "TopkA", "gTopk"]),
           workers=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_partition_holds_under_table_one_models(self, data, planner,
                                                   method, workers):
        sizes, computes = data
        profile = ComputeProfile(0.1, 1e6,
                                 bucket_backward_times=tuple(computes))
        plan = plan_buckets(_layers(sizes), planner=planner, method=method,
                            num_workers=workers, density=0.05,
                            network=ETHERNET, compute_profile=profile)
        assert sum(plan.sizes) == sum(sizes)
        assert plan.num_buckets <= len(sizes)


class TestPlanNeverExceedsSequential:
    @given(data=layout_and_computes(), planner=st.sampled_from(["mgwfbp", "asc"]),
           alpha=alpha_values, beta=beta_values)
    @settings(max_examples=60, deadline=None)
    def test_critical_path_bounded_by_sequential(self, data, planner, alpha, beta):
        sizes, computes = data
        fit = AlphaBetaFit(alpha=alpha, beta=beta)
        plan = PLANNERS[planner](_layers(sizes), computes,
                                 _linear_estimator(), fit)
        assert (plan.predicted.critical_path
                <= plan.predicted_sequential * (1 + 1e-9) + 1e-12)

    @given(data=layout_and_computes(), planner=st.sampled_from(["mgwfbp", "asc"]),
           alpha=alpha_values)
    @settings(max_examples=40, deadline=None)
    def test_bounded_even_under_superadditive_volumes(self, data, planner, alpha):
        """Per-bucket k-rounding can make a merged bucket's estimated volume
        exceed the sum of its parts; the plans must still never predict
        worse than the sequential per-layer baseline (ASC's fallback guard
        exists for exactly this)."""
        sizes, computes = data
        fit = AlphaBetaFit(alpha=alpha, beta=1e-6)
        superadditive = lambda n: (1.0, float(n) ** 1.5)
        plan = PLANNERS[planner](_layers(sizes), computes, superadditive, fit)
        assert (plan.predicted.critical_path
                <= plan.predicted_sequential * (1 + 1e-9) + 1e-12)


class TestDegenerateRegimes:
    @given(data=layout_and_computes(), planner=st.sampled_from(["mgwfbp", "asc"]))
    @settings(max_examples=40, deadline=None)
    def test_alpha_dominant_fuses_to_a_single_bucket(self, data, planner):
        """With a latency-only network every extra bucket costs a full
        round and saves nothing: both planners must fuse everything."""
        sizes, computes = data
        fit = AlphaBetaFit(alpha=1.0, beta=0.0)
        plan = PLANNERS[planner](_layers(sizes), computes,
                                 _linear_estimator(), fit)
        assert plan.num_buckets == 1

    @given(sizes=layer_sizes, planner=st.sampled_from(["mgwfbp", "asc"]),
           computes=st.data())
    @settings(max_examples=40, deadline=None)
    def test_beta_dominant_keeps_per_layer_buckets(self, sizes, planner,
                                                   computes):
        """With zero latency, fusing only delays gradients that could have
        been on the wire (the merged exchange cannot start before the whole
        group's backward finishes), so per-layer buckets are optimal."""
        times = computes.draw(st.lists(st.floats(1e-3, 0.5),
                                       min_size=len(sizes),
                                       max_size=len(sizes)))
        fit = AlphaBetaFit(alpha=0.0, beta=1e-3)
        plan = PLANNERS[planner](_layers(sizes), times,
                                 _linear_estimator(), fit)
        assert plan.num_buckets == len(sizes)

    def test_asc_bucket_count_tracks_saturation_size(self):
        """ASC closes a bucket once beta * volume >= alpha * rounds, so a
        larger alpha/beta ratio yields fewer, larger buckets."""
        sizes = [1000] * 8
        computes = [0.01] * 8
        counts = []
        for alpha in (0.0, 1e-3, 1.0):
            fit = AlphaBetaFit(alpha=alpha, beta=1e-6)
            plan = plan_asc(_layers(sizes), computes, _linear_estimator(), fit)
            counts.append(plan.num_buckets)
        assert counts[0] == 8  # free latency: per-layer
        assert counts[-1] == 1  # latency-dominated: one flat bucket
        assert counts[0] >= counts[1] >= counts[2]

    def test_single_layer_is_always_one_bucket(self):
        for planner in PLANNERS.values():
            plan = planner(_layers([123]), [0.1], _linear_estimator(),
                           AlphaBetaFit(alpha=0.1, beta=1e-6))
            assert plan.num_buckets == 1
            assert plan.sizes == [123]


class TestPlanInputValidation:
    def test_rejects_empty_and_mismatched_inputs(self):
        fit = AlphaBetaFit(alpha=0.1, beta=1e-6)
        with pytest.raises(ValueError):
            plan_mgwfbp([], [], _linear_estimator(), fit)
        with pytest.raises(ValueError):
            plan_mgwfbp(_layers([10, 20]), [0.1], _linear_estimator(), fit)
        with pytest.raises(ValueError):
            plan_mgwfbp(_layers([10]), [-0.1], _linear_estimator(), fit)
        with pytest.raises(ValueError):
            plan_mgwfbp([("a", 0)], [0.1], _linear_estimator(), fit)

    def test_unknown_planner_rejected(self):
        with pytest.raises(ValueError, match="planner"):
            plan_buckets(_layers([10]), planner="bogus", num_workers=4,
                         density=0.1, network=ETHERNET)

    def test_sparse_method_needs_density(self):
        with pytest.raises(ValueError, match="density"):
            plan_buckets(_layers([10]), num_workers=4, network=ETHERNET)

    def test_needs_a_cost_model_source(self):
        with pytest.raises(ValueError, match="alpha-beta"):
            plan_buckets(_layers([10]), num_workers=4, density=0.1)

    def test_fusion_plan_rejects_invalid_groups(self):
        fit = AlphaBetaFit(alpha=0.1, beta=1e-6)
        good = plan_mgwfbp(_layers([10, 20]), [0.1, 0.1],
                           _linear_estimator(), fit)
        with pytest.raises(ValueError):
            FusionPlan(planner="mgwfbp", layers=good.layers,
                       groups=((0, 1),), fit=fit, volume_scale=1.0,
                       predicted=good.predicted,
                       predicted_sequential=good.predicted_sequential)
        with pytest.raises(ValueError):
            FusionPlan(planner="mgwfbp", layers=good.layers,
                       groups=((0, 1), (0, 2)), fit=fit, volume_scale=1.0,
                       predicted=good.predicted,
                       predicted_sequential=good.predicted_sequential)


class TestAlphaBetaFit:
    @given(alpha=st.floats(0.0, 1.0), beta=st.floats(0.0, 1e-4))
    @settings(max_examples=40, deadline=None)
    def test_recovers_exact_linear_model(self, alpha, beta):
        sizes = [256.0, 2048.0, 16384.0, 131072.0]
        times = [alpha + beta * s for s in sizes]
        fit = fit_alpha_beta(sizes, times)
        assert fit.alpha == pytest.approx(alpha, abs=1e-9)
        assert fit.beta == pytest.approx(beta, rel=1e-6, abs=1e-15)

    def test_clamps_negative_coefficients(self):
        # Decreasing times would fit beta < 0: clamped to a valid model.
        fit = fit_alpha_beta([100.0, 200.0, 300.0], [3.0, 2.0, 1.0])
        assert fit.beta == 0.0
        assert fit.alpha >= 0.0

    def test_rejects_degenerate_samples(self):
        with pytest.raises(ValueError):
            fit_alpha_beta([100.0], [1.0])
        with pytest.raises(ValueError):
            fit_alpha_beta([100.0, 100.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            AlphaBetaFit(alpha=-1.0, beta=0.0)

    def test_saturation_size(self):
        assert AlphaBetaFit(alpha=2.0, beta=0.5).saturation_size == 4.0
        assert AlphaBetaFit(alpha=1.0, beta=0.0).saturation_size == float("inf")


class TestBenchmarkTransport:
    def test_recovers_network_profile_on_simulated_backend(self):
        cluster = SimulatedCluster(4)
        for profile in (ETHERNET, RDMA):
            fit = benchmark_transport(cluster, network=profile)
            assert fit.source == "benchmark:simulated"
            assert fit.alpha == pytest.approx(profile.alpha, rel=1e-6)
            assert fit.beta == pytest.approx(profile.beta, rel=1e-6)

    def test_probes_do_not_pollute_training_stats(self):
        cluster = SimulatedCluster(4)
        cluster.stats.record_round([(0, 1, 500.0)])
        before_rounds = cluster.stats.rounds
        before_received = list(cluster.stats.received_per_worker)
        benchmark_transport(cluster, network=ETHERNET)
        assert cluster.stats.rounds == before_rounds
        assert cluster.stats.received_per_worker == before_received

    def test_single_worker_falls_back_to_profile(self):
        fit = benchmark_transport(SimulatedCluster(1), network=ETHERNET)
        assert fit.source == "profile"
        assert fit.alpha == ETHERNET.alpha
        with pytest.raises(ValueError):
            benchmark_transport(SimulatedCluster(1))

    def test_simulated_backend_requires_network(self):
        with pytest.raises(ValueError, match="NetworkProfile"):
            benchmark_transport(SimulatedCluster(4))


class TestCommModels:
    def test_dense_needs_no_density_and_sparse_does(self):
        dense = bucket_comm_model("Dense", num_workers=4)
        rounds, volume = dense(1000)
        assert rounds > 0 and volume > 0
        with pytest.raises(ValueError, match="density"):
            bucket_comm_model("SparDL", num_workers=4)

    def test_sparse_bucket_keeps_at_least_one_entry(self):
        model = bucket_comm_model("SparDL", num_workers=4, density=0.001)
        _, tiny_volume = model(10)  # k would round to 0 without the clamp
        assert tiny_volume > 0

    def test_quantization_shrinks_the_volume(self):
        full = bucket_comm_model("SparDL", num_workers=4, density=0.05)
        quant = bucket_comm_model("SparDL", num_workers=4, density=0.05,
                                  num_bits=4)
        assert quant(10_000)[1] < full(10_000)[1]
        assert quant(10_000)[0] == full(10_000)[0]  # rounds unchanged

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bucket_comm_model("SparDL", num_workers=0, density=0.1)
        with pytest.raises(ValueError):
            bucket_comm_model("SparDL", num_workers=4, density=1.5)
        with pytest.raises(ValueError):
            bucket_comm_model("NoSuchMethod", num_workers=4, density=0.1)(100)
        with pytest.raises(ValueError):
            bucket_comm_model("Dense", num_workers=4)(0)


class TestSpecGrammar:
    def test_auto_specs_round_trip(self):
        for buckets in ("auto", "auto:mgwfbp", "auto:asc"):
            spec = parse_spec(f"spardl?density=0.05&buckets={buckets}")
            assert spec.buckets == buckets
            assert parse_spec(spec.canonical()).buckets == buckets

    def test_unknown_planner_suffix_rejected_at_parse_time(self):
        with pytest.raises(ValueError, match="planner"):
            parse_spec("spardl?density=0.05&buckets=auto:bogus")

    def test_make_attaches_the_plan_and_honours_the_planner(self):
        model = build_mlp(20, [32, 16], 4, seed=0)
        profile = ComputeProfile(0.13, 35.2e6)
        for buckets, planner in (("auto", "mgwfbp"),
                                 ("auto:mgwfbp", "mgwfbp"),
                                 ("auto:asc", "asc")):
            sync = make(f"spardl?density=0.05&buckets={buckets}",
                        SimulatedCluster(4), model=model,
                        network=ETHERNET, compute_profile=profile)
            assert sync.fusion_plan is not None
            assert sync.fusion_plan.planner == planner
            assert sync.bucket_sizes == sync.fusion_plan.sizes
            assert sum(sync.bucket_sizes) == model.num_parameters()

    def test_non_auto_buckets_have_no_plan(self):
        model = build_mlp(20, [32, 16], 4, seed=0)
        sync = make("spardl?density=0.05&buckets=layer",
                    SimulatedCluster(4), model=model)
        assert sync.fusion_plan is None

    def test_breakdown_is_json_serialisable(self):
        import json

        plan = plan_buckets(_layers([100, 200, 300]), num_workers=4,
                            density=0.05, network=ETHERNET,
                            compute_profile=ComputeProfile(0.1, 1e6))
        payload = json.loads(json.dumps(plan.breakdown()))
        assert payload["num_buckets"] == plan.num_buckets
        assert payload["predicted"]["critical_path_s"] == pytest.approx(
            plan.predicted.critical_path)
