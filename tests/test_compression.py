"""Unit and property tests for the quantization extension (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.complexity import spardl_complexity, table1
from repro.compression import (
    QuantizedCompressor,
    StochasticQuantizer,
    quantize_sparse,
    quantized_bandwidth,
    quantized_complexity,
    quantized_sparse_cost,
)
from repro.sparse.vector import SparseGradient


class TestStochasticQuantizer:
    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            StochasticQuantizer(num_bits=0)
        with pytest.raises(ValueError):
            StochasticQuantizer(num_bits=64)

    def test_zero_vector_stays_zero(self):
        quantizer = StochasticQuantizer(num_bits=4, seed=0)
        np.testing.assert_array_equal(quantizer.quantize(np.zeros(10)), np.zeros(10))

    def test_empty_vector(self):
        quantizer = StochasticQuantizer(num_bits=4, seed=0)
        assert quantizer.quantize(np.zeros(0)).size == 0

    def test_error_bounded_by_one_level(self):
        quantizer = StochasticQuantizer(num_bits=6, seed=1)
        values = np.random.default_rng(0).normal(size=500)
        quantized = quantizer.quantize(values)
        level_width = 2 * np.abs(values).max() / quantizer.num_levels
        assert np.abs(values - quantized).max() <= level_width + 1e-12

    def test_extreme_values_are_representable_exactly(self):
        quantizer = StochasticQuantizer(num_bits=3, seed=0)
        values = np.array([-2.0, 0.0, 2.0])
        quantized = quantizer.quantize(values)
        assert quantized[0] == pytest.approx(-2.0)
        assert quantized[2] == pytest.approx(2.0)

    def test_unbiasedness(self):
        """Averaged over many stochastic roundings, the quantized value
        converges to the input (QSGD unbiasedness)."""
        quantizer = StochasticQuantizer(num_bits=2, seed=3)
        values = np.array([0.3, -0.7, 1.0, 0.05])
        total = np.zeros_like(values)
        repeats = 4000
        for _ in range(repeats):
            total += quantizer.quantize(values)
        np.testing.assert_allclose(total / repeats, values, atol=0.02)

    def test_more_bits_means_lower_error(self):
        values = np.random.default_rng(1).normal(size=2000)
        errors = {}
        for bits in (2, 4, 8):
            quantizer = StochasticQuantizer(num_bits=bits, seed=0)
            errors[bits] = float(np.abs(values - quantizer.quantize(values)).mean())
        assert errors[8] < errors[4] < errors[2]

    def test_element_cost(self):
        assert StochasticQuantizer(num_bits=8).element_cost == pytest.approx(0.25)
        assert StochasticQuantizer(num_bits=32).element_cost == pytest.approx(1.0)

    def test_quantize_with_error_is_exact_from_one_draw(self):
        """The confirmed bug: the error must equal ``values - <the message
        actually produced>``, which requires message and error to come from
        one draw.  quantize_with_error guarantees it bitwise."""
        quantizer = StochasticQuantizer(num_bits=4, seed=5)
        values = np.random.default_rng(2).normal(size=100)
        quantized, error = quantizer.quantize_with_error(values)
        assert np.array_equal(error, values - quantized)
        np.testing.assert_allclose(quantized + error, values, atol=1e-12)

    def test_standalone_error_path_is_gone(self):
        """The deprecated ``quantization_error`` re-draw path is removed:
        a standalone error method could never describe a previously sent
        message (each call consumed fresh randomness), so the only
        error-feedback entry point is :meth:`quantize_with_error`."""
        assert not hasattr(StochasticQuantizer, "quantization_error")
        quantizer = StochasticQuantizer(num_bits=2, seed=5)
        with pytest.raises(AttributeError):
            quantizer.quantization_error  # noqa: B018 - attribute must be gone

    def test_quantize_matches_quantize_with_error(self):
        quantizer = StochasticQuantizer(num_bits=3, seed=0)
        values = np.random.default_rng(4).normal(size=50)
        via_pair = quantizer.quantize_with_error(values, rng=np.random.default_rng(9))[0]
        direct = quantizer.quantize(values, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(via_pair, direct)

    def test_quantize_with_error_empty_and_zero(self):
        quantizer = StochasticQuantizer(num_bits=4, seed=0)
        q, e = quantizer.quantize_with_error(np.zeros(0))
        assert q.size == 0 and e.size == 0
        q, e = quantizer.quantize_with_error(np.zeros(7))
        np.testing.assert_array_equal(q, np.zeros(7))
        np.testing.assert_array_equal(e, np.zeros(7))

    def test_unbiasedness_over_repeated_draws_of_the_pair(self):
        """Mean of quantize_with_error's message converges to the input
        (and the mean error to zero): QSGD unbiasedness through the new
        single-draw interface."""
        quantizer = StochasticQuantizer(num_bits=2, seed=11)
        values = np.array([0.4, -0.9, 0.08, 1.0])
        total_q = np.zeros_like(values)
        total_e = np.zeros_like(values)
        repeats = 4000
        for _ in range(repeats):
            q, e = quantizer.quantize_with_error(values)
            total_q += q
            total_e += e
        np.testing.assert_allclose(total_q / repeats, values, atol=0.02)
        np.testing.assert_allclose(total_e / repeats, np.zeros_like(values), atol=0.02)

    @given(values=hnp.arrays(dtype=np.float64, shape=st.integers(1, 200),
                             elements=st.floats(-1e4, 1e4, allow_nan=False)),
           bits=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=50, deadline=None)
    def test_property_levels_and_range(self, values, bits):
        """Quantized output uses at most 2^bits - 1 + 1 distinct levels and
        never exceeds the input range."""
        quantizer = StochasticQuantizer(num_bits=bits, seed=0)
        quantized = quantizer.quantize(values)
        assert np.unique(quantized).size <= (1 << bits)
        assert np.abs(quantized).max() <= np.abs(values).max() + 1e-9


class TestQuantizedSparse:
    def test_indices_preserved_and_size_reduced(self):
        sparse = SparseGradient(np.array([3, 10, 40]), np.array([0.5, -2.0, 1.0]), 100)
        quantizer = StochasticQuantizer(num_bits=8, seed=0)
        quantized, comm_size = quantize_sparse(sparse, quantizer)
        np.testing.assert_array_equal(quantized.indices, sparse.indices)
        assert comm_size < sparse.comm_size
        assert comm_size == pytest.approx(3 * 1.25 + 1.0)

    def test_empty_sparse(self):
        quantizer = StochasticQuantizer(num_bits=8, seed=0)
        quantized, comm_size = quantize_sparse(SparseGradient.empty(10), quantizer)
        assert quantized.nnz == 0
        assert comm_size == 0.0

    @pytest.mark.parametrize("bits,per_value", [(2, 2 / 32), (4, 0.125),
                                                (8, 0.25), (16, 0.5), (32, 1.0)])
    def test_cost_closed_form(self, bits, per_value):
        """nnz full-precision indices + nnz b-bit values + one scale —
        exactly 2*nnz*(1 + b/32)/2 + 1."""
        for nnz in (1, 3, 17, 1000):
            expected = nnz * (1.0 + per_value) + 1.0
            assert quantized_sparse_cost(nnz, bits) == pytest.approx(expected)
            assert quantized_sparse_cost(nnz, bits) == pytest.approx(
                2 * nnz * (1 + bits / 32) / 2 + 1)
        assert quantized_sparse_cost(0, bits) == 0.0

    def test_cost_matches_quantize_sparse(self):
        sparse = SparseGradient(np.arange(5), np.arange(1.0, 6.0), 50)
        for bits in (2, 4, 8):
            quantizer = StochasticQuantizer(num_bits=bits, seed=0)
            _, comm_size = quantize_sparse(sparse, quantizer)
            assert comm_size == quantized_sparse_cost(sparse.nnz, bits)

    def test_cost_validates_inputs(self):
        with pytest.raises(ValueError):
            quantized_sparse_cost(1, 0)
        with pytest.raises(ValueError):
            quantized_sparse_cost(1, 33)
        with pytest.raises(ValueError):
            quantized_sparse_cost(-1, 8)


class TestQuantizedCompressor:
    def test_per_worker_streams_are_independent_of_order(self):
        """The second confirmed bug: a shared RNG made results depend on
        worker iteration order.  With spawned per-worker streams, quantizing
        the workers in any order produces identical messages."""
        values = {w: np.random.default_rng(w).normal(size=64) for w in range(6)}
        sparses = {w: SparseGradient(np.arange(64), v, 64) for w, v in values.items()}
        forward = QuantizedCompressor(4, num_workers=6, seed=1)
        backward = QuantizedCompressor(4, num_workers=6, seed=1)
        out_fwd = {w: forward.compress_sparse(w, sparses[w])[0] for w in range(6)}
        out_bwd = {w: backward.compress_sparse(w, sparses[w])[0]
                   for w in reversed(range(6))}
        for w in range(6):
            np.testing.assert_array_equal(out_fwd[w].values, out_bwd[w].values)

    def test_streams_differ_between_workers(self):
        compressor = QuantizedCompressor(2, num_workers=4, seed=0)
        values = np.random.default_rng(0).normal(size=256)
        sparse = SparseGradient(np.arange(256), values, 256)
        messages = [compressor.compress_sparse(w, sparse)[0].values for w in range(4)]
        assert not np.array_equal(messages[0], messages[1])

    def test_compress_sparse_error_is_exact(self):
        compressor = QuantizedCompressor(4, num_workers=2, seed=3)
        sparse = SparseGradient(np.array([1, 5, 9]), np.array([0.3, -1.2, 0.8]), 20)
        quantized, error = compressor.compress_sparse(0, sparse)
        np.testing.assert_array_equal(quantized.indices, sparse.indices)
        np.testing.assert_array_equal(error.indices, sparse.indices)
        np.testing.assert_array_equal(error.values, sparse.values - quantized.values)
        np.testing.assert_allclose(quantized.values + error.values, sparse.values,
                                   atol=1e-12)

    def test_compress_sparse_empty(self):
        compressor = QuantizedCompressor(8, num_workers=1)
        quantized, error = compressor.compress_sparse(0, SparseGradient.empty(10))
        assert quantized.nnz == 0 and error.nnz == 0

    def test_compress_dense_error_is_exact(self):
        compressor = QuantizedCompressor(2, num_workers=2, seed=0)
        dense = np.random.default_rng(1).normal(size=100)
        quantized, error = compressor.compress_dense(1, dense)
        np.testing.assert_array_equal(error, dense - quantized)
        np.testing.assert_allclose(quantized + error, dense, atol=1e-12)

    def test_pricing_units(self):
        compressor = QuantizedCompressor(8, num_workers=2)
        sparse = SparseGradient(np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0]), 10)
        # sparse message: quantize_sparse accounting, scale included
        assert compressor.price(sparse) == quantized_sparse_cost(3, 8)
        # dense values: num_bits/32 apiece, no scale
        assert compressor.price(np.zeros(100)) == pytest.approx(25.0)
        # routing ints inside containers are metadata; bare scalars are one
        # element of control traffic
        assert compressor.price((7, sparse)) == quantized_sparse_cost(3, 8)
        assert compressor.price(3.5) == 1.0
        assert compressor.price(None) == 0.0
        # lists decompose recursively
        assert compressor.price([sparse, sparse]) == 2 * quantized_sparse_cost(3, 8)

    def test_pricing_packed_bags(self):
        from repro.comm.packed import PackedBags

        compressor = QuantizedCompressor(8, num_workers=2)
        bags = [SparseGradient(np.array([1, 2]), np.array([1.0, 2.0]), 10),
                SparseGradient.empty(10),
                SparseGradient(np.array([5]), np.array([3.0]), 10)]
        packed = PackedBags.pack(bags)
        # 3 nnz total, 2 non-empty bags -> 2 scales
        assert compressor.price(packed) == pytest.approx(3 * 1.25 + 2.0)

    def test_pricing_rejects_unknown_payloads(self):
        compressor = QuantizedCompressor(8, num_workers=1)
        with pytest.raises(TypeError):
            compressor.price(object())


class TestQuantizedComplexity:
    def test_bandwidth_factor(self):
        assert quantized_bandwidth(100.0, 8) == pytest.approx(100.0 * (1 + 0.25) / 2)
        assert quantized_bandwidth(100.0, 32) == pytest.approx(100.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantized_bandwidth(100.0, 0)

    def test_quantized_complexity_keeps_latency(self):
        bound = spardl_complexity(14, 10 ** 6, 10 ** 4)
        combined = quantized_complexity(bound, 8)
        assert combined.latency_rounds == bound.latency_rounds
        assert combined.bandwidth_high == pytest.approx(bound.bandwidth_high * 0.625)
        assert "8bit" in combined.method

    def test_combining_with_spardl_reduces_predicted_time(self):
        bound = spardl_complexity(14, 10 ** 6, 10 ** 4)
        combined = quantized_complexity(bound, 4)
        assert combined.time(1e-3, 1e-8) < bound.time(1e-3, 1e-8)

    def test_table1_renders_quantized_rows_next_to_plain_ones(self):
        plain = table1(8, 10 ** 5, 10 ** 3, d=2)
        both = table1(8, 10 ** 5, 10 ** 3, d=2, num_bits=8)
        assert set(plain) <= set(both)
        for name, bound in plain.items():
            combined = both[f"{name}+8bit"]
            assert combined.latency_rounds == bound.latency_rounds
            assert combined.bandwidth_high == pytest.approx(
                bound.bandwidth_high * (1 + 8 / 32) / 2)
