"""Unit and property tests for the quantization extension (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.complexity import spardl_complexity
from repro.compression import (
    StochasticQuantizer,
    quantize_sparse,
    quantized_bandwidth,
    quantized_complexity,
)
from repro.sparse.vector import SparseGradient


class TestStochasticQuantizer:
    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            StochasticQuantizer(num_bits=0)
        with pytest.raises(ValueError):
            StochasticQuantizer(num_bits=64)

    def test_zero_vector_stays_zero(self):
        quantizer = StochasticQuantizer(num_bits=4, seed=0)
        np.testing.assert_array_equal(quantizer.quantize(np.zeros(10)), np.zeros(10))

    def test_empty_vector(self):
        quantizer = StochasticQuantizer(num_bits=4, seed=0)
        assert quantizer.quantize(np.zeros(0)).size == 0

    def test_error_bounded_by_one_level(self):
        quantizer = StochasticQuantizer(num_bits=6, seed=1)
        values = np.random.default_rng(0).normal(size=500)
        quantized = quantizer.quantize(values)
        level_width = 2 * np.abs(values).max() / quantizer.num_levels
        assert np.abs(values - quantized).max() <= level_width + 1e-12

    def test_extreme_values_are_representable_exactly(self):
        quantizer = StochasticQuantizer(num_bits=3, seed=0)
        values = np.array([-2.0, 0.0, 2.0])
        quantized = quantizer.quantize(values)
        assert quantized[0] == pytest.approx(-2.0)
        assert quantized[2] == pytest.approx(2.0)

    def test_unbiasedness(self):
        """Averaged over many stochastic roundings, the quantized value
        converges to the input (QSGD unbiasedness)."""
        quantizer = StochasticQuantizer(num_bits=2, seed=3)
        values = np.array([0.3, -0.7, 1.0, 0.05])
        total = np.zeros_like(values)
        repeats = 4000
        for _ in range(repeats):
            total += quantizer.quantize(values)
        np.testing.assert_allclose(total / repeats, values, atol=0.02)

    def test_more_bits_means_lower_error(self):
        values = np.random.default_rng(1).normal(size=2000)
        errors = {}
        for bits in (2, 4, 8):
            quantizer = StochasticQuantizer(num_bits=bits, seed=0)
            errors[bits] = float(np.abs(values - quantizer.quantize(values)).mean())
        assert errors[8] < errors[4] < errors[2]

    def test_element_cost(self):
        assert StochasticQuantizer(num_bits=8).element_cost == pytest.approx(0.25)
        assert StochasticQuantizer(num_bits=32).element_cost == pytest.approx(1.0)

    def test_quantization_error_plus_quantized_reconstructs(self):
        quantizer = StochasticQuantizer(num_bits=4, seed=5)
        values = np.random.default_rng(2).normal(size=100)
        rng = np.random.default_rng(7)
        quantized = quantizer.quantize(values, rng=np.random.default_rng(7))
        error = quantizer.quantization_error(values, rng=np.random.default_rng(7))
        np.testing.assert_allclose(quantized + error, values, atol=1e-12)

    @given(values=hnp.arrays(dtype=np.float64, shape=st.integers(1, 200),
                             elements=st.floats(-1e4, 1e4, allow_nan=False)),
           bits=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=50, deadline=None)
    def test_property_levels_and_range(self, values, bits):
        """Quantized output uses at most 2^bits - 1 + 1 distinct levels and
        never exceeds the input range."""
        quantizer = StochasticQuantizer(num_bits=bits, seed=0)
        quantized = quantizer.quantize(values)
        assert np.unique(quantized).size <= (1 << bits)
        assert np.abs(quantized).max() <= np.abs(values).max() + 1e-9


class TestQuantizedSparse:
    def test_indices_preserved_and_size_reduced(self):
        sparse = SparseGradient(np.array([3, 10, 40]), np.array([0.5, -2.0, 1.0]), 100)
        quantizer = StochasticQuantizer(num_bits=8, seed=0)
        quantized, comm_size = quantize_sparse(sparse, quantizer)
        np.testing.assert_array_equal(quantized.indices, sparse.indices)
        assert comm_size < sparse.comm_size
        assert comm_size == pytest.approx(3 * 1.25 + 1.0)

    def test_empty_sparse(self):
        quantizer = StochasticQuantizer(num_bits=8, seed=0)
        quantized, comm_size = quantize_sparse(SparseGradient.empty(10), quantizer)
        assert quantized.nnz == 0
        assert comm_size == 0.0


class TestQuantizedComplexity:
    def test_bandwidth_factor(self):
        assert quantized_bandwidth(100.0, 8) == pytest.approx(100.0 * (1 + 0.25) / 2)
        assert quantized_bandwidth(100.0, 32) == pytest.approx(100.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantized_bandwidth(100.0, 0)

    def test_quantized_complexity_keeps_latency(self):
        bound = spardl_complexity(14, 10 ** 6, 10 ** 4)
        combined = quantized_complexity(bound, 8)
        assert combined.latency_rounds == bound.latency_rounds
        assert combined.bandwidth_high == pytest.approx(bound.bandwidth_high * 0.625)
        assert "8bit" in combined.method

    def test_combining_with_spardl_reduces_predicted_time(self):
        bound = spardl_complexity(14, 10 ** 6, 10 ** 4)
        combined = quantized_complexity(bound, 4)
        assert combined.time(1e-3, 1e-8) < bound.time(1e-3, 1e-8)
