"""DGC momentum correction and the hybrid dense/sparse bucket policy.

Momentum correction (Lin et al., ICLR'18) moves the momentum recursion
*inside* the synchroniser: the per-worker velocity ``u = m*u + g`` is what
enters error feedback, and the velocity is masked at the final global
indices so delayed coordinates keep their momentum history.  The anchor
facts these tests pin down:

* dense paths never mask, which makes synchroniser-side momentum on a dense
  All-Reduce *mathematically identical* to naive optimizer momentum — the
  trainer-level equivalence test exploits exactly this;
* the trainer handoff (``TrainerConfig.momentum_correction``) builds the
  SGD optimizers momentum-free, so velocity is applied exactly once;
* the ``hybrid=dense<SIZE`` bucket policy runs small buckets as exact dense
  All-Reduce (billed at the closed-form ``2n(P-1)`` ring volume) while
  large buckets keep the sparse method, byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make, make_factory
from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.baselines.registry import make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.residuals import ResidualManager
from repro.core.spardl import SparDLSynchronizer
from repro.data.datasets import Dataset, TaskType
from repro.nn.models import build_mlp
from repro.nn.parameter import flatten_values
from repro.training.trainer import DistributedTrainer, TrainerConfig

from tests.helpers import random_gradients


# ---------------------------------------------------------------------------
# velocity semantics on the ResidualManager
# ---------------------------------------------------------------------------
class TestVelocitySemantics:
    def test_apply_advances_velocity_recursion(self):
        manager = ResidualManager(1, 4, momentum=0.5)
        g1 = np.array([1.0, 2.0, -1.0, 0.0])
        corrected = manager.apply({0: g1})
        np.testing.assert_array_equal(corrected[0], g1)
        np.testing.assert_array_equal(manager.velocity(0), g1)
        g2 = np.array([0.0, 1.0, 1.0, 2.0])
        corrected = manager.apply({0: g2})
        np.testing.assert_array_equal(manager.velocity(0), 0.5 * g1 + g2)
        np.testing.assert_array_equal(corrected[0], 0.5 * g1 + g2)

    def test_finalize_masks_velocity_at_final_indices_only(self):
        manager = ResidualManager(2, 5, momentum=0.9)
        manager.apply(random_gradients(2, 5, seed=1))
        before = {w: manager.velocity(w) for w in range(2)}
        manager.finalize(np.array([0, 3]))
        for worker in range(2):
            after = manager.velocity(worker)
            assert after[0] == 0.0 and after[3] == 0.0
            np.testing.assert_array_equal(after[[1, 2, 4]],
                                          before[worker][[1, 2, 4]])

    def test_finalize_none_masks_nothing(self):
        manager = ResidualManager(1, 4, momentum=0.9)
        manager.apply({0: np.ones(4)})
        manager.finalize(None)
        np.testing.assert_array_equal(manager.velocity(0), np.ones(4))

    def test_set_momentum_idempotent_but_conflicting_factor_raises(self):
        manager = ResidualManager(1, 4, momentum=0.9)
        manager.set_momentum(0.9)  # same factor: fine
        with pytest.raises(ValueError, match="already active"):
            manager.set_momentum(0.5)

    def test_momentum_range_validated(self):
        with pytest.raises(ValueError, match="momentum"):
            ResidualManager(1, 4, momentum=1.0)
        with pytest.raises(ValueError, match="momentum"):
            ResidualManager(1, 4, momentum=-0.1)

    def test_config_rejects_momentum_without_error_feedback(self):
        with pytest.raises(ValueError, match="residual_policy"):
            SparDLConfig(density=0.05, momentum=0.9, residual_policy="none")

    def test_config_describe_mentions_momentum(self):
        assert "m=0.9" in SparDLConfig(density=0.05, momentum=0.9).describe()


# ---------------------------------------------------------------------------
# dense path == naive momentum SGD
# ---------------------------------------------------------------------------
class TestDenseEquivalence:
    def test_dense_allreduce_momentum_matches_velocity_recursion(self):
        """A dense All-Reduce never calls finalize, so its returned sum is
        exactly the velocity recursion of the summed gradient stream."""
        num_workers, num_elements, factor = 3, 40, 0.9
        cluster = SimulatedCluster(num_workers)
        sync = DenseAllReduceSynchronizer(cluster, num_elements, momentum=factor)
        reference = np.zeros(num_elements)
        for i in range(4):
            grads = random_gradients(num_workers, num_elements, seed=23 + i)
            result = sync.synchronize(grads)
            reference = factor * reference + sum(grads.values())
            np.testing.assert_allclose(result.gradient(0), reference,
                                       rtol=1e-12, atol=1e-12)
            assert result.info.get("momentum") == factor

    def _trainer(self, correction: bool) -> DistributedTrainer:
        rng = np.random.default_rng(11)
        inputs = rng.normal(size=(64, 8))
        targets = (inputs[:, :4].sum(axis=1) > 0).astype(np.int64)
        train = Dataset(inputs[:48], targets[:48],
                        TaskType.IMAGE_CLASSIFICATION, name="toy")
        test = Dataset(inputs[48:], targets[48:],
                       TaskType.IMAGE_CLASSIFICATION, name="toy")
        cluster = SimulatedCluster(2)
        config = TrainerConfig(batch_size=8, learning_rate=0.1, momentum=0.9,
                               momentum_correction=correction, seed=0)
        return DistributedTrainer(
            cluster, make_factory("dense"),
            lambda seed: build_mlp(8, [8], 2, seed=seed),
            train, test, config=config)

    def test_dense_corrected_training_matches_naive_momentum(self):
        naive = self._trainer(correction=False)
        corrected = self._trainer(correction=True)
        naive.train(2)
        corrected.train(2)
        np.testing.assert_allclose(
            flatten_values(corrected.global_model.parameters()),
            flatten_values(naive.global_model.parameters()),
            rtol=1e-9, atol=1e-10)


# ---------------------------------------------------------------------------
# trainer handoff
# ---------------------------------------------------------------------------
class TestTrainerHandoff:
    def _datasets(self):
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(32, 8))
        targets = (inputs[:, 0] > 0).astype(np.int64)
        dataset = Dataset(inputs, targets, TaskType.IMAGE_CLASSIFICATION,
                          name="toy")
        return dataset, dataset

    def _trainer(self, spec, **config_kwargs):
        train, test = self._datasets()
        config = TrainerConfig(batch_size=8, seed=0, **config_kwargs)
        return DistributedTrainer(
            SimulatedCluster(2), make_factory(spec),
            lambda seed: build_mlp(8, [8], 2, seed=seed),
            train, test, config=config)

    def test_handoff_disables_optimizer_momentum(self):
        trainer = self._trainer("spardl?density=0.1", momentum=0.9,
                                momentum_correction=True)
        assert all(opt.momentum == 0.0 for opt in trainer.optimizers)
        assert trainer.synchronizer.residuals.momentum == 0.9

    def test_without_handoff_optimizers_keep_momentum(self):
        trainer = self._trainer("spardl?density=0.1", momentum=0.9)
        assert all(opt.momentum == 0.9 for opt in trainer.optimizers)
        assert trainer.synchronizer.residuals.momentum == 0.0

    def test_handoff_requires_positive_momentum(self):
        with pytest.raises(ValueError, match="momentum_correction"):
            self._trainer("spardl?density=0.1", momentum_correction=True)

    def test_handoff_agrees_with_spec_momentum(self):
        # Spec already enabled the same factor: the handoff is idempotent.
        trainer = self._trainer("spardl?density=0.1&momentum=0.9",
                                momentum=0.9, momentum_correction=True)
        assert trainer.synchronizer.residuals.momentum == 0.9

    def test_handoff_conflicting_with_spec_momentum_raises(self):
        with pytest.raises(ValueError, match="already active"):
            self._trainer("spardl?density=0.1&momentum=0.5",
                          momentum=0.9, momentum_correction=True)

    def test_handoff_reaches_every_bucket(self):
        trainer = self._trainer("spardl?density=0.1&buckets=layer",
                                momentum=0.9, momentum_correction=True)
        for session in trainer.synchronizer.sessions:
            assert session.synchronizer.residuals.momentum == 0.9

    def test_methods_without_error_feedback_refuse_the_handoff(self):
        cluster = SimulatedCluster(2)
        sync = DenseAllReduceSynchronizer(cluster, 10)
        sync.enable_momentum_correction(0.9)  # Dense creates the manager
        assert sync.residuals.momentum == 0.9

    def test_training_with_correction_converges(self):
        trainer = self._trainer("spardl?density=0.1", momentum=0.9,
                                momentum_correction=True, learning_rate=0.1)
        history = trainer.train(3)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss


# ---------------------------------------------------------------------------
# hybrid dense/sparse bucket policy
# ---------------------------------------------------------------------------
class TestHybridPolicy:
    """``hybrid=dense<SIZE``: buckets smaller than SIZE run exact dense
    All-Reduce; the rest keep the sparse method untouched."""

    def _make(self, spec, num_workers=4):
        model = build_mlp(8, [8], 2, seed=0)
        return make(spec, SimulatedCluster(num_workers), model=model), model

    def test_small_buckets_go_dense(self):
        # build_mlp(8, [8], 2) buckets: weights 64 and 16, biases 8 and 2.
        sync, _ = self._make("spardl?density=0.2&buckets=layer&hybrid=dense<10")
        methods = dict(zip(sync.bucket_names, [s.synchronizer.name
                                               for s in sync.sessions]))
        for name, method in methods.items():
            if name.endswith(".bias"):
                assert method == "Dense", name
            else:
                assert method.startswith("SparDL"), name

    def test_hybrid_requires_bucketed_layout(self):
        with pytest.raises(ValueError, match="non-flat buckets"):
            make("spardl?density=0.1&hybrid=dense<100", SimulatedCluster(4),
                 num_elements=100)

    def test_hybrid_on_dense_method_raises(self):
        with pytest.raises(ValueError, match="sparse"):
            make("dense?buckets=layer&hybrid=dense<100", SimulatedCluster(4),
                 model=build_mlp(8, [8], 2, seed=0))

    @pytest.mark.parametrize("bad", ["dense<0", "dense<", "sparse<10", "10"])
    def test_malformed_hybrid_raises(self, bad):
        with pytest.raises(ValueError):
            make(f"spardl?density=0.1&buckets=layer&hybrid={bad}",
                 SimulatedCluster(4), model=build_mlp(8, [8], 2, seed=0))

    def test_dense_buckets_bill_closed_form_ring_volume(self):
        """Volume accounting gate: every dense bucket's billed volume is
        exactly the ring All-Reduce ``2 * n * (P - 1)``, and the sparse
        buckets' statistics match a pure-sparse run byte for byte."""
        P = 4
        hybrid, model = self._make(
            "spardl?density=0.2&buckets=layer&hybrid=dense<10", num_workers=P)
        pure, _ = self._make("spardl?density=0.2&buckets=layer", num_workers=P)
        grads = random_gradients(P, model.num_parameters(), seed=41)
        result_h = hybrid.synchronize(grads)
        result_p = pure.synchronize({w: g.copy() for w, g in grads.items()})

        stats_h = result_h.info["bucket_stats"]
        stats_p = result_p.info["bucket_stats"]
        for name, size, method, bucket_stats, pure_stats in zip(
                hybrid.bucket_names, hybrid.bucket_sizes,
                result_h.info["bucket_methods"], stats_h, stats_p):
            if method == "Dense":
                assert bucket_stats.total_volume == pytest.approx(
                    2 * size * (P - 1)), name
            else:
                assert bucket_stats.total_volume == pure_stats.total_volume
                assert bucket_stats.rounds == pure_stats.rounds

        # The hybrid result is still the exact conserved sum per bucket.
        recon = result_h.gradient(0) + hybrid.total_residual()
        np.testing.assert_allclose(recon, sum(grads.values()), atol=1e-9)
        assert result_h.is_consistent

    def test_hybrid_composes_with_momentum_and_bits(self):
        sync, _ = self._make(
            "spardl?density=0.2&buckets=layer&hybrid=dense<10"
            "&momentum=0.9&bits=8")
        for session in sync.sessions:
            inner = session.synchronizer
            assert inner.residuals.momentum == 0.9
            if inner.name == "Dense":
                # Dense buckets stay full precision *sparse-method-free* but
                # still carry the momentum stack.
                assert inner.stack.momentum == 0.9
            else:
                assert inner.compressor.num_bits == 8

    def test_hybrid_spec_round_trips(self):
        from repro.api import describe, parse_spec
        spec = "spardl?density=0.2&buckets=layer&momentum=0.9&hybrid=dense<10"
        sync, _ = self._make(spec)
        assert describe(sync) == spec
        assert parse_spec(spec).canonical() == spec
