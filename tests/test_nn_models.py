"""Unit tests for the model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import (
    ResidualBlock,
    build_lstm_classifier,
    build_lstm_language_model,
    build_mlp,
    build_regression_cnn,
    build_resnet,
    build_transformer_mlm,
    build_vgg,
)
from repro.nn.optim import SGD
from repro.nn.parameter import flatten_values

from tests.helpers import numerical_gradient_check


class TestBuilders:
    def test_mlp_shapes(self):
        model = build_mlp(10, [16, 8], 3, seed=0)
        out = model.forward(np.zeros((4, 10)))
        assert out.shape == (4, 3)

    @pytest.mark.parametrize("variant,expected_convs", [("vgg11", 8), ("vgg16", 13), ("vgg19", 16)])
    def test_vgg_depth_matches_variant(self, variant, expected_convs):
        from repro.nn.conv import Conv2d
        model = build_vgg(variant, image_size=16, num_classes=10, seed=0)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        assert len(convs) == expected_convs

    def test_vgg_unknown_variant(self):
        with pytest.raises(ValueError):
            build_vgg("vgg13")

    def test_vgg_forward_shape(self):
        model = build_vgg("vgg16", image_size=16, num_classes=10, seed=0)
        out = model.forward(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_regression_cnn_single_output(self):
        model = build_regression_cnn(image_size=16, seed=0)
        out = model.forward(np.zeros((2, 3, 16, 16)))
        assert out.shape == (2, 1)

    def test_resnet_forward_shape(self):
        model = build_resnet((1, 1), num_classes=5, base_width=4, seed=0)
        out = model.forward(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 5)

    def test_lstm_classifier_shape(self):
        model = build_lstm_classifier(vocab_size=20, num_classes=3, embedding_dim=8,
                                      hidden_dim=12, seed=0)
        out = model.forward(np.zeros((4, 6), dtype=int))
        assert out.shape == (4, 3)

    def test_lstm_lm_shape(self):
        model = build_lstm_language_model(vocab_size=20, embedding_dim=8, hidden_dim=12, seed=0)
        out = model.forward(np.zeros((4, 6), dtype=int))
        assert out.shape == (4, 6, 20)

    def test_transformer_mlm_shape(self):
        model = build_transformer_mlm(vocab_size=20, max_length=8, model_dim=16,
                                      num_heads=2, num_layers=2, seed=0)
        out = model.forward(np.zeros((3, 8), dtype=int))
        assert out.shape == (3, 8, 20)

    def test_same_seed_gives_identical_models(self):
        a = build_vgg("vgg11", seed=7)
        b = build_vgg("vgg11", seed=7)
        np.testing.assert_array_equal(flatten_values(a.parameters()),
                                      flatten_values(b.parameters()))

    def test_different_seeds_give_different_models(self):
        a = build_mlp(4, [8], 2, seed=1)
        b = build_mlp(4, [8], 2, seed=2)
        assert not np.array_equal(flatten_values(a.parameters()),
                                  flatten_values(b.parameters()))


class TestResidualBlock:
    def test_identity_skip_when_shapes_match(self):
        from repro.nn.module import Identity
        block = ResidualBlock(4, 4, stride=1, rng=np.random.default_rng(0))
        assert isinstance(block.shortcut, Identity)

    def test_projection_skip_when_shapes_differ(self):
        from repro.nn.conv import Conv2d
        block = ResidualBlock(4, 8, stride=2, rng=np.random.default_rng(0))
        assert isinstance(block.shortcut, Conv2d)

    def test_forward_backward_shapes(self):
        block = ResidualBlock(3, 6, stride=2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        out = block.forward(x)
        assert out.shape == (2, 6, 4, 4)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        from repro.nn.layers import Flatten, Linear
        from repro.nn.module import Sequential
        model = Sequential(ResidualBlock(2, 2, rng=rng), Flatten(), Linear(2 * 4 * 4, 2, rng=rng))
        model.eval()  # use running BN stats so finite differences are exact
        # Warm up the running statistics first.
        model.train()
        x = rng.normal(size=(3, 2, 4, 4))
        model.forward(x)
        model.eval()
        y = rng.normal(size=(3, 2))
        assert numerical_gradient_check(model, x, lambda p, t: MSELoss()(p, t), y) < 1e-5


class TestModelsLearn:
    def test_mlp_learns_linearly_separable_data(self):
        rng = np.random.default_rng(0)
        model = build_mlp(4, [16], 2, seed=0)
        x = rng.normal(size=(128, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), learning_rate=0.5, momentum=0.9)
        first_loss = None
        for _ in range(60):
            out = model.forward(x)
            loss, grad = loss_fn(out, y)
            if first_loss is None:
                first_loss = loss
            model.zero_grad()
            model.backward(grad)
            optimizer.step()
        assert loss < first_loss * 0.5

    def test_lstm_lm_learns_repetitive_sequence(self):
        model = build_lstm_language_model(vocab_size=6, embedding_dim=8, hidden_dim=16, seed=0)
        # Deterministic cyclic sequence 0,1,2,...: next token is fully predictable.
        x = np.tile(np.arange(6), (8, 2))[:, :8]
        targets = np.roll(x, -1, axis=1)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), learning_rate=2.0, momentum=0.9)
        losses = []
        for _ in range(80):
            out = model.forward(x)
            loss, grad = loss_fn(out, targets)
            losses.append(loss)
            model.zero_grad()
            model.backward(grad)
            optimizer.step()
        assert losses[-1] < losses[0] * 0.25
