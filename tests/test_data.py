"""Unit tests for datasets, loaders, sharding and synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import DataLoader, Dataset, TaskType, shard_dataset, train_test_split
from repro.data.synthetic import (
    synthetic_image_classification,
    synthetic_image_regression,
    synthetic_language_modeling,
    synthetic_masked_lm,
    synthetic_text_classification,
)


class TestDataset:
    def test_length(self):
        dataset = Dataset(np.zeros((10, 3)), np.zeros(10), TaskType.IMAGE_REGRESSION)
        assert len(dataset) == 10

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((10, 3)), np.zeros(5), TaskType.IMAGE_REGRESSION)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((0, 3)), np.zeros(0), TaskType.IMAGE_REGRESSION)

    def test_subset(self):
        dataset = Dataset(np.arange(10).reshape(10, 1), np.arange(10),
                          TaskType.IMAGE_REGRESSION)
        sub = dataset.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert sub.inputs[1, 0] == 3

    def test_batch_slicing(self):
        dataset = Dataset(np.arange(10).reshape(10, 1), np.arange(10),
                          TaskType.IMAGE_REGRESSION)
        inputs, targets = dataset.batch(2, 5)
        assert inputs.shape[0] == 3
        assert targets[0] == 2

    def test_task_type_flags(self):
        assert TaskType.IMAGE_CLASSIFICATION.is_classification
        assert not TaskType.LANGUAGE_MODELING.is_classification
        assert TaskType.MASKED_LM.is_sequence
        assert not TaskType.IMAGE_REGRESSION.is_sequence


class TestSplitAndShard:
    def _dataset(self, n=20):
        return Dataset(np.arange(n).reshape(n, 1), np.arange(n), TaskType.IMAGE_REGRESSION)

    def test_train_test_split_sizes(self):
        train, test = train_test_split(self._dataset(20), test_fraction=0.25, seed=0)
        assert len(train) == 15
        assert len(test) == 5

    def test_split_is_a_partition(self):
        train, test = train_test_split(self._dataset(20), test_fraction=0.3, seed=1)
        together = sorted(train.inputs[:, 0].tolist() + test.inputs[:, 0].tolist())
        assert together == list(range(20))

    def test_split_deterministic_for_seed(self):
        a_train, _ = train_test_split(self._dataset(20), seed=5)
        b_train, _ = train_test_split(self._dataset(20), seed=5)
        np.testing.assert_array_equal(a_train.inputs, b_train.inputs)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(self._dataset(), test_fraction=0.0)

    def test_shards_are_disjoint_and_complete(self):
        dataset = self._dataset(21)
        shards = [shard_dataset(dataset, 4, w) for w in range(4)]
        seen = sorted(x for shard in shards for x in shard.inputs[:, 0].tolist())
        assert seen == list(range(21))
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_validation(self):
        dataset = self._dataset(4)
        with pytest.raises(ValueError):
            shard_dataset(dataset, 0, 0)
        with pytest.raises(ValueError):
            shard_dataset(dataset, 2, 2)
        with pytest.raises(ValueError):
            shard_dataset(dataset, 8, 0)  # fewer samples than shards


class TestDataLoader:
    def _dataset(self, n=10):
        return Dataset(np.arange(n).reshape(n, 1), np.arange(n), TaskType.IMAGE_REGRESSION)

    def test_batch_count(self):
        loader = DataLoader(self._dataset(10), batch_size=3)
        assert len(loader) == 4
        loader = DataLoader(self._dataset(10), batch_size=3, drop_last=True)
        assert len(loader) == 3

    def test_iterates_all_samples(self):
        loader = DataLoader(self._dataset(10), batch_size=3, shuffle=True, seed=0)
        seen = [int(x) for inputs, _ in loader for x in inputs[:, 0]]
        assert sorted(seen) == list(range(10))

    def test_shuffle_changes_order_but_not_content(self):
        loader = DataLoader(self._dataset(10), batch_size=10, shuffle=True, seed=3)
        first_pass = next(iter(loader))[0][:, 0].tolist()
        assert sorted(first_pass) == list(range(10))
        assert first_pass != list(range(10))

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(self._dataset(6), batch_size=2, shuffle=False)
        batches = [inputs[:, 0].tolist() for inputs, _ in loader]
        assert batches == [[0, 1], [2, 3], [4, 5]]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._dataset(), batch_size=0)


class TestSyntheticGenerators:
    def test_image_classification_shapes_and_labels(self):
        dataset = synthetic_image_classification(num_samples=50, num_classes=7,
                                                 image_size=8, seed=0)
        assert dataset.inputs.shape == (50, 3, 8, 8)
        assert dataset.targets.min() >= 0 and dataset.targets.max() < 7
        assert dataset.task is TaskType.IMAGE_CLASSIFICATION

    def test_image_classification_deterministic(self):
        a = synthetic_image_classification(num_samples=10, seed=3)
        b = synthetic_image_classification(num_samples=10, seed=3)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_image_classification_has_class_signal(self):
        dataset = synthetic_image_classification(num_samples=200, num_classes=2,
                                                 image_size=8, noise=0.1, seed=0)
        class0 = dataset.inputs[dataset.targets == 0].mean(axis=0)
        class1 = dataset.inputs[dataset.targets == 1].mean(axis=0)
        assert np.abs(class0 - class1).mean() > 0.1

    def test_image_regression_shapes(self):
        dataset = synthetic_image_regression(num_samples=30, image_size=8, seed=0)
        assert dataset.inputs.shape == (30, 3, 8, 8)
        assert dataset.targets.shape == (30, 1)
        assert dataset.task is TaskType.IMAGE_REGRESSION

    def test_text_classification_tokens_in_vocab(self):
        dataset = synthetic_text_classification(num_samples=40, vocab_size=30,
                                                sequence_length=12, seed=0)
        assert dataset.inputs.shape == (40, 12)
        assert dataset.inputs.max() < 30
        assert set(np.unique(dataset.targets)) <= {0, 1}

    def test_text_classification_class_conditional_distributions_differ(self):
        dataset = synthetic_text_classification(num_samples=400, vocab_size=20,
                                                num_classes=2, signal=5.0, seed=0)
        tokens0 = dataset.inputs[dataset.targets == 0].ravel()
        tokens1 = dataset.inputs[dataset.targets == 1].ravel()
        hist0 = np.bincount(tokens0, minlength=20) / tokens0.size
        hist1 = np.bincount(tokens1, minlength=20) / tokens1.size
        assert np.abs(hist0 - hist1).sum() > 0.3

    def test_language_modeling_targets_are_shifted_inputs(self):
        dataset = synthetic_language_modeling(num_samples=20, vocab_size=10,
                                              sequence_length=8, seed=0)
        np.testing.assert_array_equal(dataset.inputs[:, 1:], dataset.targets[:, :-1])

    def test_masked_lm_mask_structure(self):
        dataset = synthetic_masked_lm(num_samples=40, vocab_size=20, sequence_length=10,
                                      mask_fraction=0.2, seed=0)
        mask_token = 19
        masked_positions = dataset.inputs == mask_token
        # Every masked position has a real target; every unmasked position is ignored.
        assert (dataset.targets[masked_positions] >= 0).all()
        assert (dataset.targets[~masked_positions] == -1).all()
        # Every sequence has at least one masked position.
        assert masked_positions.any(axis=1).all()

    def test_masked_lm_mask_fraction_roughly_respected(self):
        dataset = synthetic_masked_lm(num_samples=100, vocab_size=30, sequence_length=20,
                                      mask_fraction=0.15, seed=1)
        fraction = (dataset.inputs == 29).mean()
        assert 0.08 < fraction < 0.25

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            synthetic_image_classification(num_samples=0)
        with pytest.raises(ValueError):
            synthetic_text_classification(vocab_size=2, num_classes=2)
        with pytest.raises(ValueError):
            synthetic_masked_lm(mask_fraction=0.0)
