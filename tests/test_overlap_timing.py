"""Overlap-aware iteration timing: closed-form timelines, monotonicity,
sequential equivalence, straggler composition and plan determinism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make
from repro.comm.cluster import SimulatedCluster
from repro.comm.faults import FaultPlan
from repro.comm.network import ETHERNET, NetworkProfile
from repro.comm.stats import CommStats
from repro.core.pipeline import SyncSession
from repro.nn.models import build_mlp
from repro.training.timing import (
    ComputeProfile,
    communication_time,
    iteration_time,
    overlap_timeline,
)

NUM_WORKERS = 4


def _bucket_stats(volumes, num_workers=NUM_WORKERS):
    """One single-round CommStats per volume (rank 1 receives everything)."""
    out = []
    for volume in volumes:
        stats = CommStats(num_workers=num_workers)
        stats.record_round([(0, 1, float(volume))])
        out.append(stats)
    return out


class TestClosedFormTimelines:
    """Hand-computed 2–3 bucket pipelines (times in seconds)."""

    def test_full_overlap_three_buckets(self):
        # Backward slices of 1s each; every 0.5s exchange fits inside the
        # following slice, so only the last exchange's tail is exposed.
        tl = overlap_timeline([1.0, 1.0, 1.0], [0.5, 0.5, 0.5])
        assert tl.backward_finish == (1.0, 2.0, 3.0)
        assert tl.comm_start == (1.0, 2.0, 3.0)
        assert tl.comm_finish == (1.5, 2.5, 3.5)
        assert tl.critical_path == 3.5
        assert tl.exposed_comm == pytest.approx(0.5)
        assert tl.hidden_comm == pytest.approx(1.0)
        assert tl.overlap_ratio == pytest.approx(1.0 / 1.5)

    def test_zero_overlap_two_buckets(self):
        # All compute happens before the first exchange: nothing can hide.
        tl = overlap_timeline([2.0, 0.0], [1.0, 1.0])
        assert tl.comm_start == (2.0, 3.0)
        assert tl.comm_finish == (3.0, 4.0)
        assert tl.critical_path == 4.0
        assert tl.critical_path == tl.backward_total + tl.comm_total
        assert tl.hidden_comm == pytest.approx(0.0)
        assert tl.overlap_ratio == pytest.approx(0.0)

    def test_partial_overlap_two_buckets(self):
        # First exchange (2s) outlives the 1s slice it follows; the second
        # exchange starts the instant both gradient and channel are ready.
        tl = overlap_timeline([1.0, 2.0], [2.0, 1.0])
        assert tl.backward_finish == (1.0, 3.0)
        assert tl.comm_start == (1.0, 3.0)
        assert tl.comm_finish == (3.0, 4.0)
        assert tl.critical_path == 4.0
        assert tl.exposed_comm == pytest.approx(1.0)
        assert tl.hidden_comm == pytest.approx(2.0)

    def test_channel_contention_serialises_exchanges(self):
        # Three tiny slices, one huge first exchange: later buckets queue
        # on the shared channel even though their gradients are long ready.
        tl = overlap_timeline([0.1, 0.1, 0.1], [3.0, 1.0, 1.0])
        assert tl.comm_start == (0.1, 3.1, 4.1)
        assert tl.critical_path == pytest.approx(5.1)

    def test_single_bucket_degenerates_to_flat_sum(self):
        tl = overlap_timeline([1.25], [0.75])
        assert tl.critical_path == 1.25 + 0.75
        assert tl.hidden_comm == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            overlap_timeline([], [])
        with pytest.raises(ValueError):
            overlap_timeline([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            overlap_timeline([-1.0], [1.0])
        with pytest.raises(ValueError):
            overlap_timeline([1.0], [-0.5])


class TestMonotonicity:
    @given(
        times=st.lists(
            st.tuples(st.floats(0.0, 5.0), st.floats(0.0, 5.0)),
            min_size=1, max_size=6),
        index=st.integers(0, 5),
        delta=st.floats(0.001, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_compute_never_shortens_the_timeline(self, times, index, delta):
        computes = [c for c, _ in times]
        comms = [m for _, m in times]
        index %= len(computes)
        base = overlap_timeline(computes, comms)
        slowed = list(computes)
        slowed[index] += delta
        assert (overlap_timeline(slowed, comms).critical_path
                >= base.critical_path)

    @given(
        times=st.lists(
            st.tuples(st.floats(0.0, 5.0), st.floats(0.0, 5.0)),
            min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_overlap_never_beats_compute_or_comm_alone(self, times):
        computes = [c for c, _ in times]
        comms = [m for _, m in times]
        tl = overlap_timeline(computes, comms)
        assert tl.critical_path >= sum(computes) - 1e-12
        assert tl.critical_path >= sum(comms) - 1e-12
        assert tl.critical_path <= sum(computes) + sum(comms) + 1e-12
        assert tl.hidden_comm >= -1e-12


class TestIterationTimeEquivalence:
    def test_no_bucket_stats_is_the_sequential_sum_bit_exact(self):
        stats = _bucket_stats([12345.0])[0]
        profile = ComputeProfile(0.13, 35.2e6)
        timing = iteration_time(stats, ETHERNET, profile, model_parameters=1000)
        expected = (profile.compute_time_per_update
                    + communication_time(stats, ETHERNET,
                                         profile.volume_scale(1000)))
        assert timing.total == expected  # bit-exact, not approx
        assert timing.hidden_comm_time == 0.0
        assert timing.timeline is None

    def test_fusing_all_buckets_reproduces_flat_timing_bit_exact(self):
        """One merged bucket cannot overlap anything: the overlap model must
        reproduce the sequential ``compute + comm`` sum exactly."""
        stats = _bucket_stats([5000.0])[0]
        profile = ComputeProfile(0.13, 35.2e6)
        flat = iteration_time(stats, ETHERNET, profile, model_parameters=1000)
        fused = iteration_time(stats, ETHERNET, profile, model_parameters=1000,
                               bucket_stats=[stats], bucket_sizes=[1000])
        assert fused.total == flat.total
        assert fused.hidden_comm_time == 0.0

    def test_overlap_shortens_a_multi_bucket_iteration(self):
        per_bucket = _bucket_stats([400.0, 400.0, 200.0])
        merged = CommStats.merged(NUM_WORKERS, per_bucket)
        profile = ComputeProfile(0.5, 1000)
        sequential = iteration_time(merged, ETHERNET, profile,
                                    model_parameters=1000)
        overlapped = iteration_time(merged, ETHERNET, profile,
                                    model_parameters=1000,
                                    bucket_stats=per_bucket,
                                    bucket_sizes=[400, 400, 200])
        assert overlapped.communication_time == pytest.approx(
            sequential.communication_time)
        assert overlapped.total < sequential.total
        assert overlapped.hidden_comm_time > 0.0
        assert overlapped.total == pytest.approx(
            sequential.total - overlapped.hidden_comm_time)

    def test_forward_and_optimiser_time_never_overlaps(self):
        """Only the backward fraction hides communication: with
        backward_fraction=0 the overlap model must degrade to sequential."""
        per_bucket = _bucket_stats([400.0, 200.0])
        merged = CommStats.merged(NUM_WORKERS, per_bucket)
        profile = ComputeProfile(0.5, 1000, backward_fraction=0.0)
        sequential = iteration_time(merged, ETHERNET, profile,
                                    model_parameters=1000)
        overlapped = iteration_time(merged, ETHERNET, profile,
                                    model_parameters=1000,
                                    bucket_stats=per_bucket,
                                    bucket_sizes=[600, 400])
        assert overlapped.total == pytest.approx(sequential.total)
        assert overlapped.hidden_comm_time == pytest.approx(0.0)

    def test_mismatched_bucket_lists_raise(self):
        stats = _bucket_stats([100.0, 100.0])
        profile = ComputeProfile(0.1, 1e6)
        with pytest.raises(ValueError):
            iteration_time(stats[0], ETHERNET, profile,
                           bucket_stats=stats, bucket_sizes=[10])
        with pytest.raises(ValueError):
            iteration_time(stats[0], ETHERNET, profile, bucket_stats=stats)


class TestStragglerComposition:
    """Satellite: FaultPlan ``compute_factors`` compose with the overlap
    model, not just with the flat ``compute + comm`` sum."""

    def test_straggler_scales_every_backward_slice(self):
        fault_plan = FaultPlan(seed=3, straggler_rate=1.0,
                               straggler_slowdown=3.0)
        factors = fault_plan.straggler_factors(0, NUM_WORKERS)
        slowdown = max(factors)
        assert slowdown > 1.0  # rate 1.0 guarantees a straggler

        per_bucket = _bucket_stats([400.0, 400.0, 200.0])
        merged = CommStats.merged(NUM_WORKERS, per_bucket)
        profile = ComputeProfile(0.5, 1000)
        kwargs = dict(model_parameters=1000, bucket_stats=per_bucket,
                      bucket_sizes=[400, 400, 200])
        fast = iteration_time(merged, ETHERNET, profile, **kwargs)
        slow = iteration_time(merged, ETHERNET, profile,
                              compute_factors=factors, **kwargs)
        # Synchronous training waits for the slowest worker, in every slice.
        assert slow.compute_time == pytest.approx(
            profile.compute_time_per_update * slowdown)
        assert slow.timeline.backward_total == pytest.approx(
            fast.timeline.backward_total * slowdown)
        assert slow.timeline.compute_times == pytest.approx(
            tuple(t * slowdown for t in fast.timeline.compute_times))
        # Communication is untouched; the straggler only slows compute.
        assert slow.communication_time == pytest.approx(
            fast.communication_time)
        assert slow.total > fast.total

    def test_straggler_can_hide_more_communication(self):
        """A slower backward pass leaves more room to hide exchanges: the
        iteration gets slower overall, but the hidden share grows."""
        per_bucket = _bucket_stats([400.0, 400.0, 200.0])
        merged = CommStats.merged(NUM_WORKERS, per_bucket)
        profile = ComputeProfile(0.5, 1000)
        kwargs = dict(model_parameters=1000, bucket_stats=per_bucket,
                      bucket_sizes=[400, 400, 200])
        fast = iteration_time(merged, ETHERNET, profile, **kwargs)
        slow = iteration_time(merged, ETHERNET, profile,
                              compute_factors=[1.0, 4.0, 1.0, 1.0], **kwargs)
        assert slow.hidden_comm_time >= fast.hidden_comm_time - 1e-12
        assert slow.total > fast.total


class TestAutoPlanDeterminism:
    """``buckets=auto`` must plan the identical layout for a fixed
    seed/profile — the plan is a pure function of (model, cluster,
    network, compute profile)."""

    SPEC = "spardl?density=0.05&buckets=auto"

    def _plan(self):
        model = build_mlp(20, [32, 16], 4, seed=0)
        sync = make(self.SPEC, SimulatedCluster(NUM_WORKERS), model=model,
                    network=ETHERNET,
                    compute_profile=ComputeProfile(0.13, 35.2e6))
        return sync.fusion_plan

    def test_identical_plans_across_builds(self):
        first, second = self._plan(), self._plan()
        assert first.groups == second.groups
        assert first.sizes == second.sizes
        assert first.fit.alpha == second.fit.alpha
        assert first.fit.beta == second.fit.beta
        assert (first.predicted.critical_path
                == second.predicted.critical_path)

    def test_plan_partitions_the_model(self):
        model = build_mlp(20, [32, 16], 4, seed=0)
        plan = self._plan()
        assert sum(plan.sizes) == model.num_parameters()
        assert plan.total_elements == model.num_parameters()

    def test_trainer_reports_hidden_communication(self):
        """End to end: an auto-bucketed trainer run reports hidden
        communication and a strictly shorter total than compute + comm."""
        from repro.api import make_factory
        from repro.training.cases import get_case
        from repro.training.trainer import DistributedTrainer, TrainerConfig

        case = get_case(5)
        train, eval_set = case.build_datasets(num_samples=48, seed=0)
        trainer = DistributedTrainer(
            SimulatedCluster(NUM_WORKERS),
            make_factory(self.SPEC),
            case.build_model, train, eval_set,
            config=TrainerConfig(batch_size=8, seed=0),
            network=ETHERNET,
            compute_profile=case.compute_profile,
        )
        assert trainer.synchronizer.fusion_plan is not None
        trainer.train_epoch(0, evaluate=False)
        records = trainer.history.iterations
        assert records
        assert all(r.hidden_comm_time > 0.0 for r in records)
        for r in records:
            assert r.total_time == pytest.approx(
                r.compute_time + r.communication_time - r.hidden_comm_time)
        epoch = trainer.history.epochs[0]
        assert epoch.hidden_comm_time == pytest.approx(
            sum(r.hidden_comm_time for r in records))
        assert epoch.epoch_time < epoch.compute_time + epoch.communication_time

    def test_overlap_disabled_reproduces_sequential_trainer_timing(self):
        """TrainerConfig(overlap_comm=False) restores compute + comm."""
        from repro.api import make_factory
        from repro.training.cases import get_case
        from repro.training.trainer import DistributedTrainer, TrainerConfig

        case = get_case(5)
        train, eval_set = case.build_datasets(num_samples=48, seed=0)
        trainer = DistributedTrainer(
            SimulatedCluster(NUM_WORKERS),
            make_factory(self.SPEC),
            case.build_model, train, eval_set,
            config=TrainerConfig(batch_size=8, seed=0, overlap_comm=False),
            network=ETHERNET,
            compute_profile=case.compute_profile,
        )
        trainer.train_epoch(0, evaluate=False)
        for r in trainer.history.iterations:
            assert r.hidden_comm_time == 0.0
            assert r.total_time == r.compute_time + r.communication_time
