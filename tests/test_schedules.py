"""K-schedules: unit behaviour and end-to-end use across every method."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import make
from repro.comm.cluster import SimulatedCluster
from repro.core.base import resolve_k
from repro.core.pipeline import SyncSession
from repro.core.schedules import (
    AdaptiveSchedule,
    ConstantSchedule,
    WarmupSchedule,
    coerce_schedule,
    parse_schedule,
)

NUM_ELEMENTS = 800


class TestConstantSchedule:
    @pytest.mark.parametrize("kwargs", [{"k": 17}, {"density": 0.05}])
    def test_matches_resolve_k(self, kwargs):
        schedule = ConstantSchedule(**kwargs)
        for iteration in (0, 1, 100):
            assert schedule.resolve(iteration, NUM_ELEMENTS) == resolve_k(
                NUM_ELEMENTS, kwargs.get("k"), kwargs.get("density"))

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantSchedule()
        with pytest.raises(ValueError):
            ConstantSchedule(k=5, density=0.1)
        with pytest.raises(ValueError):
            ConstantSchedule(density=1.5)


class TestWarmupSchedule:
    def test_ramps_from_start_density_to_target(self):
        schedule = WarmupSchedule(4, density=0.01)
        ks = [schedule.resolve(it, NUM_ELEMENTS) for it in range(7)]
        # Iteration 0 selects at DGC's start density (0.25), then decays
        # geometrically, reaching the target at warmup_steps and staying.
        assert ks[0] == int(round(0.25 * NUM_ELEMENTS))
        assert all(a >= b for a, b in zip(ks, ks[1:]))
        target = resolve_k(NUM_ELEMENTS, None, 0.01)
        assert ks[4] == target
        assert ks[5] == target and ks[6] == target

    def test_never_ramps_upward(self):
        # Target denser than the start: the ramp collapses to constant.
        schedule = WarmupSchedule(3, density=0.5, start_density=0.25)
        ks = [schedule.resolve(it, NUM_ELEMENTS) for it in range(5)]
        assert set(ks) == {resolve_k(NUM_ELEMENTS, None, 0.5)}

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupSchedule(0, density=0.01)
        with pytest.raises(ValueError):
            WarmupSchedule(3, density=0.01, start_density=1.5)


class TestAdaptiveSchedule:
    def test_shrinks_k_when_observed_nnz_exceeds_budget(self):
        """With (mostly) disjoint per-worker selections, merged nnz ~ P*k,
        so the controller must shrink k toward budget/P."""
        num_workers = 8
        sync = make("topka?k=64&schedule=adaptive",
                    SimulatedCluster(num_workers), num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        for iteration in range(12):
            grads = {w: np.random.default_rng(50 * iteration + w).normal(size=NUM_ELEMENTS)
                     for w in range(num_workers)}
            result = session.step(grads)
        ks = session.k_history
        assert ks[0] == 64
        assert ks[-1] < ks[0]
        # The observed global nnz must have been pulled toward the budget.
        assert result.info["final_nnz"] <= 3 * 64

    def test_ignores_dense_fallback_steps(self):
        """A dense-fallback step reports final_nnz of the exact dense sum,
        not a merged selection; retuning from it would oscillate the budget
        across the crossover forever."""
        num_elements = 10_000
        sync = make("spardl?density=0.6&schedule=adaptive",
                    SimulatedCluster(4), num_elements=num_elements)
        session = SyncSession(sync)
        for iteration in range(4):
            grads = {w: np.random.default_rng(9 * iteration + w).normal(size=num_elements)
                     for w in range(4)}
            result = session.step(grads)
            assert result.info["dense_fallback"] is True
        assert session.k_history == [6000] * 4  # never retuned

    def test_clamps_step_change_to_2x(self):
        schedule = AdaptiveSchedule(k=100)

        class FakeResult:
            info = {"final_nnz": 100000}
            global_gradients = {0: np.zeros(NUM_ELEMENTS)}

        assert schedule.resolve(0, NUM_ELEMENTS) == 100
        schedule.observe(0, 100, FakeResult())
        assert schedule.resolve(1, NUM_ELEMENTS) == 50  # halved, not collapsed

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSchedule(k=10, gain=0.0)


class TestSpecGrammar:
    @pytest.mark.parametrize("spec,cls", [
        ("constant", ConstantSchedule),
        ("warmup:5", WarmupSchedule),
        ("warmup:5:0.5", WarmupSchedule),
        ("adaptive", AdaptiveSchedule),
        ("adaptive:0.25", AdaptiveSchedule),
    ])
    def test_parse_and_roundtrip(self, spec, cls):
        schedule = parse_schedule(spec, density=0.01)
        assert isinstance(schedule, cls)
        assert schedule.spec() == spec
        again = parse_schedule(schedule.spec(), density=0.01)
        assert type(again) is type(schedule)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            parse_schedule("cosine:5", k=10)

    def test_coerce_rejects_double_target(self):
        with pytest.raises(ValueError, match="carries its own sparsity"):
            coerce_schedule(ConstantSchedule(k=5), k=7)


class TestSchedulesAcrossMethods:
    """Satellite requirement: k-schedules across methods at P in {3, 4, 5, 8}."""

    @pytest.mark.parametrize("num_workers", [3, 4, 5, 8])
    @pytest.mark.parametrize("method", ["spardl", "ok-topk", "topka", "topkdsa", "gtopk"])
    def test_warmup_schedule_runs_and_converges_to_target(self, method, num_workers):
        if method == "gtopk" and (num_workers & (num_workers - 1)) != 0:
            pytest.skip("gTopk needs a power-of-two worker count")
        warmup = 3
        sync = make(f"{method}?density=0.02&schedule=warmup:{warmup}",
                    SimulatedCluster(num_workers), num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        for iteration in range(warmup + 2):
            grads = {w: np.random.default_rng(10 * iteration + w).normal(size=NUM_ELEMENTS)
                     for w in range(num_workers)}
            result = session.step(grads)
            assert result.is_consistent, f"{method} diverged at iteration {iteration}"
        ks = session.k_history
        target = resolve_k(NUM_ELEMENTS, None, 0.02)
        assert all(a >= b for a, b in zip(ks, ks[1:]))
        assert ks[0] > target  # warm-up really started denser
        assert ks[-1] == target  # ... and landed on the configured sparsity

    @pytest.mark.parametrize("num_workers", [3, 4, 5, 8])
    def test_spardl_warmup_preserves_gres_conservation(self, num_workers):
        sync = make("spardl?density=0.02&schedule=warmup:3",
                    SimulatedCluster(num_workers), num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        grads = {w: np.random.default_rng(w).normal(size=NUM_ELEMENTS)
                 for w in range(num_workers)}
        result = session.step(grads)
        reconstructed = result.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(reconstructed, sum(grads.values()),
                                   rtol=1e-9, atol=1e-12)

    def test_spardl_warmup_first_step_may_use_dense_fallback(self):
        """A DGC warm-up that starts above the crossover density rides the
        dense fallback for its first steps, then drops to the sparse path."""
        sync = make("spardl?density=0.01&schedule=warmup:4:0.9",
                    SimulatedCluster(4), num_elements=NUM_ELEMENTS)
        session = SyncSession(sync)
        fallbacks = []
        for iteration in range(5):
            grads = {w: np.random.default_rng(iteration * 7 + w).normal(size=NUM_ELEMENTS)
                     for w in range(4)}
            result = session.step(grads)
            fallbacks.append(result.info["dense_fallback"])
        assert fallbacks[0] is True
        assert fallbacks[-1] is False
