"""Unit tests for residual collection policies (Section III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.residuals import ResidualManager, ResidualPolicy, ResidualStore
from repro.sparse.vector import SparseGradient


class TestResidualPolicy:
    def test_coerce_from_string(self):
        assert ResidualPolicy.coerce("global") is ResidualPolicy.GLOBAL
        assert ResidualPolicy.coerce("PARTIAL") is ResidualPolicy.PARTIAL
        assert ResidualPolicy.coerce(ResidualPolicy.LOCAL) is ResidualPolicy.LOCAL

    def test_coerce_invalid(self):
        with pytest.raises(ValueError):
            ResidualPolicy.coerce("bogus")


class TestResidualStore:
    def test_add_dense_with_offset(self):
        store = ResidualStore(6)
        store.add_dense(np.array([1.0, 2.0]), offset=2)
        np.testing.assert_allclose(store.peek(), [0, 0, 1, 2, 0, 0])

    def test_add_sparse_with_share(self):
        store = ResidualStore(4)
        sparse = SparseGradient(np.array([1, 3]), np.array([2.0, 4.0]), 4)
        store.add_sparse(sparse, share=0.5)
        np.testing.assert_allclose(store.peek(), [0, 1, 0, 2])

    def test_drain_resets(self):
        store = ResidualStore(3)
        store.add_dense(np.ones(3))
        drained = store.drain()
        np.testing.assert_allclose(drained, [1, 1, 1])
        np.testing.assert_allclose(store.peek(), [0, 0, 0])

    def test_accumulates_across_adds(self):
        store = ResidualStore(2)
        store.add_dense(np.array([1.0, 0.0]))
        store.add_dense(np.array([2.0, 1.0]))
        np.testing.assert_allclose(store.peek(), [3, 1])

    def test_norm(self):
        store = ResidualStore(2)
        store.add_dense(np.array([3.0, 4.0]))
        assert store.norm() == pytest.approx(5.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ResidualStore(0)


class TestResidualManagerApply:
    def test_apply_adds_and_clears(self):
        manager = ResidualManager(2, 3, ResidualPolicy.GLOBAL)
        manager.collect_local(0, np.array([1.0, 0.0, 0.0]))
        corrected = manager.apply({0: np.zeros(3), 1: np.ones(3)})
        np.testing.assert_allclose(corrected[0], [1, 0, 0])
        np.testing.assert_allclose(corrected[1], [1, 1, 1])
        # second apply returns the raw gradient: stores were drained
        corrected = manager.apply({0: np.zeros(3), 1: np.zeros(3)})
        np.testing.assert_allclose(corrected[0], [0, 0, 0])


class TestResidualManagerPolicies:
    def _dropped(self):
        return SparseGradient(np.array([1]), np.array([5.0]), 4)

    def test_global_collects_procedure_discards_immediately(self):
        manager = ResidualManager(2, 4, ResidualPolicy.GLOBAL)
        manager.collect_procedure(0, self._dropped())
        np.testing.assert_allclose(manager.store(0).peek(), [0, 5, 0, 0])

    def test_partial_defers_until_finalize(self):
        manager = ResidualManager(2, 4, ResidualPolicy.PARTIAL)
        manager.collect_procedure(0, self._dropped())
        np.testing.assert_allclose(manager.store(0).peek(), [0, 0, 0, 0])
        # Index 1 absent from the final gradient -> end-procedure residual, kept.
        manager.finalize(final_indices=[2, 3])
        np.testing.assert_allclose(manager.store(0).peek(), [0, 5, 0, 0])

    def test_partial_drops_in_procedure_residuals(self):
        manager = ResidualManager(2, 4, ResidualPolicy.PARTIAL)
        manager.collect_procedure(0, self._dropped())
        # Index 1 present in the final gradient -> in-procedure residual, lost.
        manager.finalize(final_indices=[1, 2])
        np.testing.assert_allclose(manager.store(0).peek(), [0, 0, 0, 0])

    def test_partial_finalize_accepts_ndarray(self):
        manager = ResidualManager(2, 4, ResidualPolicy.PARTIAL)
        manager.collect_procedure(0, self._dropped())
        manager.finalize(final_indices=np.array([2, 3], dtype=np.int64))
        np.testing.assert_allclose(manager.store(0).peek(), [0, 5, 0, 0])

    def test_partial_finalize_accepts_duplicated_final_indices(self):
        manager = ResidualManager(2, 4, ResidualPolicy.PARTIAL)
        manager.collect_procedure(0, self._dropped())
        manager.finalize(final_indices=[1, 1, 2, 2])
        np.testing.assert_allclose(manager.store(0).peek(), [0, 0, 0, 0])

    def test_partial_finalize_with_none_keeps_everything(self):
        manager = ResidualManager(2, 4, ResidualPolicy.PARTIAL)
        manager.collect_procedure(0, self._dropped())
        manager.finalize(final_indices=None)
        np.testing.assert_allclose(manager.store(0).peek(), [0, 5, 0, 0])

    def test_local_ignores_procedure_discards(self):
        manager = ResidualManager(2, 4, ResidualPolicy.LOCAL)
        manager.collect_procedure(0, self._dropped())
        manager.finalize(final_indices=[])
        np.testing.assert_allclose(manager.store(0).peek(), [0, 0, 0, 0])

    def test_local_keeps_local_discards(self):
        manager = ResidualManager(2, 4, ResidualPolicy.LOCAL)
        manager.collect_local(0, np.array([0.0, 1.0, 0.0, 0.0]))
        np.testing.assert_allclose(manager.store(0).peek(), [0, 1, 0, 0])

    def test_none_ignores_everything(self):
        manager = ResidualManager(2, 4, ResidualPolicy.NONE)
        manager.collect_local(0, np.ones(4))
        manager.collect_procedure(0, self._dropped())
        manager.finalize(final_indices=[])
        np.testing.assert_allclose(manager.total_residual(), np.zeros(4))

    def test_share_is_applied(self):
        manager = ResidualManager(2, 4, ResidualPolicy.GLOBAL)
        manager.collect_procedure(1, self._dropped(), share=0.25)
        np.testing.assert_allclose(manager.store(1).peek(), [0, 1.25, 0, 0])

    def test_total_residual_sums_workers(self):
        manager = ResidualManager(2, 4, ResidualPolicy.GLOBAL)
        manager.collect_local(0, np.array([1.0, 0, 0, 0]))
        manager.collect_local(1, np.array([0.0, 2.0, 0, 0]))
        np.testing.assert_allclose(manager.total_residual(), [1, 2, 0, 0])

    def test_residual_norms(self):
        manager = ResidualManager(2, 4, ResidualPolicy.GLOBAL)
        manager.collect_local(0, np.array([3.0, 4.0, 0, 0]))
        norms = manager.residual_norms()
        assert norms[0] == pytest.approx(5.0)
        assert norms[1] == 0.0

    def test_string_policy_accepted(self):
        manager = ResidualManager(1, 4, "partial")
        assert manager.policy is ResidualPolicy.PARTIAL

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ResidualManager(0, 4)
