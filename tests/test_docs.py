"""The documented code examples must keep running.

Runs every ``>>>`` doctest embedded in the top-level README and the docs
pages, so the commands and snippets the documentation shows a new
contributor cannot silently rot.  CI additionally executes
``examples/quickstart.py`` in a dedicated docs job.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    "README.md",
    "docs/architecture.md",
    "docs/configuration.md",
    "docs/api.md",
    "docs/observability.md",
]


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_doc_file_exists(relpath):
    assert (REPO_ROOT / relpath).is_file(), f"{relpath} is missing"


@pytest.mark.parametrize("relpath", DOC_FILES)
def test_doc_examples_run(relpath):
    results = doctest.testfile(str(REPO_ROOT / relpath),
                               module_relative=False, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest example(s) in {relpath} failed")


def test_readme_documents_the_bench_trajectory():
    readme = (REPO_ROOT / "README.md").read_text()
    for artifact in ("BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR3.json",
                     "BENCH_PR4.json", "BENCH_PR5.json", "BENCH_PR6.json",
                     "BENCH_PR7.json", "BENCH_PR8.json", "BENCH_PR9.json",
                     "BENCH_PR10.json"):
        assert artifact in readme, f"README must reference {artifact}"
        assert (REPO_ROOT / artifact).is_file(), f"{artifact} is missing"


def test_configuration_doc_covers_every_config_field():
    import dataclasses

    from repro.core.config import SparDLConfig

    doc = (REPO_ROOT / "docs" / "configuration.md").read_text()
    for field in dataclasses.fields(SparDLConfig):
        assert f"`{field.name}`" in doc, (
            f"docs/configuration.md does not document SparDLConfig.{field.name}")


def test_api_doc_covers_every_spec_key_and_schedule_kind():
    from repro.api import _SPEC_KEYS
    from repro.core.schedules import SCHEDULE_KINDS

    doc = (REPO_ROOT / "docs" / "api.md").read_text()
    for key in _SPEC_KEYS:
        assert f"`{key}`" in doc, f"docs/api.md does not document spec key {key!r}"
    for kind in SCHEDULE_KINDS:
        assert kind in doc, f"docs/api.md does not document schedule kind {kind!r}"
    for buckets_mode in ("flat", "layer", "size:N", "auto",
                         "auto:mgwfbp", "auto:asc"):
        assert buckets_mode in doc, (
            f"docs/api.md does not document buckets mode {buckets_mode!r}")


def test_configuration_doc_covers_schedule_grammar():
    doc = (REPO_ROOT / "docs" / "configuration.md").read_text()
    for token in ("warmup", "adaptive", "KSchedule", "buckets"):
        assert token in doc, (
            f"docs/configuration.md does not mention {token!r}")


def test_api_doc_covers_quantization():
    doc = (REPO_ROOT / "docs" / "api.md").read_text()
    for token in ("`bits`", "QuantizedCompressor", "Error feedback",
                  "quantized_complexity"):
        assert token in doc, f"docs/api.md does not mention {token!r}"


def test_configuration_doc_covers_quantization():
    doc = (REPO_ROOT / "docs" / "configuration.md").read_text()
    for token in ("`num_bits`", "QuantizedCompressor", "BENCH_PR5.json"):
        assert token in doc, f"docs/configuration.md does not mention {token!r}"


def test_configuration_doc_covers_every_fault_plan_field():
    import dataclasses

    from repro.comm.faults import FaultPlan

    doc = (REPO_ROOT / "docs" / "configuration.md").read_text()
    for field in dataclasses.fields(FaultPlan):
        assert f"`{field.name}`" in doc, (
            f"docs/configuration.md does not document FaultPlan.{field.name}")
    for token in ("install_fault_plan", "fold_lost_messages",
                  "remap_workers", "BENCH_PR6.json"):
        assert token in doc, (
            f"docs/configuration.md does not mention {token!r}")


def test_api_doc_covers_fault_layer():
    doc = (REPO_ROOT / "docs" / "api.md").read_text()
    for token in ("FaultPlan", "RetryPolicy", "MembershipEvent",
                  "poll_membership", "HeterogeneousNetwork",
                  "fault_extra_rounds", "BENCH_PR6.json"):
        assert token in doc, f"docs/api.md does not mention {token!r}"


def test_api_doc_covers_overlap_and_fusion():
    doc = (REPO_ROOT / "docs" / "api.md").read_text()
    for token in ("MGWFBP", "ASC", "fusion_plan", "AlphaBetaFit",
                  "hidden_comm_time", "overlap_comm", "compute_profile",
                  "BENCH_PR8.json"):
        assert token in doc, f"docs/api.md does not mention {token!r}"


def test_architecture_doc_covers_overlap_and_fusion():
    doc = (REPO_ROOT / "docs" / "architecture.md").read_text()
    for token in ("Overlap & bucket fusion", "overlap_timeline",
                  "ComputeProfile", "AlphaBetaFit", "benchmark_transport",
                  "MGWFBP", "ASC", "FusionPlan", "hidden_comm",
                  "BENCH_PR8.json"):
        assert token in doc, f"docs/architecture.md does not mention {token!r}"


def test_configuration_doc_covers_overlap_and_fusion():
    doc = (REPO_ROOT / "docs" / "configuration.md").read_text()
    for token in ("buckets=auto", "overlap_comm", "ComputeProfile",
                  "hidden_comm_time", "BENCH_PR8.json"):
        assert token in doc, (
            f"docs/configuration.md does not mention {token!r}")


def test_api_doc_covers_momentum_and_hybrid():
    doc = (REPO_ROOT / "docs" / "api.md").read_text()
    for token in ("`momentum`", "`hybrid`", "dense<SIZE", "CompressorStack",
                  "momentum_correction", "velocity", "2 * n * (P - 1)",
                  "BENCH_PR10.json"):
        assert token in doc, f"docs/api.md does not mention {token!r}"


def test_configuration_doc_covers_momentum():
    doc = (REPO_ROOT / "docs" / "configuration.md").read_text()
    for token in ("`momentum`", "momentum_correction",
                  "enable_momentum_correction", "velocity",
                  "BENCH_PR10.json"):
        assert token in doc, (
            f"docs/configuration.md does not mention {token!r}")


def test_observability_doc_covers_tracing():
    doc = (REPO_ROOT / "docs" / "observability.md").read_text()
    for token in ("TraceLevel", "Tracer", "MetricsRegistry",
                  "export_chrome", "validate_chrome_trace", "attach_tracer",
                  "`off`", "`steps`", "`comm`", "hook_errors",
                  "hidden_comm_time", "BENCH_PR9.json"):
        assert token in doc, (
            f"docs/observability.md does not mention {token!r}")


def test_api_doc_covers_tracing():
    doc = (REPO_ROOT / "docs" / "api.md").read_text()
    for token in ("`trace`", "trace=comm", "repro.obs",
                  "docs/observability.md"):
        assert token in doc, f"docs/api.md does not mention {token!r}"
