"""Unit tests for block layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.blocks import BlockLayout, block_bounds
from repro.sparse.vector import SparseGradient


class TestBlockBounds:
    def test_even_split(self):
        assert block_bounds(10, 5) == [(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]

    def test_remainder_goes_to_early_blocks(self):
        bounds = block_bounds(10, 3)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [4, 3, 3]

    def test_covers_whole_range(self):
        bounds = block_bounds(17, 6)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 17
        for (prev_lo, prev_hi), (lo, hi) in zip(bounds, bounds[1:]):
            assert prev_hi == lo

    def test_more_blocks_than_elements(self):
        bounds = block_bounds(2, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [1, 1, 0, 0]

    def test_invalid_num_blocks(self):
        with pytest.raises(ValueError):
            block_bounds(10, 0)


class TestBlockLayout:
    def test_block_of(self):
        layout = BlockLayout(10, 5)
        assert layout.block_of(0) == 0
        assert layout.block_of(9) == 4
        assert layout.block_of(4) == 2

    def test_block_of_out_of_range(self):
        layout = BlockLayout(10, 5)
        with pytest.raises(ValueError):
            layout.block_of(10)

    def test_block_size(self):
        layout = BlockLayout(10, 3)
        assert [layout.block_size(b) for b in range(3)] == [4, 3, 3]

    def test_slice_dense(self):
        layout = BlockLayout(6, 3)
        dense = np.arange(6, dtype=float)
        np.testing.assert_array_equal(layout.slice_dense(dense, 1), [2.0, 3.0])

    def test_sparse_block_from_dense_topk(self):
        layout = BlockLayout(8, 2)
        dense = np.array([1.0, -9.0, 2.0, 0.5, 7.0, 0.1, -8.0, 0.2])
        selected, residual, lo = layout.sparse_block_from_dense(dense, 1, 2)
        assert lo == 4
        assert set(selected.indices.tolist()) == {4, 6}
        assert residual[0] == 0.0  # positions 4 and 6 zeroed in the block-local residual

    def test_restrict(self):
        layout = BlockLayout(8, 4)
        sparse = SparseGradient(np.array([0, 3, 6]), np.array([1.0, 2.0, 3.0]), 8)
        assert layout.restrict(sparse, 3).index_set() == {6}

    def test_concat_blocks_reassembles(self):
        layout = BlockLayout(9, 3)
        dense = np.random.default_rng(0).normal(size=9)
        pieces = [SparseGradient.from_dense(dense[lo:hi], offset=lo, length=9)
                  for _, lo, hi in layout.iter_blocks()]
        merged = layout.concat_blocks(pieces)
        np.testing.assert_allclose(merged.to_dense(), dense)

    def test_concat_empty(self):
        layout = BlockLayout(9, 3)
        assert layout.concat_blocks([]).nnz == 0

    def test_iter_blocks_order(self):
        layout = BlockLayout(10, 4)
        blocks = list(layout.iter_blocks())
        assert [b for b, _, _ in blocks] == [0, 1, 2, 3]
        assert blocks[0][1] == 0
        assert blocks[-1][2] == 10

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            BlockLayout(10, 0)
