"""Unit tests for the synchroniser registry / factory."""

from __future__ import annotations

import pytest

from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.baselines.gtopk import GTopkSynchronizer
from repro.baselines.ok_topk import OkTopkSynchronizer
from repro.baselines.registry import SYNCHRONIZER_NAMES, available_methods, make_synchronizer
from repro.baselines.topk_a import TopkASynchronizer
from repro.baselines.topk_dsa import TopkDSASynchronizer
from repro.comm.cluster import SimulatedCluster
from repro.core.spardl import SparDLSynchronizer


class TestRegistry:
    def test_canonical_names(self):
        assert "SparDL" in SYNCHRONIZER_NAMES
        assert "Ok-Topk" in SYNCHRONIZER_NAMES

    @pytest.mark.parametrize("name,cls", [
        ("SparDL", SparDLSynchronizer),
        ("Ok-Topk", OkTopkSynchronizer),
        ("oktopk", OkTopkSynchronizer),
        ("TopkA", TopkASynchronizer),
        ("topk_dsa", TopkDSASynchronizer),
        ("gTopk", GTopkSynchronizer),
        ("dense", DenseAllReduceSynchronizer),
    ])
    def test_factory_builds_right_class(self, name, cls):
        cluster = SimulatedCluster(8)
        sync = make_synchronizer(name, cluster, 100, density=0.1)
        assert isinstance(sync, cls)

    def test_unknown_name_raises(self):
        cluster = SimulatedCluster(4)
        with pytest.raises(ValueError):
            make_synchronizer("nope", cluster, 100, k=10)

    def test_spardl_kwargs_forwarded(self):
        cluster = SimulatedCluster(8)
        sync = make_synchronizer("SparDL", cluster, 100, k=16, num_teams=4, sag_mode="rsag")
        assert isinstance(sync, SparDLSynchronizer)
        assert sync.num_teams == 4

    def test_available_methods_excludes_gtopk_for_non_power_of_two(self):
        assert "gTopk" not in available_methods(14)
        assert "gTopk" in available_methods(8)

    def test_available_methods_dense_flag(self):
        assert "Dense" in available_methods(8, include_dense=True)
        assert "Dense" not in available_methods(8)
