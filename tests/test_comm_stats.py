"""Unit tests for communication statistics and the alpha-beta timing."""

from __future__ import annotations

import pytest

from repro.comm.network import ETHERNET, PERFECT, RDMA, NetworkProfile
from repro.comm.stats import CommStats


class TestCommStats:
    def test_record_round_accumulates(self):
        stats = CommStats(num_workers=3)
        stats.record_round([(0, 1, 10.0), (2, 1, 5.0)])
        stats.record_round([(1, 0, 3.0)])
        assert stats.rounds == 2
        assert stats.total_messages == 3
        assert stats.received_per_worker == [3.0, 15.0, 0.0]
        assert stats.max_received == 15.0
        assert stats.per_round_max_received == [15.0, 3.0]

    def test_total_and_mean_volume(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 4.0), (1, 0, 2.0)])
        assert stats.total_volume == 6.0
        assert stats.mean_received == 3.0

    def test_negative_size_rejected(self):
        stats = CommStats(num_workers=2)
        with pytest.raises(ValueError):
            stats.record_round([(0, 1, -1.0)])

    def test_rank_out_of_range_rejected(self):
        stats = CommStats(num_workers=2)
        with pytest.raises(ValueError):
            stats.record_round([(0, 5, 1.0)])

    def test_merge(self):
        a = CommStats(num_workers=2)
        a.record_round([(0, 1, 4.0)])
        b = CommStats(num_workers=2)
        b.record_round([(1, 0, 2.0)])
        a.merge(b)
        assert a.rounds == 2
        assert a.received_per_worker == [2.0, 4.0]

    def test_merge_size_mismatch(self):
        a = CommStats(num_workers=2)
        b = CommStats(num_workers=3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_copy_is_independent(self):
        a = CommStats(num_workers=2)
        a.record_round([(0, 1, 4.0)])
        b = a.copy()
        b.record_round([(0, 1, 4.0)])
        assert a.rounds == 1
        assert b.rounds == 2

    def test_simulated_time_uses_per_round_maxima(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 10.0)])
        stats.record_round([(1, 0, 20.0)])
        network = NetworkProfile("test", alpha=1.0, beta=0.1)
        assert stats.simulated_time(network) == pytest.approx(2.0 + 0.1 * 30.0)

    def test_aggregate_time_uses_max_received(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 10.0)])
        stats.record_round([(1, 0, 20.0)])
        network = NetworkProfile("test", alpha=1.0, beta=0.1)
        assert stats.aggregate_time(network) == pytest.approx(2.0 + 0.1 * 20.0)


class TestNetworkProfile:
    def test_round_and_total_time(self):
        net = NetworkProfile("n", alpha=2.0, beta=0.5)
        assert net.round_time(10) == 7.0
        assert net.time(3, 10) == 11.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            NetworkProfile("bad", alpha=-1.0, beta=0.0)

    def test_scaled(self):
        net = ETHERNET.scaled(alpha_factor=0.5, beta_factor=2.0, name="custom")
        assert net.alpha == ETHERNET.alpha * 0.5
        assert net.beta == ETHERNET.beta * 2.0
        assert net.name == "custom"

    def test_builtin_profiles_ordering(self):
        # RDMA improves both latency and bandwidth over Ethernet.
        assert RDMA.alpha < ETHERNET.alpha
        assert RDMA.beta < ETHERNET.beta
        assert PERFECT.alpha == 0.0 and PERFECT.beta == 0.0
