"""Unit tests for communication statistics and the alpha-beta timing."""

from __future__ import annotations

import pytest

from repro.comm.network import ETHERNET, PERFECT, RDMA, NetworkProfile
from repro.comm.stats import CommStats


class TestCommStats:
    def test_record_round_accumulates(self):
        stats = CommStats(num_workers=3)
        stats.record_round([(0, 1, 10.0), (2, 1, 5.0)])
        stats.record_round([(1, 0, 3.0)])
        assert stats.rounds == 2
        assert stats.total_messages == 3
        assert stats.received_per_worker == [3.0, 15.0, 0.0]
        assert stats.max_received == 15.0
        assert stats.per_round_max_received == [15.0, 3.0]

    def test_total_and_mean_volume(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 4.0), (1, 0, 2.0)])
        assert stats.total_volume == 6.0
        assert stats.mean_received == 3.0

    def test_negative_size_rejected(self):
        stats = CommStats(num_workers=2)
        with pytest.raises(ValueError):
            stats.record_round([(0, 1, -1.0)])

    def test_rank_out_of_range_rejected(self):
        stats = CommStats(num_workers=2)
        with pytest.raises(ValueError):
            stats.record_round([(0, 5, 1.0)])

    def test_merge(self):
        a = CommStats(num_workers=2)
        a.record_round([(0, 1, 4.0)])
        b = CommStats(num_workers=2)
        b.record_round([(1, 0, 2.0)])
        a.merge(b)
        assert a.rounds == 2
        assert a.received_per_worker == [2.0, 4.0]

    def test_merge_size_mismatch(self):
        a = CommStats(num_workers=2)
        b = CommStats(num_workers=3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_copy_is_independent(self):
        a = CommStats(num_workers=2)
        a.record_round([(0, 1, 4.0)])
        b = a.copy()
        b.record_round([(0, 1, 4.0)])
        assert a.rounds == 1
        assert b.rounds == 2

    def test_simulated_time_uses_per_round_maxima(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 10.0)])
        stats.record_round([(1, 0, 20.0)])
        network = NetworkProfile("test", alpha=1.0, beta=0.1)
        assert stats.simulated_time(network) == pytest.approx(2.0 + 0.1 * 30.0)

    def test_aggregate_time_uses_max_received(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 10.0)])
        stats.record_round([(1, 0, 20.0)])
        network = NetworkProfile("test", alpha=1.0, beta=0.1)
        assert stats.aggregate_time(network) == pytest.approx(2.0 + 0.1 * 20.0)


class TestNetworkProfile:
    def test_round_and_total_time(self):
        net = NetworkProfile("n", alpha=2.0, beta=0.5)
        assert net.round_time(10) == 7.0
        assert net.time(3, 10) == 11.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            NetworkProfile("bad", alpha=-1.0, beta=0.0)

    def test_scaled(self):
        net = ETHERNET.scaled(alpha_factor=0.5, beta_factor=2.0, name="custom")
        assert net.alpha == ETHERNET.alpha * 0.5
        assert net.beta == ETHERNET.beta * 2.0
        assert net.name == "custom"

    def test_builtin_profiles_ordering(self):
        # RDMA improves both latency and bandwidth over Ethernet.
        assert RDMA.alpha < ETHERNET.alpha
        assert RDMA.beta < ETHERNET.beta
        assert PERFECT.alpha == 0.0 and PERFECT.beta == 0.0


# ---------------------------------------------------------------------------
# property-based merge/expand round-trips (hypothesis)
# ---------------------------------------------------------------------------
# Integer message sizes keep every accumulation exact, so the merged-equals-
# sum-of-parts properties can assert strict equality instead of approx.

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_P = 4  # fixed cluster size shared by every generated part


@st.composite
def comm_stats_parts(draw, max_parts=4, max_rounds=3, max_msgs=5):
    """A list of independently recorded CommStats windows of size ``_P``."""
    parts = []
    for _ in range(draw(st.integers(1, max_parts))):
        part = CommStats(num_workers=_P)
        for _ in range(draw(st.integers(0, max_rounds))):
            transfers = draw(st.lists(
                st.tuples(st.integers(0, _P - 1), st.integers(0, _P - 1),
                          st.integers(0, 100)),
                min_size=0, max_size=max_msgs))
            part.record_round([(s, d, float(size)) for s, d, size in transfers])
        part.dropped_messages = draw(st.integers(0, 3))
        part.retried_messages = draw(st.integers(0, 3))
        part.lost_messages = draw(st.integers(0, 3))
        part.fault_extra_rounds = draw(st.integers(0, 3))
        parts.append(part)
    return parts


class TestCommStatsProperties:
    @given(comm_stats_parts())
    @settings(max_examples=80, deadline=None)
    def test_merged_totals_equal_sum_of_parts(self, parts):
        total = CommStats.merged(_P, (part.copy() for part in parts))
        assert total.rounds == sum(p.rounds for p in parts)
        assert total.total_messages == sum(p.total_messages for p in parts)
        for w in range(_P):
            assert total.sent_per_worker[w] == sum(p.sent_per_worker[w] for p in parts)
            assert total.received_per_worker[w] == sum(p.received_per_worker[w]
                                                       for p in parts)
        assert total.dropped_messages == sum(p.dropped_messages for p in parts)
        assert total.retried_messages == sum(p.retried_messages for p in parts)
        assert total.lost_messages == sum(p.lost_messages for p in parts)
        assert total.fault_extra_rounds == sum(p.fault_extra_rounds for p in parts)
        assert total.total_volume == sum(p.total_volume for p in parts)

    @given(comm_stats_parts())
    @settings(max_examples=80, deadline=None)
    def test_merged_preserves_per_round_rows_in_order(self, parts):
        total = CommStats.merged(_P, (part.copy() for part in parts))
        expected_rows = [row for part in parts for row in part.per_round_received]
        assert total.per_round_received == expected_rows
        assert total.per_round_max_received == [
            value for part in parts for value in part.per_round_max_received]
        # The per-round series stays self-consistent after the merge.
        assert total.per_round_max_received == [
            max(row) if row else 0.0 for row in total.per_round_received]

    @given(comm_stats_parts())
    @settings(max_examples=60, deadline=None)
    def test_merged_rows_are_copies_not_aliases(self, parts):
        total = CommStats.merged(_P, parts)
        for row in total.per_round_received:
            row[0] += 1000.0
        for part in parts:
            for row in part.per_round_received:
                assert row[0] < 1000.0

    @given(comm_stats_parts())
    @settings(max_examples=60, deadline=None)
    def test_simulated_time_of_merge_is_sum_of_parts(self, parts):
        network = NetworkProfile("prop", alpha=3.0, beta=2.0)
        total = CommStats.merged(_P, (part.copy() for part in parts))
        assert total.simulated_time(network) == pytest.approx(
            sum(part.simulated_time(network) for part in parts))

    @given(comm_stats_parts(), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_expand_round_trip_preserves_accounting(self, parts, extra):
        reference = CommStats.merged(_P, (part.copy() for part in parts))
        grown = reference.copy()
        grown.expand(_P + extra)
        assert grown.num_workers == _P + extra
        # Old slots keep their totals; new slots start empty.
        assert grown.sent_per_worker[:_P] == reference.sent_per_worker
        assert grown.received_per_worker[:_P] == reference.received_per_worker
        assert grown.sent_per_worker[_P:] == [0.0] * extra
        assert grown.received_per_worker[_P:] == [0.0] * extra
        # Historic rows keep the membership they were recorded under, so
        # the timing series is unchanged by the expansion.
        assert grown.per_round_received == reference.per_round_received
        assert grown.per_round_max_received == reference.per_round_max_received
        assert grown.total_volume == reference.total_volume
        # A part recorded at the new size now merges in cleanly.
        late = CommStats(num_workers=_P + extra)
        if extra:
            late.record_round([(0, _P + extra - 1, 7.0)])
        grown.merge(late)
        assert grown.rounds == reference.rounds + late.rounds
