"""Unit tests for Spar-Reduce-Scatter."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster
from repro.core.residuals import ResidualManager, ResidualPolicy
from repro.core.spardl import make_teams
from repro.core.srs import spar_reduce_scatter
from repro.sparse.blocks import BlockLayout

from tests.helpers import random_gradients


def run_srs(num_workers, num_elements, k_block, *, num_teams=1, sparsify_all=False,
            policy=ResidualPolicy.GLOBAL, seed=0, wire_format="packed"):
    cluster = SimulatedCluster(num_workers)
    teams = make_teams(num_workers, num_teams)
    layout = BlockLayout(num_elements, num_workers // num_teams)
    residuals = ResidualManager(num_workers, num_elements, policy)
    gradients = random_gradients(num_workers, num_elements, seed=seed)
    output = spar_reduce_scatter(cluster, teams, gradients, layout, k_block, residuals,
                                 sparsify_all=sparsify_all, wire_format=wire_format)
    return cluster, output, residuals, gradients


class TestSRSStructure:
    @pytest.mark.parametrize("num_workers", [2, 3, 4, 5, 6, 7, 8, 14])
    def test_each_worker_owns_its_rank_block(self, num_workers):
        _, output, _, _ = run_srs(num_workers, 200, 3)
        for rank in range(num_workers):
            assert output.owned_block[rank] == rank

    @pytest.mark.parametrize("num_workers", [2, 3, 5, 6, 8, 14])
    def test_reduced_block_stays_inside_block_bounds(self, num_workers):
        _, output, _, _ = run_srs(num_workers, 300, 4)
        for rank in range(num_workers):
            lo, hi = output.layout.bound(rank)
            indices = output.reduced_blocks[rank].indices
            assert ((indices >= lo) & (indices < hi)).all()

    @pytest.mark.parametrize("num_workers", [2, 3, 5, 6, 8, 14])
    def test_block_nnz_bounded_by_k_block(self, num_workers):
        k_block = 4
        _, output, _, _ = run_srs(num_workers, 300, k_block)
        for rank in range(num_workers):
            assert output.reduced_blocks[rank].nnz <= k_block

    @pytest.mark.parametrize("num_workers", [2, 3, 5, 6, 8, 14, 16])
    def test_number_of_rounds_is_ceil_log2(self, num_workers):
        cluster, output, _, _ = run_srs(num_workers, 300, 4)
        expected = math.ceil(math.log2(num_workers))
        assert output.num_steps == expected
        assert cluster.stats.rounds == expected

    def test_single_worker_needs_no_communication(self):
        cluster, output, _, _ = run_srs(1, 50, 5)
        assert cluster.stats.rounds == 0
        assert output.reduced_blocks[0].nnz <= 5

    def test_bandwidth_matches_equation_2(self):
        """Each worker receives at most 2k(P-1)/P elements during SRS."""
        num_workers, num_elements, k_block = 8, 400, 5
        cluster, _, _, _ = run_srs(num_workers, num_elements, k_block)
        k = k_block * num_workers
        bound = 2 * k * (num_workers - 1) / num_workers
        assert cluster.stats.max_received <= bound + 1e-9

    def test_teams_run_concurrently(self):
        # Two teams of 4 share rounds: still ceil(log2 4) = 2 rounds.
        cluster, output, _, _ = run_srs(8, 400, 5, num_teams=2)
        assert cluster.stats.rounds == 2
        for rank in range(8):
            assert output.owned_block[rank] == rank % 4


class TestSRSCorrectness:
    @pytest.mark.parametrize("num_workers", [2, 3, 6, 8])
    def test_dense_k_reduces_exactly(self, num_workers):
        """With k_block equal to the block size, SRS is an exact (dense)
        Reduce-Scatter: every owned block equals the sum of all workers'
        blocks."""
        num_elements = num_workers * 10
        cluster = SimulatedCluster(num_workers)
        teams = make_teams(num_workers, 1)
        layout = BlockLayout(num_elements, num_workers)
        residuals = ResidualManager(num_workers, num_elements, ResidualPolicy.GLOBAL)
        gradients = random_gradients(num_workers, num_elements, seed=3)
        output = spar_reduce_scatter(cluster, teams, gradients, layout, 10, residuals)
        total = sum(gradients.values())
        for rank in range(num_workers):
            lo, hi = layout.bound(rank)
            np.testing.assert_allclose(output.reduced_blocks[rank].to_dense()[lo:hi],
                                       total[lo:hi], atol=1e-12)

    @pytest.mark.parametrize("num_workers", [2, 5, 6, 8, 14])
    @pytest.mark.parametrize("sparsify_all", [False, True])
    def test_conservation_with_global_residuals(self, num_workers, sparsify_all):
        """Reduced blocks plus all residuals reconstruct the total gradient."""
        num_elements = 120
        _, output, residuals, gradients = run_srs(num_workers, num_elements, 2,
                                                  sparsify_all=sparsify_all)
        total = sum(gradients.values())
        reconstructed = residuals.total_residual()
        for rank in range(num_workers):
            reconstructed = reconstructed + output.reduced_blocks[rank].to_dense()
        np.testing.assert_allclose(reconstructed, total, atol=1e-9)

    def test_optimized_and_unoptimized_hold_same_owned_blocks_structure(self):
        _, fast, _, _ = run_srs(6, 200, 3, sparsify_all=False, seed=7)
        _, slow, _, _ = run_srs(6, 200, 3, sparsify_all=True, seed=7)
        for rank in range(6):
            assert fast.reduced_blocks[rank].nnz <= 3
            assert slow.reduced_blocks[rank].nnz <= 3

    def test_max_bag_nnz_never_exceeds_bag_capacity_times_k(self):
        num_workers, k_block = 6, 3
        _, output, _, _ = run_srs(num_workers, 300, k_block)
        capacities = [2, 2, 1]  # bag sizes sent at steps 1..3 for 6 workers: E=2, 2, 1
        for step_max, capacity in zip(output.max_bag_nnz_per_step, capacities):
            assert step_max <= capacity * k_block


class TestSRSWireFormat:
    """The batched (PackedBags) and per-block wire formats are equivalent."""

    @pytest.mark.parametrize("num_workers", [2, 3, 5, 6, 8, 14])
    def test_packed_and_per_block_are_bit_identical(self, num_workers):
        _, packed, packed_res, _ = run_srs(num_workers, 300, 4, seed=11,
                                           wire_format="packed")
        _, legacy, legacy_res, _ = run_srs(num_workers, 300, 4, seed=11,
                                           wire_format="per-block")
        for rank in range(num_workers):
            np.testing.assert_array_equal(packed.reduced_blocks[rank].indices,
                                          legacy.reduced_blocks[rank].indices)
            np.testing.assert_array_equal(packed.reduced_blocks[rank].values,
                                          legacy.reduced_blocks[rank].values)
        np.testing.assert_array_equal(packed_res.total_residual(),
                                      legacy_res.total_residual())

    @pytest.mark.parametrize("num_workers", [2, 3, 5, 6, 8, 14])
    def test_packed_emits_one_message_per_worker_per_step(self, num_workers):
        cluster, output, _, _ = run_srs(num_workers, 300, 4)
        assert cluster.stats.total_messages == num_workers * output.num_steps

    def test_per_block_emits_one_message_per_block(self):
        # Over all of SRS each worker ships every non-preserved block exactly
        # once: P * (m - 1) messages in the unbatched wiring.
        num_workers = 8
        cluster, _, _, _ = run_srs(num_workers, 300, 4, wire_format="per-block")
        assert cluster.stats.total_messages == num_workers * (num_workers - 1)

    @pytest.mark.parametrize("num_workers", [3, 8])
    def test_both_formats_record_identical_volumes(self, num_workers):
        packed_cluster, _, _, _ = run_srs(num_workers, 300, 4, seed=5)
        legacy_cluster, _, _, _ = run_srs(num_workers, 300, 4, seed=5,
                                          wire_format="per-block")
        assert (packed_cluster.stats.received_per_worker
                == legacy_cluster.stats.received_per_worker)
        assert packed_cluster.stats.rounds == legacy_cluster.stats.rounds

    def test_rejects_unknown_wire_format(self):
        with pytest.raises(ValueError):
            run_srs(4, 100, 2, wire_format="json")


class TestSRSValidation:
    def test_rejects_unequal_teams(self):
        cluster = SimulatedCluster(5)
        layout = BlockLayout(50, 3)
        residuals = ResidualManager(5, 50)
        with pytest.raises(ValueError):
            spar_reduce_scatter(cluster, [[0, 1, 2], [3, 4]],
                                random_gradients(5, 50), layout, 2, residuals)

    def test_rejects_layout_team_mismatch(self):
        cluster = SimulatedCluster(4)
        layout = BlockLayout(50, 3)
        residuals = ResidualManager(4, 50)
        with pytest.raises(ValueError):
            spar_reduce_scatter(cluster, [[0, 1, 2, 3]],
                                random_gradients(4, 50), layout, 2, residuals)

    def test_rejects_duplicate_workers_across_teams(self):
        cluster = SimulatedCluster(4)
        layout = BlockLayout(50, 2)
        residuals = ResidualManager(4, 50)
        with pytest.raises(ValueError):
            spar_reduce_scatter(cluster, [[0, 1], [1, 2]],
                                random_gradients(4, 50), layout, 2, residuals)

    def test_rejects_non_positive_k(self):
        cluster = SimulatedCluster(2)
        layout = BlockLayout(50, 2)
        residuals = ResidualManager(2, 50)
        with pytest.raises(ValueError):
            spar_reduce_scatter(cluster, [[0, 1]], random_gradients(2, 50),
                                layout, 0, residuals)

    def test_rejects_empty_teams(self):
        cluster = SimulatedCluster(2)
        layout = BlockLayout(50, 2)
        residuals = ResidualManager(2, 50)
        with pytest.raises(ValueError):
            spar_reduce_scatter(cluster, [], random_gradients(2, 50), layout, 2, residuals)
