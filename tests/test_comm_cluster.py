"""Unit tests for the simulated cluster and message accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.cluster import Message, SimulatedCluster, payload_size
from repro.sparse.vector import SparseGradient


class TestPayloadSize:
    def test_none_is_free(self):
        assert payload_size(None) == 0.0

    def test_array_counts_elements(self):
        assert payload_size(np.zeros((3, 4))) == 12.0

    def test_sparse_gradient_uses_comm_size(self):
        sparse = SparseGradient(np.array([0, 1]), np.array([1.0, 2.0]), 5)
        assert payload_size(sparse) == 4.0

    def test_list_sums_items(self):
        items = [np.zeros(3), SparseGradient(np.array([0]), np.array([1.0]), 5)]
        assert payload_size(items) == 5.0

    def test_scalar_counts_one(self):
        assert payload_size(3.5) == 1.0
        assert payload_size(7) == 1.0

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            payload_size(object())


class TestMessage:
    def test_size_derived_from_payload(self):
        message = Message(src=0, dst=1, payload=np.zeros(5))
        assert message.size == 5.0

    def test_explicit_size_wins(self):
        message = Message(src=0, dst=1, payload=np.zeros(5), size=2.0)
        assert message.size == 2.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, payload=None, size=-1.0)


class TestSimulatedCluster:
    def test_requires_positive_workers(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)

    def test_exchange_delivers_payloads(self, cluster4):
        inboxes = cluster4.exchange([Message(src=0, dst=1, payload=np.arange(3.0))])
        assert list(inboxes) == [1]
        np.testing.assert_array_equal(inboxes[1][0].payload, [0.0, 1.0, 2.0])

    def test_exchange_counts_one_round(self, cluster4):
        cluster4.exchange([Message(src=0, dst=1, payload=np.zeros(2)),
                           Message(src=2, dst=3, payload=np.zeros(7))])
        assert cluster4.stats.rounds == 1
        assert cluster4.stats.total_messages == 2

    def test_empty_exchange_counts_no_round(self, cluster4):
        assert cluster4.exchange([]) == {}
        assert cluster4.stats.rounds == 0

    def test_self_message_rejected(self, cluster4):
        with pytest.raises(ValueError):
            cluster4.exchange([Message(src=1, dst=1, payload=np.zeros(2))])

    def test_out_of_range_rank_rejected(self, cluster4):
        with pytest.raises(ValueError):
            cluster4.exchange([Message(src=0, dst=7, payload=None)])

    def test_received_volume_recorded_per_worker(self, cluster4):
        cluster4.exchange([Message(src=0, dst=1, payload=np.zeros(10)),
                           Message(src=2, dst=1, payload=np.zeros(5)),
                           Message(src=3, dst=0, payload=np.zeros(2))])
        assert cluster4.stats.received_per_worker[1] == 15.0
        assert cluster4.stats.received_per_worker[0] == 2.0
        assert cluster4.stats.sent_per_worker[0] == 10.0

    def test_reset_stats_returns_and_clears(self, cluster4):
        cluster4.exchange([Message(src=0, dst=1, payload=np.zeros(3))])
        old = cluster4.reset_stats()
        assert old.rounds == 1
        assert cluster4.stats.rounds == 0

    def test_sendrecv_keyed_by_source(self, cluster4):
        received = cluster4.sendrecv({0: (1, np.arange(2.0)), 1: (0, np.arange(3.0))})
        assert set(received) == {0, 1}
        assert received[0][1].shape == (3,)
        assert received[1][0].shape == (2,)

    def test_sendrecv_multiple_to_same_destination(self, cluster4):
        received = cluster4.sendrecv({0: (2, 1.0), 1: (2, 2.0)})
        assert received[2] == {0: 1.0, 1: 2.0}

    def test_sendrecv_single_list_payload_is_unambiguous(self, cluster4):
        # A single received payload that *is* a list must stay distinguishable
        # from two separate payloads (the old bare-payload convention made
        # them identical).
        received = cluster4.sendrecv({0: (2, [1.0, 2.0])})
        assert received[2] == {0: [1.0, 2.0]}

    def test_ranks_property(self, cluster6):
        assert list(cluster6.ranks) == [0, 1, 2, 3, 4, 5]


class TestPayloadAliasing:
    """Receivers must never be able to mutate sender-owned memory."""

    def test_received_array_is_read_only(self, cluster4):
        source = np.arange(6.0)
        inboxes = cluster4.exchange([Message(src=0, dst=1, payload=source[2:5])])
        received = inboxes[1][0].payload
        with pytest.raises(ValueError):
            received += 1.0
        np.testing.assert_array_equal(source, np.arange(6.0))

    def test_sender_view_stays_writable(self, cluster4):
        # Freezing happens on a delivered *view*; the sender's own array (and
        # the very slice it sent) must remain writable.
        source = np.arange(6.0)
        chunk = source[2:5]
        cluster4.exchange([Message(src=0, dst=1, payload=chunk)])
        chunk += 1.0  # must not raise
        assert source[2] == 3.0

    def test_arrays_nested_in_tuples_and_lists_are_frozen(self, cluster4):
        payload = (3, [np.zeros(4), np.ones(2)])
        inboxes = cluster4.exchange([Message(src=0, dst=1, payload=payload, size=6.0)])
        offset, arrays = inboxes[1][0].payload
        assert offset == 3
        for array in arrays:
            with pytest.raises(ValueError):
                array[0] = 99.0
