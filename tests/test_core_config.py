"""Unit tests for SparDL configuration."""

from __future__ import annotations

import pytest

from repro.core.config import SAGMode, SparDLConfig
from repro.core.residuals import ResidualPolicy


class TestSparDLConfig:
    def test_requires_k_or_density(self):
        with pytest.raises(ValueError):
            SparDLConfig()

    def test_rejects_both_k_and_density(self):
        with pytest.raises(ValueError):
            SparDLConfig(k=10, density=0.1)

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            SparDLConfig(k=0)

    def test_rejects_invalid_density(self):
        with pytest.raises(ValueError):
            SparDLConfig(density=0.0)
        with pytest.raises(ValueError):
            SparDLConfig(density=1.5)

    def test_rejects_invalid_num_teams(self):
        with pytest.raises(ValueError):
            SparDLConfig(k=10, num_teams=0)

    def test_resolve_k_from_density(self):
        config = SparDLConfig(density=0.01)
        assert config.resolve_k(10_000) == 100

    def test_resolve_k_clamps_to_at_least_one(self):
        config = SparDLConfig(density=1e-5)
        assert config.resolve_k(100) == 1

    def test_resolve_k_clamps_to_num_elements(self):
        config = SparDLConfig(k=500)
        assert config.resolve_k(100) == 100

    def test_string_modes_are_coerced(self):
        config = SparDLConfig(k=10, sag_mode="bsag", residual_policy="local")
        assert config.sag_mode is SAGMode.BSAG
        assert config.residual_policy is ResidualPolicy.LOCAL

    def test_validate_for_cluster_requires_divisibility(self):
        config = SparDLConfig(k=10, num_teams=3)
        with pytest.raises(ValueError):
            config.validate_for_cluster(8)
        config.validate_for_cluster(9)

    def test_validate_rsag_requires_power_of_two_teams(self):
        config = SparDLConfig(k=10, num_teams=3, sag_mode=SAGMode.RSAG)
        with pytest.raises(ValueError):
            config.validate_for_cluster(9)

    def test_validate_rejects_more_teams_than_workers(self):
        config = SparDLConfig(k=10, num_teams=8)
        with pytest.raises(ValueError):
            config.validate_for_cluster(4)

    def test_effective_mode_auto_picks_rsag_for_power_of_two(self):
        assert SparDLConfig(k=10, num_teams=4).effective_sag_mode() is SAGMode.RSAG
        assert SparDLConfig(k=10, num_teams=7).effective_sag_mode() is SAGMode.BSAG

    def test_effective_mode_respects_explicit_choice(self):
        config = SparDLConfig(k=10, num_teams=4, sag_mode=SAGMode.BSAG)
        assert config.effective_sag_mode() is SAGMode.BSAG

    def test_team_size(self):
        assert SparDLConfig(k=10, num_teams=7).team_size(14) == 2

    def test_describe_mentions_mode_and_teams(self):
        label = SparDLConfig(density=0.01, num_teams=7).describe()
        assert "BSAG" in label and "d=7" in label
        assert "SparDL" in SparDLConfig(k=5).describe()


class TestWireAndFallbackKnobs:
    def test_wire_format_validated(self):
        assert SparDLConfig(k=10).wire_format == "packed"
        assert SparDLConfig(k=10, wire_format="per-block").wire_format == "per-block"
        with pytest.raises(ValueError):
            SparDLConfig(k=10, wire_format="json")

    def test_dense_crossover_defaults_to_measured_constant(self):
        from repro.core.config import DEFAULT_DENSE_CROSSOVER

        assert SparDLConfig(k=10).resolve_dense_crossover() == DEFAULT_DENSE_CROSSOVER
        assert SparDLConfig(k=10, dense_fallback_ratio=0.3).resolve_dense_crossover() == 0.3

    def test_dense_fallback_ratio_must_be_positive(self):
        with pytest.raises(ValueError):
            SparDLConfig(k=10, dense_fallback_ratio=0.0)
        with pytest.raises(ValueError):
            SparDLConfig(k=10, dense_fallback_ratio=-0.5)
