"""Unit tests for the batched sparse wire format (:mod:`repro.comm.packed`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.cluster import payload_size
from repro.comm.packed import PackedBags
from repro.sparse.vector import SparseGradient


def sparse(indices, values, length=100):
    return SparseGradient(np.array(indices, dtype=np.int64),
                          np.array(values, dtype=np.float64), length)


class TestPack:
    def test_round_trip_preserves_bags_bit_for_bit(self):
        bags = [sparse([1, 5, 9], [0.1, -0.2, 0.3]),
                sparse([0, 50], [1.5, 2.5]),
                sparse([99], [-7.0])]
        packed = PackedBags.pack(bags, ids=[4, 0, 2])
        assert packed.num_bags == 3
        assert list(packed.ids) == [4, 0, 2]
        for original, (bag_id, decoded) in zip(bags, packed.items()):
            np.testing.assert_array_equal(decoded.indices, original.indices)
            np.testing.assert_array_equal(decoded.values, original.values)
            assert decoded.length == original.length

    def test_default_ids_are_positions(self):
        packed = PackedBags.pack([sparse([1], [1.0]), sparse([2], [2.0])])
        assert list(packed.ids) == [0, 1]

    def test_empty_bag_inside_batch(self):
        bags = [sparse([3], [1.0]), SparseGradient.empty(100), sparse([7], [2.0])]
        packed = PackedBags.pack(bags)
        assert packed.bag(1).nnz == 0
        np.testing.assert_array_equal(packed.bag(2).indices, [7])

    def test_to_list_preserves_order(self):
        bags = [sparse([i], [float(i)]) for i in range(5)]
        decoded = PackedBags.pack(bags).to_list()
        assert [b.indices[0] for b in decoded] == list(range(5))

    def test_rejects_no_bags(self):
        with pytest.raises(ValueError):
            PackedBags.pack([])

    def test_rejects_mismatched_ids(self):
        with pytest.raises(ValueError):
            PackedBags.pack([sparse([1], [1.0])], ids=[1, 2])

    def test_rejects_mixed_lengths(self):
        with pytest.raises(ValueError):
            PackedBags.pack([sparse([1], [1.0], length=10), sparse([1], [1.0], length=20)])


class TestWireAccounting:
    def test_comm_size_counts_packed_arrays_only(self):
        """Two elements per non-zero; ids and offsets are free metadata."""
        bags = [sparse([1, 2, 3], [1.0, 2.0, 3.0]), sparse([10, 20], [1.0, 2.0])]
        packed = PackedBags.pack(bags, ids=[7, 8])
        assert packed.comm_size == 2.0 * 5
        assert packed.comm_size == sum(bag.comm_size for bag in bags)

    def test_payload_size_uses_comm_size(self):
        packed = PackedBags.pack([sparse([1, 2], [1.0, 2.0])])
        assert payload_size(packed) == packed.comm_size == 4.0

    def test_buffers_are_contiguous_and_read_only(self):
        packed = PackedBags.pack([sparse([1], [1.0]), sparse([2], [2.0])])
        assert packed.indices.flags.c_contiguous
        assert not packed.indices.flags.writeable
        assert not packed.values.flags.writeable
        with pytest.raises(ValueError):
            packed.values[0] = 9.0

    def test_single_bag_pack_does_not_freeze_source_arrays(self):
        indices = np.array([1, 2], dtype=np.int64)
        values = np.array([1.0, 2.0])
        bag = SparseGradient(indices, values, 10)
        PackedBags.pack([bag])
        assert bag.indices.flags.writeable  # freeze applies to the packed view only


class TestDecode:
    def test_decoded_bags_are_views_of_the_packed_buffers(self):
        packed = PackedBags.pack([sparse([1, 2], [1.0, 2.0]), sparse([5], [5.0])])
        decoded = packed.bag(0)
        assert decoded.indices.base is not None
        assert decoded.indices.base is packed.indices or \
            decoded.indices.base is packed.indices.base

    def test_decoded_bags_merge_with_kernels(self):
        """Decoded views feed straight into the merge fast path."""
        a = sparse([1, 4, 8], [1.0, 2.0, 3.0])
        b = sparse([4, 9], [10.0, 20.0])
        packed = PackedBags.pack([a, b])
        merged = packed.bag(0).add(packed.bag(1))
        expected = a.add(b)
        np.testing.assert_array_equal(merged.indices, expected.indices)
        np.testing.assert_array_equal(merged.values, expected.values)

    def test_merge_many_over_decoded_views(self):
        bags = [sparse([i, i + 10], [1.0, 2.0]) for i in range(4)]
        packed = PackedBags.pack(bags)
        merged = SparseGradient.merge_many(packed.to_list())
        expected = SparseGradient.merge_many(bags)
        np.testing.assert_array_equal(merged.indices, expected.indices)
        np.testing.assert_array_equal(merged.values, expected.values)
