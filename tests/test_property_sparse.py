"""Property-based tests (hypothesis) for the sparse gradient substrate."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import pytest

from repro.sparse import vector as vector_module
from repro.sparse.blocks import BlockLayout, block_bounds
from repro.sparse.topk import kth_largest_magnitude, top_k_indices
from repro.sparse.vector import SparseGradient, merge_add_coo, merge_many_coo

# The naive seed idioms live next to the perf harness so benchmark timings
# and these bit-exactness tests share one ground truth.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks" / "perf"))

from naive_reference import (  # noqa: E402
    naive_merge_add as reference_merge_add,
    naive_merge_many as reference_merge_many,
    naive_top_k_indices as reference_top_k_indices,
)

dense_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)

#: Vectors drawn from a tiny value set: nearly every magnitude is tied, the
#: adversarial case for deterministic top-k tie-breaking.
tie_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.sampled_from([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0]),
)


def force_kernel_path(monkeypatch: pytest.MonkeyPatch, path: str) -> None:
    """Pin the merge implementation: 'c', 'scipy' or 'numpy'."""
    if path != "c":
        monkeypatch.setattr(vector_module, "_C_KERNELS", None)
    elif vector_module._get_c_kernels() is None:
        pytest.skip("compiled merge kernels unavailable")
    if path == "numpy":
        monkeypatch.setattr(vector_module, "_HAVE_CSR_TOOLS", False)
    elif path == "scipy" and not vector_module._HAVE_CSR_TOOLS:
        pytest.skip("scipy sparsetools unavailable")


KERNEL_PATHS = ["c", "scipy", "numpy"]


class TestKernelEquivalence:
    """The vectorized kernels must be bit-identical to the seed idioms,
    including adversarial tie patterns, on every implementation path."""

    @pytest.mark.parametrize("path", KERNEL_PATHS)
    def test_top_k_bit_identical_on_ties(self, path, monkeypatch):
        force_kernel_path(monkeypatch, path)
        rng = np.random.default_rng(7)
        pool = np.array([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0])
        for trial in range(200):
            n = int(rng.integers(1, 300))
            values = rng.choice(pool, size=n)
            k = int(rng.integers(-2, n + 3))
            np.testing.assert_array_equal(
                top_k_indices(values, k), reference_top_k_indices(values, k))

    @pytest.mark.parametrize("path", KERNEL_PATHS)
    def test_merge_add_bit_identical(self, path, monkeypatch):
        force_kernel_path(monkeypatch, path)
        rng = np.random.default_rng(11)
        for trial in range(200):
            n = int(rng.integers(1, 500))
            a = SparseGradient.from_dense(
                rng.normal(size=n) * (rng.random(n) < 0.3), length=n)
            b = SparseGradient.from_dense(
                rng.normal(size=n) * (rng.random(n) < 0.3), length=n)
            if a.nnz == 0 or b.nnz == 0:
                continue
            got_idx, got_val = merge_add_coo(a.indices, a.values, b.indices, b.values)
            ref_idx, ref_val = reference_merge_add(a.indices, a.values, b.indices, b.values)
            np.testing.assert_array_equal(got_idx, ref_idx)
            assert np.array_equal(got_val.view(np.uint64), ref_val.view(np.uint64)), \
                "merge-add values are not bit-identical to the seed idiom"

    @pytest.mark.parametrize("path", KERNEL_PATHS)
    def test_merge_many_bit_identical_to_pairwise_fold(self, path, monkeypatch):
        force_kernel_path(monkeypatch, path)
        rng = np.random.default_rng(13)
        for trial in range(60):
            n = int(rng.integers(1, 400))
            num_streams = int(rng.integers(1, 9))
            streams = []
            for _ in range(num_streams):
                dense = rng.normal(size=n) * (rng.random(n) < 0.2)
                sparse = SparseGradient.from_dense(dense, length=n)
                if sparse.nnz:
                    streams.append(sparse)
            if not streams:
                continue
            got_idx, got_val = merge_many_coo([s.indices for s in streams],
                                              [s.values for s in streams])
            ref_idx, ref_val = reference_merge_many([s.indices for s in streams],
                                                    [s.values for s in streams])
            np.testing.assert_array_equal(got_idx, ref_idx)
            assert np.array_equal(got_val.view(np.uint64), ref_val.view(np.uint64)), \
                "k-way merge values are not bit-identical to sequential pairwise adds"

    @pytest.mark.parametrize("path", KERNEL_PATHS)
    def test_merge_add_both_empty(self, path, monkeypatch):
        force_kernel_path(monkeypatch, path)
        empty_i = np.empty(0, dtype=np.int64)
        empty_v = np.empty(0, dtype=np.float64)
        got_idx, got_val = merge_add_coo(empty_i, empty_v, empty_i, empty_v)
        assert got_idx.shape == (0,) and got_val.shape == (0,)

    @pytest.mark.parametrize("path", KERNEL_PATHS)
    def test_merge_add_negative_zero_bit_identical(self, path, monkeypatch):
        # The seed np.add.at accumulates from +0.0 and therefore never emits
        # -0.0; every kernel path must match it bit-for-bit, sign bit
        # included (the random normals above never generate -0.0, so this
        # adversarial case needs explicit coverage).
        force_kernel_path(monkeypatch, path)
        a_idx = np.array([0, 2, 5], dtype=np.int64)
        a_val = np.array([-0.0, 1.0, -0.0])
        b_idx = np.array([1, 5], dtype=np.int64)
        b_val = np.array([-0.0, -0.0])
        got_idx, got_val = merge_add_coo(a_idx, a_val, b_idx, b_val)
        ref_idx, ref_val = reference_merge_add(a_idx, a_val, b_idx, b_val)
        np.testing.assert_array_equal(got_idx, ref_idx)
        assert np.array_equal(got_val.view(np.uint64), ref_val.view(np.uint64)), \
            "-0.0 handling differs from the seed idiom"

    @given(values=tie_vectors, k=st.integers(min_value=-5, max_value=250))
    @settings(max_examples=100, deadline=None)
    def test_top_k_hypothesis_ties(self, values, k):
        np.testing.assert_array_equal(
            top_k_indices(values, k), reference_top_k_indices(values, k))

    @given(a=dense_vectors, seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_sparse_add_matches_seed_merge(self, a, seed):
        b = np.random.default_rng(seed).normal(size=a.shape[0])
        sa = SparseGradient.from_dense(a)
        sb = SparseGradient.from_dense(b, length=a.shape[0])
        if sa.nnz == 0 or sb.nnz == 0:
            return
        merged = sa.add(sb)
        ref_idx, ref_val = reference_merge_add(sa.indices, sa.values, sb.indices, sb.values)
        np.testing.assert_array_equal(merged.indices, ref_idx)
        np.testing.assert_array_equal(merged.values, ref_val)


class TestTopKProperties:
    @given(values=dense_vectors, k=st.integers(min_value=0, max_value=250))
    @settings(max_examples=60, deadline=None)
    def test_selection_size_and_optimality(self, values, k):
        picked = top_k_indices(values, k)
        expected = min(max(k, 0), values.shape[0])
        assert picked.size == expected
        if 0 < picked.size < values.shape[0]:
            # Every selected magnitude >= every unselected magnitude.
            mask = np.zeros(values.shape[0], dtype=bool)
            mask[picked] = True
            assert np.abs(values[mask]).min() >= np.abs(values[~mask]).max() - 1e-12

    @given(values=dense_vectors, k=st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_kth_magnitude_consistent_with_selection(self, values, k):
        cut = kth_largest_magnitude(values, k)
        count_at_least = (np.abs(values) >= cut).sum()
        assert count_at_least >= min(k, values.shape[0])


class TestSparseGradientProperties:
    @given(values=dense_vectors)
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, values):
        sparse = SparseGradient.from_dense(values)
        np.testing.assert_allclose(sparse.to_dense(values.shape[0]), values)

    @given(values=dense_vectors, k=st.integers(min_value=0, max_value=250))
    @settings(max_examples=60, deadline=None)
    def test_topk_split_conserves_mass(self, values, k):
        sparse = SparseGradient.from_dense(values)
        kept, dropped = sparse.top_k(k)
        np.testing.assert_allclose(kept.to_dense() + dropped.to_dense(), sparse.to_dense())
        assert kept.nnz <= max(k, 0) or k >= sparse.nnz

    @given(a=dense_vectors, seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_add_matches_dense_addition(self, a, seed):
        b = np.random.default_rng(seed).normal(size=a.shape[0])
        sparse_sum = SparseGradient.from_dense(a).add(SparseGradient.from_dense(b))
        np.testing.assert_allclose(sparse_sum.to_dense(), a + b, atol=1e-9)

    @given(values=dense_vectors,
           lo=st.integers(min_value=0, max_value=200),
           hi=st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_restrict_never_leaks_outside_range(self, values, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        sparse = SparseGradient.from_dense(values)
        restricted = sparse.restrict(lo, hi)
        if restricted.nnz:
            assert restricted.indices.min() >= lo
            assert restricted.indices.max() < hi


class TestBlockLayoutProperties:
    @given(length=st.integers(min_value=0, max_value=500),
           num_blocks=st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_bounds_partition_the_range(self, length, num_blocks):
        bounds = block_bounds(length, num_blocks)
        assert len(bounds) == num_blocks
        assert bounds[0][0] == 0
        assert bounds[-1][1] == length
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
            assert prev_hi == lo

    @given(length=st.integers(min_value=1, max_value=300),
           num_blocks=st.integers(min_value=1, max_value=20),
           seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_concat_of_block_restrictions_recovers_vector(self, length, num_blocks, seed):
        layout = BlockLayout(length, num_blocks)
        dense = np.random.default_rng(seed).normal(size=length)
        sparse = SparseGradient.from_dense(dense)
        pieces = [layout.restrict(sparse, block) for block in range(num_blocks)]
        merged = layout.concat_blocks(pieces)
        np.testing.assert_allclose(merged.to_dense(), dense, atol=1e-12)
