"""Property-based tests (hypothesis) for the sparse gradient substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse.blocks import BlockLayout, block_bounds
from repro.sparse.topk import kth_largest_magnitude, top_k_indices
from repro.sparse.vector import SparseGradient

dense_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
)


class TestTopKProperties:
    @given(values=dense_vectors, k=st.integers(min_value=0, max_value=250))
    @settings(max_examples=60, deadline=None)
    def test_selection_size_and_optimality(self, values, k):
        picked = top_k_indices(values, k)
        expected = min(max(k, 0), values.shape[0])
        assert picked.size == expected
        if 0 < picked.size < values.shape[0]:
            # Every selected magnitude >= every unselected magnitude.
            mask = np.zeros(values.shape[0], dtype=bool)
            mask[picked] = True
            assert np.abs(values[mask]).min() >= np.abs(values[~mask]).max() - 1e-12

    @given(values=dense_vectors, k=st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_kth_magnitude_consistent_with_selection(self, values, k):
        cut = kth_largest_magnitude(values, k)
        count_at_least = (np.abs(values) >= cut).sum()
        assert count_at_least >= min(k, values.shape[0])


class TestSparseGradientProperties:
    @given(values=dense_vectors)
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, values):
        sparse = SparseGradient.from_dense(values)
        np.testing.assert_allclose(sparse.to_dense(values.shape[0]), values)

    @given(values=dense_vectors, k=st.integers(min_value=0, max_value=250))
    @settings(max_examples=60, deadline=None)
    def test_topk_split_conserves_mass(self, values, k):
        sparse = SparseGradient.from_dense(values)
        kept, dropped = sparse.top_k(k)
        np.testing.assert_allclose(kept.to_dense() + dropped.to_dense(), sparse.to_dense())
        assert kept.nnz <= max(k, 0) or k >= sparse.nnz

    @given(a=dense_vectors, seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_add_matches_dense_addition(self, a, seed):
        b = np.random.default_rng(seed).normal(size=a.shape[0])
        sparse_sum = SparseGradient.from_dense(a).add(SparseGradient.from_dense(b))
        np.testing.assert_allclose(sparse_sum.to_dense(), a + b, atol=1e-9)

    @given(values=dense_vectors,
           lo=st.integers(min_value=0, max_value=200),
           hi=st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_restrict_never_leaks_outside_range(self, values, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        sparse = SparseGradient.from_dense(values)
        restricted = sparse.restrict(lo, hi)
        if restricted.nnz:
            assert restricted.indices.min() >= lo
            assert restricted.indices.max() < hi


class TestBlockLayoutProperties:
    @given(length=st.integers(min_value=0, max_value=500),
           num_blocks=st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_bounds_partition_the_range(self, length, num_blocks):
        bounds = block_bounds(length, num_blocks)
        assert len(bounds) == num_blocks
        assert bounds[0][0] == 0
        assert bounds[-1][1] == length
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:]):
            assert prev_hi == lo

    @given(length=st.integers(min_value=1, max_value=300),
           num_blocks=st.integers(min_value=1, max_value=20),
           seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_concat_of_block_restrictions_recovers_vector(self, length, num_blocks, seed):
        layout = BlockLayout(length, num_blocks)
        dense = np.random.default_rng(seed).normal(size=length)
        sparse = SparseGradient.from_dense(dense)
        pieces = [layout.restrict(sparse, block) for block in range(num_blocks)]
        merged = layout.concat_blocks(pieces)
        np.testing.assert_allclose(merged.to_dense(), dense, atol=1e-12)
