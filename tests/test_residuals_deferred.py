"""Deferred residual accumulation must be indistinguishable from eager.

The deferred mode buffers every sparse discard per worker and folds each
buffer through one k-way merge and one scatter at the iteration's flush
points.  Because the fold replays the exact left-to-right addition chain of
the eager scatters (seeded with the store's current content), the two modes
are required to be **bit-identical**, not merely close — these tests assert
``np.array_equal`` on ``total_residual`` and exact equality on
``residual_norms`` across the full non-power-of-two team-size suite, every
residual policy, and multiple iterations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.residuals import ResidualManager, ResidualPolicy
from repro.core.spardl import SparDLSynchronizer
from repro.sparse.vector import SparseGradient

from tests.helpers import random_gradients

TEAM_SIZES = [3, 5, 6, 7]
POLICIES = ["global", "partial", "local"]


def _run_sync(team_size, num_teams, policy, deferred, iterations=3):
    """Run the full synchroniser; return per-iteration residual snapshots."""
    num_workers = team_size * num_teams
    num_elements = 60 * team_size
    cluster = SimulatedCluster(num_workers)
    config = SparDLConfig(density=0.05, num_teams=num_teams,
                          residual_policy=policy,
                          deferred_residuals=deferred)
    sync = SparDLSynchronizer(cluster, num_elements, config)
    snapshots = []
    for iteration in range(iterations):
        gradients = random_gradients(num_workers, num_elements,
                                     seed=1000 * team_size + iteration)
        result = sync.synchronize(gradients)
        snapshots.append((
            result.gradient(0).copy(),
            sync.residuals.total_residual(),
            sync.residuals.residual_norms(),
        ))
    scatters = {worker: sync.residuals.store(worker).scatter_count
                for worker in range(num_workers)}
    return snapshots, scatters


class TestDeferredMatchesEagerEndToEnd:
    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_bit_identical_residuals_single_team(self, team_size, policy):
        eager, _ = _run_sync(team_size, 1, policy, deferred=False)
        deferred, _ = _run_sync(team_size, 1, policy, deferred=True)
        for (ge, te, ne), (gd, td, nd) in zip(eager, deferred):
            np.testing.assert_array_equal(ge, gd)
            assert np.array_equal(te.view(np.int64), td.view(np.int64)), (
                "total_residual diverged bitwise")
            assert ne == nd

    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    def test_bit_identical_residuals_two_teams(self, team_size):
        """d=2 exercises the SAG collection hooks on top of SRS."""
        eager, _ = _run_sync(team_size, 2, "global", deferred=False)
        deferred, _ = _run_sync(team_size, 2, "global", deferred=True)
        for (ge, te, ne), (gd, td, nd) in zip(eager, deferred):
            np.testing.assert_array_equal(ge, gd)
            assert np.array_equal(te.view(np.int64), td.view(np.int64))
            assert ne == nd

    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    def test_one_scatter_per_worker_per_iteration(self, team_size):
        iterations = 3
        _, eager_scatters = _run_sync(team_size, 2, "global", deferred=False,
                                      iterations=iterations)
        _, deferred_scatters = _run_sync(team_size, 2, "global", deferred=True,
                                         iterations=iterations)
        assert max(deferred_scatters.values()) <= iterations
        assert max(deferred_scatters.values()) < max(eager_scatters.values())

    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    def test_conservation_in_deferred_mode(self, team_size):
        """Gradient + residuals still reconstructs the exact dense sum."""
        num_workers, num_elements = team_size, 60 * team_size
        cluster = SimulatedCluster(num_workers)
        config = SparDLConfig(density=0.05, deferred_residuals=True)
        sync = SparDLSynchronizer(cluster, num_elements, config)
        gradients = random_gradients(num_workers, num_elements, seed=team_size)
        result = sync.synchronize(gradients)
        reconstructed = result.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(reconstructed, sum(gradients.values()),
                                   atol=1e-8)


class TestDeferredManagerSemantics:
    def _sparse(self, indices, values, length=8):
        return SparseGradient(np.array(indices, dtype=np.int64),
                              np.array(values, dtype=np.float64), length)

    def test_buffered_discards_invisible_until_flush_points(self):
        manager = ResidualManager(1, 8, ResidualPolicy.GLOBAL, deferred=True)
        manager.collect_procedure(0, self._sparse([1, 3], [2.0, 4.0]))
        # total_residual is a flush point, so the buffered values appear.
        np.testing.assert_allclose(manager.total_residual(),
                                   [0, 2, 0, 4, 0, 0, 0, 0])

    def test_store_accessor_flushes(self):
        manager = ResidualManager(1, 8, ResidualPolicy.GLOBAL, deferred=True)
        manager.collect_procedure(0, self._sparse([2], [5.0]))
        assert manager.store(0).peek()[2] == 5.0

    def test_apply_flushes_then_drains(self):
        manager = ResidualManager(1, 8, ResidualPolicy.GLOBAL, deferred=True)
        manager.collect_procedure(0, self._sparse([0], [1.5]))
        corrected = manager.apply({0: np.zeros(8)})
        assert corrected[0][0] == 1.5
        np.testing.assert_allclose(manager.total_residual(), np.zeros(8))

    def test_fold_matches_sequential_scatters_with_dense_base(self):
        """The fold replays eager's addition chain over a dense base."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=16)
        discards = []
        for _ in range(6):
            m = rng.integers(1, 6)
            idx = np.sort(rng.choice(16, size=m, replace=False)).astype(np.int64)
            discards.append((self._sparse(idx, rng.normal(size=m), 16),
                             float(rng.choice([1.0, 0.5, 0.25]))))
        eager = ResidualManager(1, 16, ResidualPolicy.GLOBAL)
        deferred = ResidualManager(1, 16, ResidualPolicy.GLOBAL, deferred=True)
        for manager in (eager, deferred):
            manager.collect_local(0, base)
        for sparse, share in discards:
            eager.collect_procedure(0, sparse, share)
            deferred.collect_procedure(0, sparse, share)
        assert np.array_equal(eager.total_residual().view(np.int64),
                              deferred.total_residual().view(np.int64))
        assert deferred.store(0).scatter_count == 1
        assert eager.store(0).scatter_count == len(discards)

    def test_partial_policy_defers_until_finalize(self):
        manager = ResidualManager(1, 8, ResidualPolicy.PARTIAL, deferred=True)
        manager.collect_procedure(0, self._sparse([1, 4], [3.0, 6.0]))
        manager.finalize(np.array([4], dtype=np.int64))
        # Index 4 appears in the final gradient (in-procedure, dropped);
        # index 1 does not (end-procedure, kept).
        np.testing.assert_allclose(manager.total_residual(),
                                   [0, 3, 0, 0, 0, 0, 0, 0])

    def test_eager_default_unchanged(self):
        manager = ResidualManager(2, 8)
        assert manager.deferred is False
        manager.collect_procedure(1, self._sparse([3], [2.0]))
        assert manager.store(1).scatter_count == 1
