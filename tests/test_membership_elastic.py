"""Mid-training elastic membership: crashes, joins, and re-partitioning.

On a crash/join event the synchroniser re-runs the bag planning for the new
worker count between iterations and hands residual state off so that no
gradient mass leaves the system.  The oracles are the PR 2 non-power-of-two
invariants: Theorem 1 bag subsets (SRS raises on violation), index-set
agreement across workers, and exact conservation — here asserted *across*
the membership transition, to 1e-9, under both eager and deferred residual
accumulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.faults import FaultPlan, MembershipEvent
from repro.comm.stats import CommStats
from repro.core.config import SparDLConfig
from repro.core.pipeline import SyncSession
from repro.core.residuals import ResidualManager
from repro.core.spardl import SparDLSynchronizer

from tests.helpers import random_gradients

NUM_ELEMENTS = 600


def _run_with_events(num_workers, events, *, num_teams=1, deferred=False,
                     iterations=4, density=0.05):
    """Drive a session across membership events; return the conservation
    ledger (injected total, delivered total, synchroniser, membership log)."""
    cluster = SimulatedCluster(num_workers)
    cluster.install_fault_plan(FaultPlan(events=events))
    sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, SparDLConfig(
        density=density, num_teams=num_teams, deferred_residuals=deferred))
    session = SyncSession(sync)
    injected = np.zeros(NUM_ELEMENTS)
    delivered = np.zeros(NUM_ELEMENTS)
    memberships = []
    for iteration in range(iterations):
        session.poll_membership()
        current = session.num_workers
        memberships.append(current)
        grads = random_gradients(current, NUM_ELEMENTS, seed=31 * iteration)
        injected += sum(grads.values())
        result = session.step(grads)
        assert result.is_consistent
        delivered += result.gradient(0)
    return injected, delivered, sync, session, memberships


class TestJoinTransition:
    @pytest.mark.parametrize("deferred", [False, True])
    def test_three_to_four_join_conserves(self, deferred):
        events = [MembershipEvent(iteration=2, kind="join")]
        injected, delivered, sync, session, memberships = _run_with_events(
            3, events, deferred=deferred)
        assert memberships == [3, 3, 4, 4]
        recon = delivered + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, injected, atol=1e-9)

    def test_join_rebuilds_partitioning(self):
        events = [MembershipEvent(iteration=1, kind="join")]
        _, _, sync, _, _ = _run_with_events(3, events, iterations=2)
        assert sync.num_workers == 4
        assert sync.team_size == 4
        assert sync.teams == [[0, 1, 2, 3]]
        assert sync.layout.num_blocks == sync.team_size
        assert sync.residuals.num_workers == 4

    def test_join_can_restore_team_divisibility(self):
        # 3 workers cap d=2 down to 1; the join to P=4 restores d=2.
        events = [MembershipEvent(iteration=1, kind="join")]
        cluster = SimulatedCluster(3)
        cluster.install_fault_plan(FaultPlan(events=events))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                  SparDLConfig(density=0.05, num_teams=1))
        # configured num_teams=1 stays 1; now ask for the d-recovery case
        sync.config = SparDLConfig(density=0.05, num_teams=2)
        session = SyncSession(sync)
        session.step(random_gradients(3, NUM_ELEMENTS))
        assert session.poll_membership()
        assert sync.num_teams == 2
        assert sync.teams == [[0, 1], [2, 3]]
        result = session.step(random_gradients(4, NUM_ELEMENTS, seed=5))
        assert result.is_consistent


class TestCrashTransition:
    @pytest.mark.parametrize("deferred", [False, True])
    def test_eight_to_seven_crash_conserves(self, deferred):
        # P=8 with d=2; rank 3 crashes before iteration 2. 7 is prime, so
        # the team count must degrade to d=1 with a 7-worker team.
        events = [MembershipEvent(iteration=2, kind="crash", worker=3)]
        injected, delivered, sync, session, memberships = _run_with_events(
            8, events, num_teams=2, deferred=deferred)
        assert memberships == [8, 8, 7, 7]
        assert sync.num_teams == 1
        assert sync.team_size == 7
        recon = delivered + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, injected, atol=1e-9)

    def test_crashed_residual_hands_off_to_successor(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(
            events=[MembershipEvent(iteration=1, kind="crash", worker=1)]))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                  SparDLConfig(density=0.05))
        session = SyncSession(sync)
        session.step(random_gradients(4, NUM_ELEMENTS))
        before = {w: sync.residuals.store(w).peek() for w in range(4)}
        assert session.poll_membership()
        # survivors 0,2,3 -> 0,1,2; crashed rank 1's store joins old rank 2
        np.testing.assert_array_equal(sync.residuals.store(0).peek(), before[0])
        np.testing.assert_allclose(sync.residuals.store(1).peek(),
                                   before[1] + before[2], atol=1e-12)
        np.testing.assert_array_equal(sync.residuals.store(2).peek(), before[3])

    def test_highest_rank_crash_default(self):
        events = [MembershipEvent(iteration=1, kind="crash")]
        injected, delivered, sync, _, memberships = _run_with_events(
            5, events, iterations=3)
        assert memberships == [5, 4, 4]
        recon = delivered + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, injected, atol=1e-9)


class TestChurn:
    @pytest.mark.parametrize("deferred", [False, True])
    def test_crash_then_join_sequence(self, deferred):
        events = [MembershipEvent(iteration=1, kind="crash", worker=0),
                  MembershipEvent(iteration=3, kind="join"),
                  MembershipEvent(iteration=4, kind="join")]
        injected, delivered, sync, session, memberships = _run_with_events(
            6, events, num_teams=2, deferred=deferred, iterations=6)
        assert memberships == [6, 5, 5, 6, 7, 7]
        recon = delivered + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, injected, atol=1e-9)

    def test_churn_with_message_faults(self):
        # Drops, losses and a membership change in the same run.
        events = [MembershipEvent(iteration=2, kind="crash", worker=2)]
        cluster = SimulatedCluster(6)
        cluster.install_fault_plan(FaultPlan(seed=17, drop_rate=0.4,
                                             events=events))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                  SparDLConfig(density=0.05, num_teams=2))
        session = SyncSession(sync)
        injected = np.zeros(NUM_ELEMENTS)
        delivered = np.zeros(NUM_ELEMENTS)
        for iteration in range(4):
            session.poll_membership()
            grads = random_gradients(session.num_workers, NUM_ELEMENTS,
                                     seed=13 * iteration)
            injected += sum(grads.values())
            delivered += session.step(grads).gradient(0)
        recon = delivered + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, injected, atol=1e-9)


class TestSessionAccounting:
    def test_cumulative_stats_expand_to_widest_membership(self):
        events = [MembershipEvent(iteration=1, kind="join")]
        _, _, _, session, _ = _run_with_events(3, events, iterations=3)
        assert session.cumulative_stats.num_workers == 4
        assert session.cumulative_stats.rounds > 0

    def test_cumulative_stats_keep_width_after_crash(self):
        events = [MembershipEvent(iteration=1, kind="crash")]
        _, _, _, session, _ = _run_with_events(5, events, iterations=3)
        # the widest membership seen (5) stays the accounting width
        assert session.cumulative_stats.num_workers == 5

    def test_poll_is_idempotent_per_iteration(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(
            events=[MembershipEvent(iteration=1, kind="join")]))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS,
                                  SparDLConfig(density=0.05))
        session = SyncSession(sync)
        session.step(random_gradients(4, NUM_ELEMENTS))
        assert session.poll_membership()
        assert not session.poll_membership()  # second poll applies nothing
        assert session.num_workers == 5

    def test_no_plan_poll_is_a_no_op(self):
        sync = SparDLSynchronizer(SimulatedCluster(4), NUM_ELEMENTS,
                                  SparDLConfig(density=0.05))
        assert not sync.poll_membership()
        assert sync.num_workers == 4


class TestDenseElastic:
    def test_dense_survives_crash_and_join(self):
        events = [MembershipEvent(iteration=1, kind="crash", worker=0),
                  MembershipEvent(iteration=2, kind="join")]
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(events=events))
        sync = DenseAllReduceSynchronizer(cluster, NUM_ELEMENTS)
        session = SyncSession(sync)
        for iteration, expected_P in enumerate([4, 3, 4]):
            session.poll_membership()
            assert session.num_workers == expected_P
            grads = random_gradients(expected_P, NUM_ELEMENTS, seed=iteration)
            result = session.step(grads)
            np.testing.assert_allclose(result.gradient(0), sum(grads.values()))

    def test_quantized_dense_hands_off_error_feedback(self):
        events = [MembershipEvent(iteration=1, kind="crash", worker=1)]
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(events=events))
        sync = DenseAllReduceSynchronizer(cluster, NUM_ELEMENTS, num_bits=8)
        session = SyncSession(sync)
        g0 = random_gradients(4, NUM_ELEMENTS)
        r0 = session.step(g0)
        carried = sync.residuals.total_residual()
        session.poll_membership()
        np.testing.assert_allclose(sync.residuals.total_residual(), carried,
                                   atol=1e-12)
        g1 = random_gradients(3, NUM_ELEMENTS, seed=9)
        r1 = session.step(g1)
        recon = r0.gradient(0) + r1.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(recon, sum(g0.values()) + sum(g1.values()),
                                   atol=1e-9)


class TestRemapWorkersUnit:
    def test_mapping_must_cover_old_ranks(self):
        manager = ResidualManager(3, 10)
        with pytest.raises(ValueError):
            manager.remap_workers(2, {0: 0, 1: 1})  # rank 2 unmapped
        with pytest.raises(ValueError):
            manager.remap_workers(2, {0: 0, 1: 1, 2: 5})  # out of range
        with pytest.raises(ValueError):
            manager.remap_workers(0, {})

    def test_deferred_buffers_flush_before_handoff(self):
        from repro.sparse.vector import SparseGradient
        manager = ResidualManager(2, 10, deferred=True)
        sparse = SparseGradient.from_dense(np.arange(10.0))
        manager.collect_procedure(1, sparse)
        manager.remap_workers(1, {0: 0, 1: 0})
        np.testing.assert_allclose(manager.store(0).peek(), np.arange(10.0))
        assert manager.num_workers == 1


class TestCommStatsExpand:
    def test_expand_grows_and_merges(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 5.0)])
        stats.expand(4)
        assert stats.num_workers == 4
        assert stats.sent_per_worker == [5.0, 0.0, 0.0, 0.0]
        wide = CommStats(num_workers=4)
        wide.record_round([(0, 3, 2.0)])
        stats.merge(wide)
        assert stats.received_per_worker == [0.0, 5.0, 0.0, 2.0]
        assert stats.rounds == 2

    def test_expand_refuses_to_shrink(self):
        stats = CommStats(num_workers=4)
        with pytest.raises(ValueError):
            stats.expand(3)


class TestMomentumChurn:
    """Satellite PR 10: momentum-correction velocity hands off across
    membership transitions exactly like the residual stores — a crashed
    rank's velocity is summed onto its successor (momentum history is
    conserved), joining ranks start from zero velocity, and the per-step
    conservation ledger holds to 1e-9 across the transition."""

    def test_remap_sums_crashed_velocity_onto_successor(self):
        manager = ResidualManager(4, 10, momentum=0.9)
        manager.apply(random_gradients(4, 10, seed=3))
        before = {w: manager.velocity(w) for w in range(4)}
        # Crash of rank 1: survivors 0,2,3 -> 0,1,2; the crashed store (and
        # velocity) joins old rank 2's successor, exactly like the residuals.
        manager.remap_workers(3, {0: 0, 1: 1, 2: 1, 3: 2})
        np.testing.assert_array_equal(manager.velocity(0), before[0])
        np.testing.assert_allclose(manager.velocity(1),
                                   before[1] + before[2], atol=1e-12)
        np.testing.assert_array_equal(manager.velocity(2), before[3])

    def test_remap_join_starts_with_zero_velocity(self):
        manager = ResidualManager(2, 8, momentum=0.9)
        manager.apply(random_gradients(2, 8, seed=5))
        manager.remap_workers(3, {0: 0, 1: 1})
        np.testing.assert_array_equal(manager.velocity(2), np.zeros(8))
        assert manager.velocity(0) is not None

    def test_remap_without_momentum_keeps_velocity_off(self):
        manager = ResidualManager(2, 8)
        manager.remap_workers(3, {0: 0, 1: 1})
        assert manager.velocity(0) is None

    @pytest.mark.parametrize("deferred", [False, True])
    def test_churn_conserves_momentum_ledger(self, deferred):
        """Crash then join under momentum correction: every step satisfies
        ``delivered + residual_after == residual_before
        + m * velocity_before + injected`` to 1e-9, including the steps
        straddling the membership transitions (remap preserves the residual
        and velocity totals)."""
        factor = 0.9
        events = [MembershipEvent(iteration=1, kind="crash", worker=1),
                  MembershipEvent(iteration=3, kind="join")]
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(events=events))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, SparDLConfig(
            density=0.05, momentum=factor, deferred_residuals=deferred))
        session = SyncSession(sync)
        memberships = []
        for iteration in range(5):
            session.poll_membership()
            memberships.append(session.num_workers)
            grads = random_gradients(session.num_workers, NUM_ELEMENTS,
                                     seed=19 * iteration)
            residual_before = sync.residuals.total_residual()
            velocity_before = sync.residuals.total_velocity()
            result = session.step(grads)
            assert result.is_consistent
            lhs = result.gradient(0) + sync.residuals.total_residual()
            rhs = (residual_before + factor * velocity_before
                   + sum(grads.values()))
            np.testing.assert_allclose(lhs, rhs, atol=1e-9)
        assert memberships == [4, 3, 3, 4, 4]

    def test_crashed_velocity_hand_off_through_the_synchroniser(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(
            events=[MembershipEvent(iteration=1, kind="crash", worker=1)]))
        sync = SparDLSynchronizer(cluster, NUM_ELEMENTS, SparDLConfig(
            density=0.05, momentum=0.9))
        session = SyncSession(sync)
        session.step(random_gradients(4, NUM_ELEMENTS))
        before = {w: sync.residuals.velocity(w) for w in range(4)}
        assert session.poll_membership()
        np.testing.assert_array_equal(sync.residuals.velocity(0), before[0])
        np.testing.assert_allclose(sync.residuals.velocity(1),
                                   before[1] + before[2], atol=1e-12)
        np.testing.assert_array_equal(sync.residuals.velocity(2), before[3])
