"""Unit tests for Spar-All-Gather (R-SAG, B-SAG) and the h controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster
from repro.core.residuals import ResidualManager, ResidualPolicy
from repro.core.sag import (
    CompressionRatioController,
    b_sag,
    cross_team_groups,
    r_sag,
)
from repro.core.spardl import make_teams
from repro.sparse.vector import SparseGradient


def make_blocks(teams, num_elements, nnz, seed=0):
    """One sparse block per worker, all restricted to that worker's position."""
    rng = np.random.default_rng(seed)
    blocks = {}
    team_size = len(teams[0])
    block_size = num_elements // team_size
    for team in teams:
        for position, rank in enumerate(team):
            lo = position * block_size
            indices = lo + rng.choice(block_size, size=nnz, replace=False)
            values = rng.normal(size=nnz)
            blocks[rank] = SparseGradient(np.sort(indices), values, num_elements)
    return blocks


class TestCrossTeamGroups:
    def test_groups_by_position(self):
        teams = [[0, 1, 2], [3, 4, 5]]
        assert cross_team_groups(teams) == [[0, 3], [1, 4], [2, 5]]

    def test_single_team(self):
        assert cross_team_groups([[0, 1]]) == [[0], [1]]

    def test_unequal_teams_rejected(self):
        with pytest.raises(ValueError):
            cross_team_groups([[0, 1], [2]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cross_team_groups([])


class TestCompressionRatioController:
    def test_initial_h_is_k_over_p(self):
        controller = CompressionRatioController(k=140, num_workers=14, num_teams=7)
        assert controller.h == max(1, round(140 / 14))

    def test_h_bounded_by_range(self):
        controller = CompressionRatioController(k=100, num_workers=10, num_teams=5)
        for _ in range(200):
            controller.update(observed_nnz=0)  # always too few -> push h up
        assert controller.h <= round(controller.h_max)
        for _ in range(200):
            controller.update(observed_nnz=10 ** 9)  # always too many -> push h down
        assert controller.h >= max(1, round(controller.h_min))

    def test_step_doubles_after_two_moves_in_same_direction(self):
        controller = CompressionRatioController(k=1000, num_workers=10, num_teams=5)
        first = abs(controller.step)
        controller.update(observed_nnz=0)  # same direction, sets flag
        assert abs(controller.step) == pytest.approx(first)
        controller.update(observed_nnz=0)  # same direction again -> double
        assert abs(controller.step) == pytest.approx(2 * first)

    def test_step_halves_and_reverses_on_crossing(self):
        controller = CompressionRatioController(k=1000, num_workers=10, num_teams=5)
        magnitude = abs(controller.step)
        controller.update(observed_nnz=10 ** 9)  # crossed the target -> reverse and halve
        assert controller.step == pytest.approx(-magnitude / 2)

    def test_target_is_L(self):
        controller = CompressionRatioController(k=140, num_workers=14, num_teams=7)
        assert controller.target == pytest.approx(7 * 140 / 14)

    def test_history_records_every_update(self):
        controller = CompressionRatioController(k=100, num_workers=10, num_teams=2)
        for step in range(5):
            controller.update(observed_nnz=step * 10)
        assert len(controller.history) == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CompressionRatioController(k=0, num_workers=4, num_teams=2)
        with pytest.raises(ValueError):
            CompressionRatioController(k=10, num_workers=4, num_teams=8)

    def test_converges_towards_target_under_proportional_feedback(self):
        """With the observed count proportional to h (a reasonable model of
        B-SAG), the controller drives the count towards L."""
        controller = CompressionRatioController(k=500, num_workers=10, num_teams=5)
        overlap = 2.2  # observed nnz ~= overlap * h
        observed = overlap * controller.h
        for _ in range(60):
            controller.update(observed)
            observed = overlap * controller.h
        assert abs(observed - controller.target) / controller.target < 0.35


class TestRSAG:
    @pytest.mark.parametrize("num_teams", [1, 2, 4])
    def test_groups_hold_identical_blocks(self, num_teams):
        num_workers = 8
        cluster = SimulatedCluster(num_workers)
        teams = make_teams(num_workers, num_teams)
        blocks = make_blocks(teams, 80, nnz=5)
        residuals = ResidualManager(num_workers, 80, ResidualPolicy.GLOBAL)
        output = r_sag(cluster, teams, blocks, keep=5, residuals=residuals)
        for group in cross_team_groups(teams):
            reference = output.blocks[group[0]].to_dense()
            for rank in group[1:]:
                np.testing.assert_allclose(output.blocks[rank].to_dense(), reference)

    def test_requires_power_of_two_teams(self):
        cluster = SimulatedCluster(6)
        teams = make_teams(6, 3)
        blocks = make_blocks(teams, 60, nnz=3)
        residuals = ResidualManager(6, 60)
        with pytest.raises(ValueError):
            r_sag(cluster, teams, blocks, keep=3, residuals=residuals)

    def test_round_count_is_log2_d(self):
        cluster = SimulatedCluster(8)
        teams = make_teams(8, 4)
        blocks = make_blocks(teams, 80, nnz=4)
        residuals = ResidualManager(8, 80)
        output = r_sag(cluster, teams, blocks, keep=4, residuals=residuals)
        assert output.num_steps == 2
        assert cluster.stats.rounds == 2

    def test_keep_bound_respected(self):
        cluster = SimulatedCluster(8)
        teams = make_teams(8, 4)
        blocks = make_blocks(teams, 80, nnz=6)
        residuals = ResidualManager(8, 80)
        output = r_sag(cluster, teams, blocks, keep=4, residuals=residuals)
        assert all(block.nnz <= 4 for block in output.blocks.values())

    def test_conservation_with_global_residuals(self):
        num_workers, num_elements = 8, 80
        cluster = SimulatedCluster(num_workers)
        teams = make_teams(num_workers, 4)
        blocks = make_blocks(teams, num_elements, nnz=6, seed=5)
        residuals = ResidualManager(num_workers, num_elements, ResidualPolicy.GLOBAL)
        output = r_sag(cluster, teams, blocks, keep=3, residuals=residuals)
        # Sum over one member per group (groups duplicate data) plus residuals
        # equals the sum of all team contributions.
        total_input = np.zeros(num_elements)
        for rank, block in blocks.items():
            total_input += block.to_dense()
        groups = cross_team_groups(teams)
        total_output = np.zeros(num_elements)
        for group in groups:
            total_output += output.blocks[group[0]].to_dense()
        np.testing.assert_allclose(total_output + residuals.total_residual(), total_input,
                                   atol=1e-9)

    def test_single_team_is_noop(self):
        cluster = SimulatedCluster(4)
        teams = make_teams(4, 1)
        blocks = make_blocks(teams, 40, nnz=3)
        residuals = ResidualManager(4, 40)
        output = r_sag(cluster, teams, blocks, keep=3, residuals=residuals)
        assert cluster.stats.rounds == 0
        for rank in range(4):
            np.testing.assert_allclose(output.blocks[rank].to_dense(),
                                       blocks[rank].to_dense())


class TestBSAG:
    @pytest.mark.parametrize("num_teams", [2, 3, 7])
    def test_groups_hold_identical_blocks(self, num_teams):
        num_workers = 14 if num_teams == 7 else num_teams * 2
        cluster = SimulatedCluster(num_workers)
        teams = make_teams(num_workers, num_teams)
        blocks = make_blocks(teams, 140, nnz=5)
        residuals = ResidualManager(num_workers, 140, ResidualPolicy.GLOBAL)
        output = b_sag(cluster, teams, blocks, keep=5, h=5, residuals=residuals)
        for group in cross_team_groups(teams):
            reference = output.blocks[group[0]].to_dense()
            for rank in group[1:]:
                np.testing.assert_allclose(output.blocks[rank].to_dense(), reference)

    def test_works_for_non_power_of_two_team_counts(self):
        cluster = SimulatedCluster(6)
        teams = make_teams(6, 3)
        blocks = make_blocks(teams, 60, nnz=4)
        residuals = ResidualManager(6, 60)
        output = b_sag(cluster, teams, blocks, keep=4, h=3, residuals=residuals)
        assert all(block.nnz <= 4 for block in output.blocks.values())

    def test_h_limits_pre_exchange_size(self):
        cluster = SimulatedCluster(6)
        teams = make_teams(6, 3)
        blocks = make_blocks(teams, 60, nnz=10)
        residuals = ResidualManager(6, 60)
        h = 2
        b_sag(cluster, teams, blocks, keep=4, h=h, residuals=residuals)
        # Bruck all-gather of d=3 teams: busiest receiver gets (d-1) blocks of
        # at most h entries (2 elements each in COO form).
        assert cluster.stats.max_received <= 2 * h * 2 + 1e-9

    def test_merged_nnz_reported(self):
        cluster = SimulatedCluster(6)
        teams = make_teams(6, 3)
        blocks = make_blocks(teams, 60, nnz=4)
        residuals = ResidualManager(6, 60)
        output = b_sag(cluster, teams, blocks, keep=4, h=4, residuals=residuals)
        assert output.merged_nnz_max >= output.merged_nnz_mean > 0
        assert output.h_used == 4

    def test_conservation_with_global_residuals(self):
        num_workers, num_elements = 6, 90
        cluster = SimulatedCluster(num_workers)
        teams = make_teams(num_workers, 3)
        blocks = make_blocks(teams, num_elements, nnz=6, seed=11)
        residuals = ResidualManager(num_workers, num_elements, ResidualPolicy.GLOBAL)
        output = b_sag(cluster, teams, blocks, keep=3, h=4, residuals=residuals)
        total_input = np.zeros(num_elements)
        for block in blocks.values():
            total_input += block.to_dense()
        total_output = np.zeros(num_elements)
        for group in cross_team_groups(teams):
            total_output += output.blocks[group[0]].to_dense()
        np.testing.assert_allclose(total_output + residuals.total_residual(), total_input,
                                   atol=1e-9)

    def test_invalid_arguments(self):
        cluster = SimulatedCluster(4)
        teams = make_teams(4, 2)
        blocks = make_blocks(teams, 40, nnz=3)
        residuals = ResidualManager(4, 40)
        with pytest.raises(ValueError):
            b_sag(cluster, teams, blocks, keep=0, h=2, residuals=residuals)
        with pytest.raises(ValueError):
            b_sag(cluster, teams, blocks, keep=2, h=0, residuals=residuals)
