"""The repro.api facade: spec grammar, round-trips, and clear errors."""

from __future__ import annotations

import pytest

from repro.api import (
    SYNCHRONIZER_NAMES,
    SyncSpec,
    available_methods,
    describe,
    make,
    make_factory,
    make_synchronizer,
    parse_spec,
)
from repro.baselines.dense import DenseAllReduceSynchronizer
from repro.baselines.gtopk import GTopkSynchronizer
from repro.baselines.ok_topk import OkTopkSynchronizer
from repro.baselines.topk_a import TopkASynchronizer
from repro.baselines.topk_dsa import TopkDSASynchronizer
from repro.comm.cluster import SimulatedCluster
from repro.core.bucketed import BucketedSynchronizer
from repro.core.schedules import WarmupSchedule
from repro.core.spardl import SparDLSynchronizer
from repro.nn.models import build_mlp


class TestParseSpec:
    def test_bare_name(self):
        spec = parse_spec("dense")
        assert spec.method == "Dense"
        assert spec.canonical() == "dense"

    def test_full_spec(self):
        spec = parse_spec("spardl?density=0.01&schedule=warmup:5&buckets=layer")
        assert spec.method == "SparDL"
        assert spec.density == 0.01
        assert spec.schedule == "warmup:5"
        assert spec.buckets == "layer"

    @pytest.mark.parametrize("alias", ["oktopk", "Ok-Topk", "ok_topk", "OK-TOPK "])
    def test_aliases(self, alias):
        assert parse_spec(f"{alias.strip()}?k=10").method == "Ok-Topk"

    def test_canonical_is_stable_under_reparsing(self):
        spec = "spardl?density=0.01&teams=4&sag=bsag&schedule=warmup:5&buckets=layer"
        assert parse_spec(spec).canonical() == spec
        assert parse_spec(parse_spec(spec).canonical()).canonical() == spec

    @pytest.mark.parametrize("bad,match", [
        ("nope?k=10", "unknown synchroniser"),
        ("spardl?frobnicate=1", "unknown spec key"),
        ("spardl?density", "malformed spec parameter"),
        ("spardl?k=5&k=6", "duplicate spec key"),
        ("spardl?k=5&density=0.1", "only one of k and density"),
        ("", "empty synchroniser spec"),
    ])
    def test_malformed_specs_raise(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_spec(bad)


class TestMake:
    @pytest.mark.parametrize("spec,cls", [
        ("spardl?density=0.1", SparDLSynchronizer),
        ("ok-topk?density=0.1", OkTopkSynchronizer),
        ("topka?density=0.1", TopkASynchronizer),
        ("topkdsa?density=0.1", TopkDSASynchronizer),
        ("gtopk?density=0.1", GTopkSynchronizer),
        ("dense", DenseAllReduceSynchronizer),
    ])
    def test_builds_right_class(self, spec, cls):
        sync = make(spec, SimulatedCluster(8), num_elements=100)
        assert isinstance(sync, cls)

    def test_overrides_replace_spec_keys(self):
        sync = make("spardl?density=0.1", SimulatedCluster(8), num_elements=100,
                    teams=4, sag="rsag")
        assert sync.num_teams == 4
        assert describe(sync) == "spardl?density=0.1&teams=4&sag=rsag"

    def test_model_supplies_num_elements(self):
        model = build_mlp(8, [8], 2, seed=0)
        sync = make("spardl?density=0.1", SimulatedCluster(4), model=model)
        assert sync.num_elements == model.num_parameters()

    def test_missing_size_raises(self):
        with pytest.raises(ValueError, match="num_elements"):
            make("spardl?density=0.1", SimulatedCluster(4))

    def test_missing_sparsity_raises(self):
        with pytest.raises(ValueError, match="either k or density"):
            make("spardl", SimulatedCluster(4), num_elements=100)

    def test_gtopk_power_of_two_error_is_clear_and_early(self):
        """Satellite requirement: requesting gTopk on non-power-of-two P
        names the power-of-two requirement instead of failing mid-exchange."""
        with pytest.raises(ValueError, match="power-of-two"):
            make("gtopk?density=0.1", SimulatedCluster(14), num_elements=100)
        with pytest.raises(ValueError, match="power-of-two"):
            make_synchronizer("gTopk", SimulatedCluster(6), 100, k=10)

    def test_dense_rejects_schedule(self):
        with pytest.raises(ValueError, match="no sparsity knob"):
            make("dense?schedule=warmup:5", SimulatedCluster(4), num_elements=100)

    def test_bucketed_build(self):
        model = build_mlp(8, [8], 2, seed=0)
        sync = make("spardl?density=0.1&buckets=layer", SimulatedCluster(4), model=model)
        assert isinstance(sync, BucketedSynchronizer)
        assert sync.num_elements == model.num_parameters()


class TestDescribeRoundTrip:
    @pytest.mark.parametrize("spec", [
        "dense",
        "spardl?density=0.01",
        "spardl?k=50&teams=2",
        "spardl?density=0.01&schedule=warmup:5&buckets=layer",
        "gtopk?density=0.01&schedule=adaptive",
        "ok-topk?k=500",
        "spardl?density=0.02&wire=per-block&deferred=true",
    ])
    def test_make_then_describe_round_trips(self, spec):
        cluster = SimulatedCluster(8)
        needs_model = "buckets" in spec
        model = build_mlp(8, [8], 2, seed=0) if needs_model else None
        sync = make(spec, cluster, num_elements=None if needs_model else 200,
                    model=model)
        assert describe(sync) == spec
        assert parse_spec(describe(sync)).canonical() == spec

    def test_describe_factory_and_string(self):
        factory = make_factory("spardl?density=0.01&schedule=warmup:5")
        assert describe(factory) == "spardl?density=0.01&schedule=warmup:5"
        assert describe("SparDL?density=0.01") == "spardl?density=0.01"

    def test_describe_rejects_foreign_objects(self):
        with pytest.raises(ValueError, match="cannot describe"):
            describe(object())


class TestRegistryCompatibility:
    """The old registry interface must keep working, re-exported verbatim."""

    def test_reexports(self):
        from repro.baselines.registry import (
            SYNCHRONIZER_NAMES as reexported_names,
            available_methods as reexported_available,
            make_synchronizer as reexported_make,
        )
        assert reexported_names is SYNCHRONIZER_NAMES
        assert reexported_available is available_methods
        assert reexported_make is make_synchronizer

    def test_make_synchronizer_accepts_spec_strings(self):
        sync = make_synchronizer("spardl?density=0.01&schedule=warmup:5",
                                 SimulatedCluster(8), 1000)
        assert isinstance(sync, SparDLSynchronizer)
        assert isinstance(sync.schedule, WarmupSchedule)

    def test_make_synchronizer_kwargs_override_spec(self):
        sync = make_synchronizer("spardl?density=0.5", SimulatedCluster(8), 1000,
                                 density=0.01, num_teams=2)
        assert sync.k == 10
        assert sync.num_teams == 2

    def test_available_methods(self):
        assert "gTopk" not in available_methods(14)
        assert "gTopk" in available_methods(8)
        assert "Dense" in available_methods(8, include_dense=True)


class TestSyncSpecDataclass:
    def test_direct_construction_canonicalises_method(self):
        assert SyncSpec(method="oktopk", k=5).method == "Ok-Topk"

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown synchroniser"):
            SyncSpec(method="carrier-pigeon")
