"""Unit tests for dense layers, activations and normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    MeanOverTime,
    ReLU,
    SelectLast,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential

from tests.helpers import numerical_gradient_check


def _mse(pred, target):
    return MSELoss()(pred, target)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_forward_is_affine(self):
        layer = Linear(2, 1, rng=np.random.default_rng(0))
        layer.weight.data[...] = [[1.0], [2.0]]
        layer.bias.data[...] = [3.0]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(1)
        model = Sequential(Linear(6, 4, rng=rng), Linear(4, 2, rng=rng))
        x = rng.normal(size=(5, 6))
        y = rng.normal(size=(5, 2))
        assert numerical_gradient_check(model, x, _mse, y) < 1e-6

    def test_input_gradient_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.random.default_rng(1).normal(size=(5, 4)))
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == (5, 4)

    def test_handles_sequence_inputs(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((2, 7, 4)))
        assert out.shape == (2, 7, 3)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == (2, 7, 4)

    def test_no_bias_option(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert len([p for p in layer.parameters()]) == 1

    def test_backward_before_forward_raises(self):
        layer = Linear(4, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 3)))

    def test_gradients_accumulate(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestActivations:
    @pytest.mark.parametrize("activation", [ReLU, Tanh, Sigmoid])
    def test_gradient_check(self, activation):
        rng = np.random.default_rng(2)
        model = Sequential(Linear(5, 5, rng=rng), activation(), Linear(5, 2, rng=rng))
        x = rng.normal(size=(4, 5))
        y = rng.normal(size=(4, 2))
        assert numerical_gradient_check(model, x, _mse, y) < 1e-6

    def test_relu_zeroes_negatives(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_blocks_gradient_for_negatives(self):
        relu = ReLU()
        relu.forward(np.array([-1.0, 2.0]))
        grad = relu.backward(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(grad, [0.0, 1.0])

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([-100.0, 0.0, 100.0]))
        assert out[0] < 1e-6 and out[1] == pytest.approx(0.5) and out[2] > 1 - 1e-6


class TestFlattenAndSelectors:
    def test_flatten_round_trip(self):
        flatten = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = flatten.forward(x)
        assert out.shape == (2, 12)
        grad = flatten.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_select_last(self):
        select = SelectLast()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = select.forward(x)
        np.testing.assert_array_equal(out, x[:, -1, :])
        grad = select.backward(np.ones((2, 4)))
        assert grad[:, :-1, :].sum() == 0
        assert grad[:, -1, :].sum() == 8

    def test_mean_over_time(self):
        mean = MeanOverTime()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = mean.forward(x)
        np.testing.assert_allclose(out, x.mean(axis=1))
        grad = mean.backward(np.ones((2, 4)))
        np.testing.assert_allclose(grad, np.full((2, 3, 4), 1 / 3))


class TestDropout:
    def test_eval_mode_is_identity(self):
        dropout = Dropout(0.5, seed=0)
        dropout.training = False
        x = np.random.default_rng(0).normal(size=(10, 10))
        np.testing.assert_array_equal(dropout.forward(x), x)

    def test_training_mode_zeroes_and_scales(self):
        dropout = Dropout(0.5, seed=0)
        x = np.ones((100, 100))
        out = dropout.forward(x)
        dropped = (out == 0).mean()
        assert 0.4 < dropped < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_backward_uses_same_mask(self):
        dropout = Dropout(0.5, seed=1)
        x = np.ones((20, 20))
        out = dropout.forward(x)
        grad = dropout.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_zero_probability_is_identity(self):
        dropout = Dropout(0.0)
        x = np.ones((5, 5))
        np.testing.assert_array_equal(dropout.forward(x), x)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbedding:
    def test_lookup_shape(self):
        embedding = Embedding(10, 4, rng=np.random.default_rng(0))
        out = embedding.forward(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values(self):
        embedding = Embedding(10, 4, rng=np.random.default_rng(0))
        out = embedding.forward(np.array([[7]]))
        np.testing.assert_array_equal(out[0, 0], embedding.weight.data[7])

    def test_backward_accumulates_per_token(self):
        embedding = Embedding(10, 2, rng=np.random.default_rng(0))
        embedding.forward(np.array([[1, 1, 2]]))
        embedding.backward(np.ones((1, 3, 2)))
        np.testing.assert_allclose(embedding.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(embedding.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(embedding.weight.grad[3], [0.0, 0.0])

    def test_out_of_range_token_rejected(self):
        embedding = Embedding(10, 2)
        with pytest.raises(ValueError):
            embedding.forward(np.array([[10]]))


class TestLayerNorm:
    def test_output_is_normalised(self):
        norm = LayerNorm(8)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(4, 8))
        out = norm.forward(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_check(self):
        rng = np.random.default_rng(3)
        model = Sequential(Linear(6, 6, rng=rng), LayerNorm(6), Linear(6, 2, rng=rng))
        x = rng.normal(size=(4, 6))
        y = rng.normal(size=(4, 2))
        assert numerical_gradient_check(model, x, _mse, y) < 1e-6

    def test_works_on_sequences(self):
        norm = LayerNorm(4)
        x = np.random.default_rng(1).normal(size=(2, 3, 4))
        out = norm.forward(x)
        assert out.shape == x.shape
        grad = norm.backward(np.ones_like(out))
        assert grad.shape == x.shape
