"""Property-based tests (hypothesis) for the synchronisation algorithms.

The two invariants that every method must satisfy regardless of worker count,
gradient content or sparsity are:

* **consistency** — after synchronisation every worker holds the same global
  gradient (the prerequisite of synchronous SGD), and
* **conservation** (SparDL with GRES) — the final gradient plus all collected
  residuals equals the exact dense sum, i.e. no gradient mass is ever lost.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.spardl import SparDLSynchronizer


def _gradients(num_workers, num_elements, seed):
    return {w: np.random.default_rng(seed + w).normal(size=num_elements)
            for w in range(num_workers)}


def _divisors(value):
    return [d for d in range(1, value + 1) if value % d == 0]


class TestSparDLProperties:
    @given(num_workers=st.integers(min_value=1, max_value=16),
           num_elements=st.integers(min_value=20, max_value=400),
           density=st.sampled_from([0.005, 0.02, 0.1, 0.5]),
           seed=st.integers(min_value=0, max_value=1000),
           team_choice=st.integers(min_value=0, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_consistency_and_conservation_for_any_configuration(
            self, num_workers, num_elements, density, seed, team_choice):
        divisors = _divisors(num_workers)
        num_teams = divisors[team_choice % len(divisors)]
        cluster = SimulatedCluster(num_workers)
        config = SparDLConfig(density=density, num_teams=num_teams)
        sync = SparDLSynchronizer(cluster, num_elements, config)
        gradients = _gradients(num_workers, num_elements, seed)
        result = sync.synchronize(gradients)

        assert result.is_consistent
        reconstructed = result.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(reconstructed, sum(gradients.values()), atol=1e-7)

    @given(num_workers=st.integers(min_value=2, max_value=16),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_message_volume_never_exceeds_equation_4(self, num_workers, seed):
        """The SGA resolution property: the per-worker received volume of
        SparDL (d=1) never exceeds 4k(P-1)/P regardless of gradient content.
        The bound uses the effective k (block budget times block count), which
        can exceed the requested k by rounding when P does not divide k."""
        num_elements = 300
        k = 30
        cluster = SimulatedCluster(num_workers)
        sync = SparDLSynchronizer(cluster, num_elements, SparDLConfig(k=k))
        result = sync.synchronize(_gradients(num_workers, num_elements, seed))
        effective_k = sync.k_block * num_workers
        bound = 4 * effective_k * (num_workers - 1) / num_workers
        assert result.stats.max_received <= bound + 1e-9

    @given(seed=st.integers(min_value=0, max_value=500),
           iterations=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_multi_iteration_conservation(self, seed, iterations):
        num_workers, num_elements = 6, 150
        cluster = SimulatedCluster(num_workers)
        sync = SparDLSynchronizer(cluster, num_elements, SparDLConfig(density=0.03))
        applied = np.zeros(num_elements)
        fed = np.zeros(num_elements)
        for i in range(iterations):
            gradients = _gradients(num_workers, num_elements, seed + 37 * i)
            fed += sum(gradients.values())
            result = sync.synchronize(gradients)
            applied += result.gradient(0)
        np.testing.assert_allclose(applied + sync.residuals.total_residual(), fed, atol=1e-7)


class TestBaselineProperties:
    @given(num_workers=st.integers(min_value=1, max_value=16),
           method=st.sampled_from(["TopkA", "TopkDSA", "Ok-Topk"]),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_baselines_always_consistent(self, num_workers, method, seed):
        num_elements = 200
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer(method, cluster, num_elements, density=0.05)
        result = sync.synchronize(_gradients(num_workers, num_elements, seed))
        assert result.is_consistent

    @given(num_workers=st.sampled_from([2, 4, 8, 16]),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_gtopk_consistent_on_power_of_two(self, num_workers, seed):
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("gTopk", cluster, 200, density=0.05)
        result = sync.synchronize(_gradients(num_workers, 200, seed))
        assert result.is_consistent
        assert result.info["final_nnz"] == sync.k

    @given(num_workers=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_dense_allreduce_is_exact(self, num_workers, seed):
        num_elements = 150
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("Dense", cluster, num_elements)
        gradients = _gradients(num_workers, num_elements, seed)
        result = sync.synchronize(gradients)
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-8)

    @given(num_workers=st.integers(min_value=2, max_value=12),
           method=st.sampled_from(["SparDL", "TopkA", "TopkDSA", "Ok-Topk"]),
           seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_sparse_methods_with_k_equal_n_match_dense_sum(self, num_workers, method, seed):
        """Dense-equivalence: with k = n nothing is pruned locally, so every
        method's first synchronisation returns the exact dense sum."""
        num_elements = 60
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer(method, cluster, num_elements, k=num_elements)
        gradients = _gradients(num_workers, num_elements, seed)
        result = sync.synchronize(gradients)
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-7)
