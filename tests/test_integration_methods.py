"""Cross-method integration tests: measured costs vs Table I, end-to-end
training with every synchroniser, and the qualitative claims of the paper."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.complexity import table1
from repro.baselines.registry import available_methods, make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.training.cases import get_case
from repro.training.timing import communication_time
from repro.training.trainer import DistributedTrainer, TrainerConfig

from tests.helpers import random_gradients


class TestMeasuredVersusTableI:
    """The simulator's measured rounds/volumes against the closed forms."""

    @pytest.mark.parametrize("num_workers,k", [(8, 200), (14, 210)])
    def test_spardl_measured_matches_formula(self, num_workers, k):
        # k is chosen divisible by P so the per-block budget k/P is exact and
        # the Table I expression applies without rounding slack.
        num_elements = 2000
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("SparDL", cluster, num_elements, k=k)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        bound = table1(num_workers, num_elements, k)["SparDL"]
        assert result.stats.rounds == bound.latency_rounds
        assert result.stats.max_received <= bound.bandwidth_high + 1e-9

    @pytest.mark.parametrize("num_workers", [8, 14])
    def test_topka_measured_within_formula(self, num_workers):
        num_elements, k = 2000, 200
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("TopkA", cluster, num_elements, k=k)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        bound = table1(num_workers, num_elements, k)["TopkA"]
        assert result.stats.max_received <= bound.bandwidth_high + 1e-9
        # Fold-in/fold-out rounds are allowed on top of log2 P.
        assert result.stats.rounds <= bound.latency_rounds + 2

    def test_gtopk_measured_within_formula(self):
        num_workers, num_elements, k = 8, 2000, 200
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("gTopk", cluster, num_elements, k=k)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        bound = table1(num_workers, num_elements, k)["gTopk"]
        assert result.stats.max_received <= bound.bandwidth_high + 1e-9
        assert result.stats.rounds <= bound.latency_rounds

    @pytest.mark.parametrize("num_workers", [8, 14])
    def test_oktopk_latency_grows_linearly_with_p(self, num_workers):
        num_elements, k = 2000, 200
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("Ok-Topk", cluster, num_elements, k=k)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        bound = table1(num_workers, num_elements, k)["Ok-Topk"]
        assert result.stats.rounds >= 2 * (num_workers - 1)
        assert result.stats.rounds <= bound.latency_rounds + num_workers

    def test_spardl_latency_below_oktopk_and_topkdsa(self):
        num_workers, num_elements, k = 14, 2000, 200
        rounds = {}
        for method in ("SparDL", "Ok-Topk", "TopkDSA"):
            cluster = SimulatedCluster(num_workers)
            sync = make_synchronizer(method, cluster, num_elements, k=k)
            result = sync.synchronize(random_gradients(num_workers, num_elements))
            rounds[method] = result.stats.rounds
        assert rounds["SparDL"] < rounds["Ok-Topk"]
        assert rounds["SparDL"] < rounds["TopkDSA"]

    def test_spardl_bandwidth_below_topka(self):
        num_workers, num_elements, k = 14, 4000, 400
        volumes = {}
        for method in ("SparDL", "TopkA"):
            cluster = SimulatedCluster(num_workers)
            sync = make_synchronizer(method, cluster, num_elements, k=k)
            result = sync.synchronize(random_gradients(num_workers, num_elements))
            volumes[method] = result.stats.max_received
        assert volumes["SparDL"] < volumes["TopkA"]


class TestPaperTimingClaims:
    """Fig. 8-style claim: priced at the paper's model scale, SparDL has the
    lowest communication time of all sparse methods."""

    @pytest.mark.parametrize("num_workers", [8, 14])
    def test_spardl_fastest_at_paper_scale(self, num_workers):
        num_elements = 5000
        density = 0.01
        case = get_case(2)  # VGG-19 profile
        scale = case.compute_profile.volume_scale(num_elements)
        times = {}
        for method in available_methods(num_workers):
            cluster = SimulatedCluster(num_workers)
            sync = make_synchronizer(method, cluster, num_elements, density=density)
            result = sync.synchronize(random_gradients(num_workers, num_elements))
            times[method] = communication_time(result.stats, ETHERNET, scale)
        assert min(times, key=times.get) == "SparDL"

    def test_oktopk_is_the_strongest_baseline(self):
        """As in the paper, Ok-Topk beats TopkA and TopkDSA (but not SparDL)."""
        num_workers, num_elements, density = 14, 5000, 0.01
        case = get_case(2)
        scale = case.compute_profile.volume_scale(num_elements)
        times = {}
        for method in ("SparDL", "Ok-Topk", "TopkA", "TopkDSA"):
            cluster = SimulatedCluster(num_workers)
            sync = make_synchronizer(method, cluster, num_elements, density=density)
            result = sync.synchronize(random_gradients(num_workers, num_elements))
            times[method] = communication_time(result.stats, ETHERNET, scale)
        assert times["SparDL"] < times["Ok-Topk"] < times["TopkDSA"]
        assert times["Ok-Topk"] < times["TopkA"]


class TestEndToEndTraining:
    @pytest.mark.parametrize("method", ["SparDL", "Ok-Topk", "TopkA", "TopkDSA", "gTopk"])
    def test_every_method_trains_and_keeps_replicas_consistent(self, method):
        case = get_case(5)
        train, test = case.build_datasets(num_samples=48, seed=0)
        cluster = SimulatedCluster(4)
        num_elements = case.build_model(0).num_parameters()
        sync = make_synchronizer(method, cluster, num_elements, density=0.02)
        trainer = DistributedTrainer(
            cluster, sync, case.build_model, train, test,
            config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                                 momentum=case.momentum, seed=0, check_consistency=True),
            compute_profile=case.compute_profile,
        )
        history = trainer.train(1)
        assert len(history.epochs) == 1
        assert np.isfinite(history.epochs[0].train_loss)

    def test_spardl_with_teams_trains(self):
        case = get_case(5)
        train, test = case.build_datasets(num_samples=48, seed=0)
        cluster = SimulatedCluster(4)
        num_elements = case.build_model(0).num_parameters()
        sync = make_synchronizer("SparDL", cluster, num_elements, density=0.02,
                                 num_teams=2)
        trainer = DistributedTrainer(
            cluster, sync, case.build_model, train, test,
            config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                                 momentum=case.momentum, seed=0, check_consistency=True),
            compute_profile=case.compute_profile,
        )
        history = trainer.train(1)
        assert np.isfinite(history.epochs[0].eval_loss)

    def test_sparse_training_approaches_dense_training(self):
        """Convergence sanity: sparse SparDL training reaches a loss in the
        same ballpark as dense training after the same number of epochs."""
        case = get_case(5)
        train, test = case.build_datasets(num_samples=96, seed=1)
        losses = {}
        for method, kwargs in (("Dense", {}), ("SparDL", {"density": 0.05})):
            cluster = SimulatedCluster(4)
            num_elements = case.build_model(0).num_parameters()
            sync = make_synchronizer(method, cluster, num_elements, **kwargs)
            trainer = DistributedTrainer(
                cluster, sync, case.build_model, train, test,
                config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                                     momentum=case.momentum, seed=0),
                compute_profile=case.compute_profile,
            )
            history = trainer.train(6, eval_every=6)
            losses[method] = history.epochs[-1].eval_loss
        assert losses["SparDL"] < losses["Dense"] * 3 + 0.5
