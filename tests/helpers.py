"""Shared helpers for the test-suite."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.parameter import assign_flat_values, flatten_gradients, flatten_values

__all__ = ["random_gradients", "numerical_gradient_check", "max_relative_error"]


def random_gradients(num_workers: int, num_elements: int, seed: int = 0,
                     scale: float = 1.0) -> Dict[int, np.ndarray]:
    """Per-worker dense gradients with distinct seeds (deterministic)."""
    return {
        worker: scale * np.random.default_rng(seed + worker).normal(size=num_elements)
        for worker in range(num_workers)
    }


def max_relative_error(a: np.ndarray, b: np.ndarray, floor: float = 1e-6) -> float:
    """Element-wise relative error with an absolute floor to ignore noise on
    near-zero entries."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), floor)
    return float((np.abs(a - b) / denom).max())


def numerical_gradient_check(model: Module, inputs: np.ndarray,
                             loss_fn: Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]],
                             targets: np.ndarray, *, eps: float = 1e-6,
                             num_checks: int = 20, seed: int = 0) -> float:
    """Compare analytic parameter gradients against central finite differences.

    Returns the maximum absolute difference over ``num_checks`` randomly
    sampled parameters (absolute, because tiny-gradient entries make relative
    errors meaningless).
    """
    model.eval()
    outputs = model.forward(inputs)
    _, grad_output = loss_fn(outputs, targets)
    model.zero_grad()
    model.backward(grad_output)

    parameters = model.parameters()
    analytic = flatten_gradients(parameters)
    values = flatten_values(parameters)
    rng = np.random.default_rng(seed)
    picks = rng.choice(values.size, size=min(num_checks, values.size), replace=False)

    worst = 0.0
    for index in picks:
        original = values[index]
        values[index] = original + eps
        assign_flat_values(parameters, values)
        loss_plus, _ = loss_fn(model.forward(inputs), targets)
        values[index] = original - eps
        assign_flat_values(parameters, values)
        loss_minus, _ = loss_fn(model.forward(inputs), targets)
        values[index] = original
        assign_flat_values(parameters, values)
        numeric = (loss_plus - loss_minus) / (2.0 * eps)
        worst = max(worst, abs(numeric - analytic[index]))
    return worst
