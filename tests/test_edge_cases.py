"""Edge-case and robustness tests across the library.

These cover behaviours not exercised by the per-module unit tests: degenerate
gradient content (zeros, single spikes, constant ties), extreme sparsity,
tiny clusters, repeated-use determinism, and label/reporting details that the
benchmarks rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import spardl_complexity, table1
from repro.baselines.registry import available_methods, make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET
from repro.core.config import SAGMode, SparDLConfig
from repro.core.spardl import SparDLSynchronizer
from repro.training.timing import communication_time

from tests.helpers import random_gradients


class TestDegenerateGradients:
    @pytest.mark.parametrize("method", ["SparDL", "TopkA", "TopkDSA", "Ok-Topk"])
    def test_all_zero_gradients(self, method):
        """All-zero gradients synchronise to all-zero without errors."""
        cluster = SimulatedCluster(4)
        sync = make_synchronizer(method, cluster, 100, k=10)
        result = sync.synchronize({w: np.zeros(100) for w in range(4)})
        assert result.is_consistent
        np.testing.assert_allclose(result.gradient(0), np.zeros(100))

    def test_single_spike_gradient_survives_spardl(self):
        """A single huge coordinate is never dropped by SparDL's selections."""
        num_workers, num_elements = 6, 300
        cluster = SimulatedCluster(num_workers)
        sync = SparDLSynchronizer(cluster, num_elements, SparDLConfig(k=6))
        gradients = {w: np.zeros(num_elements) for w in range(num_workers)}
        for w in range(num_workers):
            gradients[w][137] = 100.0 + w
        result = sync.synchronize(gradients)
        expected = sum(g[137] for g in gradients.values())
        assert result.gradient(0)[137] == pytest.approx(expected)

    def test_constant_gradients_tie_breaking_is_consistent(self):
        """All-equal magnitudes are a worst case for top-k tie breaking; every
        worker must still end with identical gradients."""
        cluster = SimulatedCluster(5)
        sync = SparDLSynchronizer(cluster, 200, SparDLConfig(k=20))
        result = sync.synchronize({w: np.ones(200) for w in range(5)})
        assert result.is_consistent

    def test_extreme_sparsity_keeps_at_least_one_per_block(self):
        cluster = SimulatedCluster(8)
        sync = SparDLSynchronizer(cluster, 10_000, SparDLConfig(density=1e-5))
        result = sync.synchronize(random_gradients(8, 10_000))
        assert result.is_consistent
        assert result.info["final_nnz"] >= 1

    def test_gradient_smaller_than_worker_count(self):
        """More workers than gradient entries: blocks may be empty but the
        synchronisation still completes consistently."""
        cluster = SimulatedCluster(8)
        sync = SparDLSynchronizer(cluster, 5, SparDLConfig(k=5))
        gradients = random_gradients(8, 5)
        result = sync.synchronize(gradients)
        assert result.is_consistent
        np.testing.assert_allclose(result.gradient(0), sum(gradients.values()), atol=1e-9)


class TestTwoWorkerCluster:
    @pytest.mark.parametrize("method", ["SparDL", "TopkA", "TopkDSA", "Ok-Topk", "gTopk"])
    def test_two_workers_consistent(self, method):
        cluster = SimulatedCluster(2)
        sync = make_synchronizer(method, cluster, 150, k=15)
        result = sync.synchronize(random_gradients(2, 150))
        assert result.is_consistent

    def test_two_workers_spardl_single_round_each_phase(self):
        cluster = SimulatedCluster(2)
        sync = make_synchronizer("SparDL", cluster, 150, k=15)
        result = sync.synchronize(random_gradients(2, 150))
        assert result.stats.rounds == 2  # one SRS step + one All-Gather step


class TestDeterminism:
    def test_repeated_synchronisation_of_same_input_is_identical(self):
        gradients = random_gradients(6, 200, seed=3)
        outputs = []
        for _ in range(2):
            cluster = SimulatedCluster(6)
            sync = SparDLSynchronizer(cluster, 200, SparDLConfig(density=0.05))
            result = sync.synchronize({k: v.copy() for k, v in gradients.items()})
            outputs.append(result.gradient(0))
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_bsag_controller_state_is_per_synchronizer(self):
        gradients = random_gradients(6, 300, seed=1)
        cluster_a = SimulatedCluster(6)
        sync_a = SparDLSynchronizer(cluster_a, 300,
                                    SparDLConfig(density=0.05, num_teams=3, sag_mode="bsag"))
        cluster_b = SimulatedCluster(6)
        sync_b = SparDLSynchronizer(cluster_b, 300,
                                    SparDLConfig(density=0.05, num_teams=3, sag_mode="bsag"))
        sync_a.synchronize({k: v.copy() for k, v in gradients.items()})
        assert len(sync_a.controller.history) == 1
        assert len(sync_b.controller.history) == 0


class TestMethodAvailabilityAndLabels:
    def test_every_available_method_runs_on_its_cluster(self):
        for num_workers in (3, 4, 14):
            for method in available_methods(num_workers, include_dense=True):
                cluster = SimulatedCluster(num_workers)
                sync = make_synchronizer(method, cluster, 120, density=0.1)
                result = sync.synchronize(random_gradients(num_workers, 120))
                assert result.is_consistent, f"{method} on P={num_workers}"

    def test_spardl_name_reflects_configuration(self):
        cluster = SimulatedCluster(8)
        sync = make_synchronizer("SparDL", cluster, 100, density=0.01, num_teams=4,
                                 sag_mode=SAGMode.RSAG)
        assert "RSAG" in sync.name and "d=4" in sync.name

    def test_table1_and_measurement_share_units(self):
        """Predicted time from Table I and measured simulated time are in the
        same ballpark for SparDL (both count COO elements)."""
        num_workers, num_elements, k = 8, 2000, 200
        cluster = SimulatedCluster(num_workers)
        sync = make_synchronizer("SparDL", cluster, num_elements, k=k)
        result = sync.synchronize(random_gradients(num_workers, num_elements))
        measured = communication_time(result.stats, ETHERNET)
        predicted = spardl_complexity(num_workers, num_elements, k).time(
            ETHERNET.alpha, ETHERNET.beta)
        assert 0.3 * predicted <= measured <= 3.0 * predicted

    def test_table1_rows_have_unique_method_names(self):
        rows = table1(14, 10_000, 100, d=7)
        assert len(rows) == len({bound.method for bound in rows.values()})
