"""Unit tests for Module, Parameter and gradient flattening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.module import Identity, Module, Sequential
from repro.nn.parameter import (
    Parameter,
    assign_flat_gradients,
    assign_flat_values,
    flatten_gradients,
    flatten_values,
    parameter_count,
)


class TestParameter:
    def test_grad_initialised_to_zero(self):
        parameter = Parameter(np.ones((2, 3)), name="w")
        assert parameter.grad.shape == (2, 3)
        assert parameter.grad.sum() == 0.0

    def test_zero_grad(self):
        parameter = Parameter(np.ones(3))
        parameter.grad += 5.0
        parameter.zero_grad()
        assert parameter.grad.sum() == 0.0

    def test_copy_from(self):
        a = Parameter(np.zeros(3))
        b = Parameter(np.ones(3))
        a.copy_from(b)
        np.testing.assert_array_equal(a.data, b.data)

    def test_copy_from_shape_mismatch(self):
        a = Parameter(np.zeros(3))
        b = Parameter(np.ones(4))
        with pytest.raises(ValueError):
            a.copy_from(b)

    def test_size_and_shape(self):
        parameter = Parameter(np.zeros((2, 5)))
        assert parameter.size == 10
        assert parameter.shape == (2, 5)


class TestFlattening:
    def _params(self):
        return [Parameter(np.arange(4.0).reshape(2, 2), "a"), Parameter(np.ones(3), "b")]

    def test_parameter_count(self):
        assert parameter_count(self._params()) == 7

    def test_flatten_values_concatenates(self):
        flat = flatten_values(self._params())
        np.testing.assert_array_equal(flat, [0, 1, 2, 3, 1, 1, 1])

    def test_flatten_empty(self):
        assert flatten_values([]).size == 0
        assert flatten_gradients([]).size == 0

    def test_assign_flat_values_round_trip(self):
        params = self._params()
        flat = flatten_values(params) * 2
        assign_flat_values(params, flat)
        np.testing.assert_array_equal(flatten_values(params), flat)

    def test_assign_flat_gradients_round_trip(self):
        params = self._params()
        grads = np.arange(7.0)
        assign_flat_gradients(params, grads)
        np.testing.assert_array_equal(flatten_gradients(params), grads)
        assert params[0].grad.shape == (2, 2)

    def test_assign_wrong_size_raises(self):
        with pytest.raises(ValueError):
            assign_flat_values(self._params(), np.zeros(5))


class _Composite(Module):
    """A module with nested children and a parameter list attribute."""

    def __init__(self):
        super().__init__()
        self.head = Linear(4, 4, rng=np.random.default_rng(0))
        self.blocks = [Linear(4, 4, rng=np.random.default_rng(1)), ReLU()]
        self.extra = Parameter(np.zeros(3), "extra")

    def forward(self, inputs):
        out = self.head(inputs)
        for block in self.blocks:
            out = block(out)
        return out

    def backward(self, grad):
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.head.backward(grad)


class TestModule:
    def test_parameters_found_recursively_and_in_lists(self):
        module = _Composite()
        names = {p.name for p in module.parameters()}
        assert "extra" in names
        assert len(module.parameters()) == 5  # 2 linear layers x (W, b) + extra

    def test_num_parameters(self):
        module = _Composite()
        assert module.num_parameters() == 4 * 4 + 4 + 4 * 4 + 4 + 3

    def test_modules_iterates_descendants(self):
        module = _Composite()
        assert len(list(module.modules())) == 4  # self, head, linear, relu

    def test_zero_grad_clears_all(self):
        module = _Composite()
        for parameter in module.parameters():
            parameter.grad += 1.0
        module.zero_grad()
        assert all(p.grad.sum() == 0.0 for p in module.parameters())

    def test_train_eval_propagates(self):
        module = _Composite()
        module.eval()
        assert all(not m.training for m in module.modules())
        module.train()
        assert all(m.training for m in module.modules())

    def test_copy_parameters_from(self):
        a = _Composite()
        b = _Composite()
        for parameter in b.parameters():
            parameter.data += 1.0
        a.copy_parameters_from(b)
        np.testing.assert_array_equal(flatten_values(a.parameters()),
                                      flatten_values(b.parameters()))

    def test_copy_parameters_mismatch_raises(self):
        a = _Composite()
        b = Sequential(Linear(2, 2))
        with pytest.raises(ValueError):
            a.copy_parameters_from(b)


class TestSequential:
    def test_forward_backward_chain(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        x = rng.normal(size=(4, 3))
        out = model(x)
        assert out.shape == (4, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_len_getitem_append(self):
        model = Sequential(Identity())
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_identity_passthrough(self):
        layer = Identity()
        x = np.arange(4.0)
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)
