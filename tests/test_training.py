"""Unit tests for timing, metrics, cases and the distributed trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import make_synchronizer
from repro.comm.cluster import SimulatedCluster
from repro.comm.network import ETHERNET, PERFECT, NetworkProfile
from repro.comm.stats import CommStats
from repro.data.datasets import TaskType
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.parameter import flatten_values
from repro.training.cases import CASES, get_case
from repro.training.metrics import EpochRecord, IterationRecord, TrainingHistory
from repro.training.timing import ComputeProfile, communication_time, iteration_time
from repro.training.trainer import (
    DistributedTrainer,
    TrainerConfig,
    default_loss_for_task,
    default_metric_for_task,
)


class TestComputeProfile:
    def test_volume_scale(self):
        profile = ComputeProfile(compute_time_per_update=0.1, paper_parameters=1e7)
        assert profile.volume_scale(1e5) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeProfile(compute_time_per_update=-1.0, paper_parameters=1e6)
        with pytest.raises(ValueError):
            ComputeProfile(compute_time_per_update=0.1, paper_parameters=0)
        profile = ComputeProfile(0.1, 1e6)
        with pytest.raises(ValueError):
            profile.volume_scale(0)


class TestTimingFunctions:
    def _stats(self):
        stats = CommStats(num_workers=2)
        stats.record_round([(0, 1, 100.0)])
        stats.record_round([(1, 0, 50.0)])
        return stats

    def test_communication_time(self):
        network = NetworkProfile("n", alpha=1.0, beta=0.01)
        assert communication_time(self._stats(), network) == pytest.approx(2.0 + 1.5)

    def test_volume_scale_multiplies_bandwidth_only(self):
        network = NetworkProfile("n", alpha=1.0, beta=0.01)
        scaled = communication_time(self._stats(), network, volume_scale=10.0)
        assert scaled == pytest.approx(2.0 + 15.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            communication_time(self._stats(), ETHERNET, volume_scale=0.0)

    def test_iteration_time_combines_compute_and_comm(self):
        profile = ComputeProfile(compute_time_per_update=0.5, paper_parameters=1000)
        timing = iteration_time(self._stats(), NetworkProfile("n", alpha=1.0, beta=0.0),
                                profile, model_parameters=1000)
        assert timing.compute_time == 0.5
        assert timing.communication_time == pytest.approx(2.0)
        assert timing.total == pytest.approx(2.5)


class TestTrainingHistory:
    def _history(self):
        history = TrainingHistory(method="SparDL", case="test")
        for i in range(4):
            history.add_iteration(IterationRecord(iteration=i, epoch=i // 2, loss=1.0 - 0.1 * i,
                                                  compute_time=0.1, communication_time=0.2))
        history.add_epoch(EpochRecord(epoch=0, train_loss=1.0, eval_loss=0.9, eval_metric=0.5,
                                      metric_name="accuracy", epoch_time=0.6,
                                      cumulative_time=0.6, communication_time=0.4,
                                      compute_time=0.2))
        history.add_epoch(EpochRecord(epoch=1, train_loss=0.8, eval_loss=0.7, eval_metric=0.8,
                                      metric_name="accuracy", epoch_time=0.6,
                                      cumulative_time=1.2, communication_time=0.4,
                                      compute_time=0.2))
        return history

    def test_totals(self):
        history = self._history()
        assert history.total_time == pytest.approx(1.2)
        assert history.total_communication_time == pytest.approx(0.8)
        assert history.total_compute_time == pytest.approx(0.4)

    def test_means(self):
        history = self._history()
        assert history.mean_iteration_time() == pytest.approx(0.3)
        assert history.mean_communication_time() == pytest.approx(0.2)

    def test_final_metric_and_loss(self):
        history = self._history()
        assert history.final_metric == 0.8
        assert history.final_eval_loss == 0.7

    def test_time_to_metric(self):
        history = self._history()
        assert history.time_to_metric(0.75) == pytest.approx(1.2)
        assert history.time_to_metric(0.95) is None
        # With lower-is-better, 0.5 at epoch 0 already satisfies a 0.71 target.
        assert history.time_to_metric(0.71, higher_is_better=False) == pytest.approx(0.6)
        assert history.time_to_metric(0.1, higher_is_better=False) is None

    def test_metric_curve(self):
        curve = self._history().metric_curve()
        assert curve["time"] == [0.6, 1.2]
        assert curve["metric"] == [0.5, 0.8]

    def test_empty_history_raises(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            history.final_metric
        with pytest.raises(ValueError):
            history.mean_iteration_time()


class TestCases:
    def test_all_seven_cases_defined(self):
        assert sorted(CASES) == [1, 2, 3, 4, 5, 6, 7]

    def test_get_case_unknown(self):
        with pytest.raises(ValueError):
            get_case(9)

    @pytest.mark.parametrize("case_id", [1, 2, 3, 4, 5, 6, 7])
    def test_case_models_and_data_are_compatible(self, case_id):
        case = get_case(case_id)
        model = case.build_model(seed=0)
        train, test = case.build_datasets(num_samples=32, seed=0)
        loss = default_loss_for_task(case.task)
        outputs = model.forward(train.inputs[:4])
        value, grad = loss(outputs, train.targets[:4])
        assert np.isfinite(value)
        model.backward(grad)

    def test_paper_parameters_match_table(self):
        assert get_case(1).compute_profile.paper_parameters == pytest.approx(14.7e6)
        assert get_case(7).compute_profile.paper_parameters == pytest.approx(133.5e6)

    def test_case_descriptions(self):
        assert "VGG-16" in get_case(1).describe()
        assert "BERT" in get_case(7).describe()

    def test_default_loss_and_metric_for_task(self):
        assert isinstance(default_loss_for_task(TaskType.IMAGE_REGRESSION), MSELoss)
        assert isinstance(default_loss_for_task(TaskType.MASKED_LM), CrossEntropyLoss)
        assert default_metric_for_task(TaskType.IMAGE_CLASSIFICATION) == ("accuracy", True)
        assert default_metric_for_task(TaskType.LANGUAGE_MODELING) == ("loss", False)


def _build_trainer(method="SparDL", num_workers=4, case_id=5, samples=64, epochs_seed=0,
                   check_consistency=False, **sync_kwargs):
    case = get_case(case_id)
    train, test = case.build_datasets(num_samples=samples, seed=epochs_seed)
    cluster = SimulatedCluster(num_workers)
    num_elements = case.build_model(0).num_parameters()
    sync_kwargs.setdefault("density", 0.02)
    if method == "Dense":
        sync_kwargs = {}
    sync = make_synchronizer(method, cluster, num_elements, **sync_kwargs)
    config = TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                           momentum=case.momentum, seed=0,
                           check_consistency=check_consistency)
    return DistributedTrainer(cluster, sync, case.build_model, train, test,
                              config=config, compute_profile=case.compute_profile,
                              case_name=case.name)


class TestDistributedTrainer:
    def test_replicas_start_identical(self):
        trainer = _build_trainer()
        reference = flatten_values(trainer.replicas[0].parameters())
        for replica in trainer.replicas[1:]:
            np.testing.assert_array_equal(flatten_values(replica.parameters()), reference)

    def test_replicas_stay_identical_after_training(self):
        trainer = _build_trainer(check_consistency=True)
        trainer.train(1)
        reference = flatten_values(trainer.replicas[0].parameters())
        for replica in trainer.replicas[1:]:
            np.testing.assert_allclose(flatten_values(replica.parameters()), reference)

    def test_history_records_iterations_and_epochs(self):
        trainer = _build_trainer()
        history = trainer.train(2)
        assert len(history.epochs) == 2
        steps_per_epoch = min(-(-len(shard) // 8) for shard in trainer.shards)
        assert len(history.iterations) == 2 * steps_per_epoch

    def test_simulated_time_accumulates(self):
        trainer = _build_trainer()
        history = trainer.train(1)
        assert history.total_time > 0
        assert history.total_communication_time > 0
        assert history.total_compute_time > 0

    def test_eval_every_controls_evaluation(self):
        trainer = _build_trainer()
        history = trainer.train(2, eval_every=2)
        assert np.isnan(history.epochs[0].eval_metric)
        assert not np.isnan(history.epochs[1].eval_metric)

    def test_training_reduces_loss(self):
        trainer = _build_trainer(method="Dense", samples=96)
        history = trainer.train(4)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_num_elements_mismatch_raises(self):
        case = get_case(5)
        train, test = case.build_datasets(num_samples=32, seed=0)
        cluster = SimulatedCluster(2)
        sync = make_synchronizer("SparDL", cluster, 123, density=0.1)
        with pytest.raises(ValueError):
            DistributedTrainer(cluster, sync, case.build_model, train, test,
                               config=TrainerConfig(batch_size=8))

    def test_invalid_epoch_count(self):
        trainer = _build_trainer()
        with pytest.raises(ValueError):
            trainer.train(0)

    def test_evaluate_returns_loss_and_metric(self):
        trainer = _build_trainer()
        loss, metric = trainer.evaluate()
        assert np.isfinite(loss)
        assert 0.0 <= metric <= 1.0 or np.isfinite(metric)

    def test_regression_case_uses_loss_metric(self):
        trainer = _build_trainer(case_id=4, samples=48)
        assert trainer.metric_name == "loss"
        assert not trainer.higher_is_better

    def test_network_profile_affects_time(self):
        slow = _build_trainer()
        slow.network = ETHERNET
        fast = _build_trainer()
        fast.network = PERFECT
        slow_hist = slow.train(1)
        fast_hist = fast.train(1)
        assert slow_hist.total_communication_time > fast_hist.total_communication_time == 0.0
