"""End-to-end SparDL coverage for non-power-of-two team sizes.

The bag partitioning of Section III-B is subtlest when the team size ``m``
is not a power of two (the last sending bag is only partially filled, and
transmission distances are not symmetric).  These tests run the *full*
synchroniser at team sizes 3, 5, 6 and 7 and assert the three properties
Theorem 1 and the residual analysis guarantee:

* every bag a worker sends is a subset of the blocks the receiver still
  holds (checked statically via :func:`held_blocks_before_step`, and
  dynamically by SRS itself, which raises on violation);
* all workers finish with identical sparse gradients (index-set agreement);
* no gradient mass is lost (final gradient + residuals == exact dense sum).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.cluster import SimulatedCluster
from repro.core.config import SparDLConfig
from repro.core.partition import held_blocks_before_step, plan_bags, transmission_distances
from repro.core.spardl import SparDLSynchronizer

from tests.helpers import random_gradients

TEAM_SIZES = [3, 5, 6, 7]


class TestTheorem1BagInvariants:
    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    def test_sent_bags_are_subsets_of_receiver_held_blocks(self, team_size):
        """Theorem 1: at step ``i`` the bag travelling from the worker at
        distance ``2^(l-i)`` behind is always a subset of what the receiver
        still holds."""
        distances = transmission_distances(team_size)
        for receiver in range(team_size):
            for step, distance in enumerate(distances, start=1):
                sender = (receiver - distance) % team_size
                sent = set(plan_bags(sender, team_size).bag_for_step(step))
                held = held_blocks_before_step(receiver, team_size, step)
                assert sent <= held, (
                    f"m={team_size} step={step}: sender {sender} ships {sent} "
                    f"but receiver {receiver} holds only {held}"
                )

    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    def test_every_block_leaves_exactly_once(self, team_size):
        for worker in range(team_size):
            plan = plan_bags(worker, team_size)
            shipped = [b for bag in plan.sending_bags for b in bag]
            assert sorted(shipped + [plan.preserved]) == list(range(team_size))


class TestNonPowerOfTwoEndToEnd:
    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    @pytest.mark.parametrize("num_teams", [1, 2])
    def test_full_sync_agreement_and_conservation(self, team_size, num_teams):
        num_workers = team_size * num_teams
        num_elements = 60 * team_size
        cluster = SimulatedCluster(num_workers)
        config = SparDLConfig(density=0.05, num_teams=num_teams)
        sync = SparDLSynchronizer(cluster, num_elements, config)
        gradients = random_gradients(num_workers, num_elements, seed=team_size)

        # SRS itself raises on any Theorem 1 violation, so a completed sync
        # doubles as the dynamic invariant check.
        result = sync.synchronize(gradients)

        # Index-set agreement: every worker holds the same non-zero support.
        reference_support = set(np.flatnonzero(result.gradient(0)).tolist())
        for rank in range(1, num_workers):
            support = set(np.flatnonzero(result.gradient(rank)).tolist())
            assert support == reference_support
        assert result.is_consistent

        # Residual conservation.
        reconstructed = result.gradient(0) + sync.residuals.total_residual()
        np.testing.assert_allclose(reconstructed, sum(gradients.values()), atol=1e-8)

    @pytest.mark.parametrize("team_size", TEAM_SIZES)
    def test_conservation_across_iterations(self, team_size):
        num_workers, num_elements = team_size, 40 * team_size
        cluster = SimulatedCluster(num_workers)
        sync = SparDLSynchronizer(cluster, num_elements, SparDLConfig(density=0.03))
        applied = np.zeros(num_elements)
        fed = np.zeros(num_elements)
        for iteration in range(3):
            gradients = random_gradients(num_workers, num_elements,
                                         seed=100 * team_size + iteration)
            fed += sum(gradients.values())
            result = sync.synchronize(gradients)
            applied += result.gradient(0)
            np.testing.assert_allclose(applied + sync.residuals.total_residual(),
                                       fed, atol=1e-8)
