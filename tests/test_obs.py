"""The observability subsystem: tracing, metrics, export and the wiring.

Covers the `repro.obs` package itself (levels, registry, Chrome export,
validation), every seam it is wired into (pipeline stage spans, transport
message events, fault/membership markers, trainer spans, the mp backend's
per-rank streams), the `trace=` facade key, and the two contracts the PR
rides on: `trace=off` is bit-identical to the untraced library, and stage
hooks that raise are contained (counted + warned once).
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import FaultPlan, MembershipEvent, SimulatedCluster, SyncSession
from repro.api import describe, make, make_factory, parse_spec
from repro.obs import (
    DRIVER_PID,
    SIM_PID,
    MetricsRegistry,
    TraceLevel,
    Tracer,
    attach_tracer,
    replay_iteration_timing,
    validate_chrome_trace,
    worker_pid,
)

ALL_METHODS = ["spardl", "topka", "topkdsa", "gtopk", "ok-topk", "dense"]


def grads_for(cluster, n, step=0):
    return {rank: np.random.default_rng(1000 * step + rank).normal(size=n)
            for rank in cluster.ranks}


# ---------------------------------------------------------------------------
# TraceLevel
# ---------------------------------------------------------------------------
class TestTraceLevel:
    def test_coerce_names_and_identity(self):
        assert TraceLevel.coerce("off") is TraceLevel.OFF
        assert TraceLevel.coerce(" Steps ") is TraceLevel.STEPS
        assert TraceLevel.coerce("COMM") is TraceLevel.COMM
        assert TraceLevel.coerce(TraceLevel.COMM) is TraceLevel.COMM

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="off|steps|comm"):
            TraceLevel.coerce("verbose")

    def test_levels_order(self):
        assert TraceLevel.OFF < TraceLevel.STEPS < TraceLevel.COMM
        assert not Tracer("steps").wants_comm
        assert Tracer("comm").wants_comm
        assert Tracer("steps").enabled and Tracer("comm").enabled


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("messages", tag="srs").inc(2)
        registry.counter("messages", tag="srs").inc()
        registry.counter("messages", tag="sag").inc()
        registry.gauge("k").set(40)
        registry.histogram("size").observe(4.0)
        registry.histogram("size").observe(8.0)
        snap = registry.snapshot()
        assert snap["messages{tag=srs}"] == 3.0
        assert snap["messages{tag=sag}"] == 1.0
        assert snap["k"] == 40.0
        assert snap["size"]["count"] == 2
        assert snap["size"]["mean"] == pytest.approx(6.0)
        assert snap["size"]["min"] == 4.0 and snap["size"]["max"] == 8.0

    def test_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        registry.counter("m", a=1, b=2).inc()
        registry.counter("m", b=2, a=1).inc()
        assert registry.snapshot()["m{a=1,b=2}"] == 2.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ValueError, match="x"):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_summary_table_lists_every_series(self):
        registry = MetricsRegistry()
        registry.counter("alpha").inc()
        registry.histogram("beta").observe(1.0)
        table = registry.summary_table()
        assert "alpha" in table and "beta" in table


# ---------------------------------------------------------------------------
# Tracer + Chrome export + validation
# ---------------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_records_children_first(self):
        tracer = Tracer("steps")
        with tracer.span("outer", "iteration"):
            with tracer.span("inner", "stage"):
                tracer.instant("mark", "retry")
        names = [event.name for event in tracer.events]
        assert names == ["mark", "inner", "outer"]
        outer = tracer.events[2]
        inner = tracer.events[1]
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 0.5

    def test_export_validates_and_round_trips(self, tmp_path):
        tracer = Tracer("comm")
        with tracer.span("step", "iteration"):
            tracer.record_message(0, 1, 16.0, "srs")
        path = tmp_path / "trace.json"
        document = tracer.export_chrome(path)
        assert json.loads(path.read_text()) == document
        for source in (path, document, path.read_text()):
            info = validate_chrome_trace(source)
            assert info["spans"] == 1 and info["instants"] == 1
            assert info["categories"] == ["iteration", "message"]
            assert info["pids"] == [DRIVER_PID]

    def test_export_includes_track_metadata(self):
        tracer = Tracer("steps")
        tracer.instant("m", "membership")
        events = tracer.export_chrome()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "driver (wall clock)"

    def test_record_message_levels(self):
        steps = Tracer("steps")
        steps.record_message(0, 1, 4.0, "srs")
        assert len(steps) == 0  # counters only below comm level
        assert steps.snapshot()["messages_total{tag=srs}"] == 1.0
        comm = Tracer("comm")
        comm.record_message(0, 1, 4.0, "srs")
        assert [e.cat for e in comm.events] == ["message"]
        assert comm.events[0].args["size"] == 4.0

    def test_merge_stream_adds_foreign_track(self):
        tracer = Tracer("comm")
        merged = tracer.merge_stream(worker_pid(1), [
            {"name": "exchange", "cat": "worker", "ph": "X",
             "ts": 10.0, "dur": 5.0}], name="mp worker 1")
        assert merged == 1
        document = tracer.export_chrome()
        assert validate_chrome_trace(document)["pids"] == [worker_pid(1)]
        names = {e["pid"]: e["args"]["name"]
                 for e in document["traceEvents"] if e["ph"] == "M"}
        assert names[worker_pid(1)] == "mp worker 1"

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError, match="malformed"):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ph": "i", "ts": -5.0}]})
        # Overlapping-but-not-nested spans on one track are a violation.
        with pytest.raises(ValueError, match="nest"):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "cat": "c", "ph": "X", "ts": 0.0, "dur": 10.0},
                {"name": "b", "cat": "c", "ph": "X", "ts": 5.0, "dur": 10.0},
            ]})
        # The same two spans on different tracks are fine.
        info = validate_chrome_trace({"traceEvents": [
            {"name": "a", "cat": "c", "ph": "X", "ts": 0.0, "dur": 10.0,
             "tid": 0},
            {"name": "b", "cat": "c", "ph": "X", "ts": 5.0, "dur": 10.0,
             "tid": 1},
        ]})
        assert info["spans"] == 2

    def test_close_is_idempotent_and_runs_collectors(self):
        tracer = Tracer("steps")
        calls = []
        tracer.add_collector(lambda: calls.append(1))
        tracer.close()
        tracer.close()
        assert calls == [1]


# ---------------------------------------------------------------------------
# pipeline wiring: stage spans, facade key, trace=off bit-identity
# ---------------------------------------------------------------------------
class TestPipelineTracing:
    def test_traced_step_emits_stage_and_step_spans(self):
        sync = make("spardl?density=0.02&trace=steps", SimulatedCluster(4),
                    num_elements=400)
        session = SyncSession(sync)
        session.step(grads_for(sync.cluster, 400))
        stage_names = [e.name for e in sync.tracer.events if e.cat == "stage"]
        assert stage_names == ["select", "compress", "exchange", "combine",
                               "residual_update"]
        step = [e for e in sync.tracer.events if e.cat == "iteration"]
        assert len(step) == 1 and step[0].args["k"] == 8
        snap = sync.tracer.snapshot()
        assert snap["steps_total{method=SparDL(k/n=0.02)}"] == 1.0
        assert snap["resolved_k"] == 8.0
        # steps level records no per-message instants, but counts them.
        assert not any(e.cat == "message" for e in sync.tracer.events)
        assert any(key.startswith("messages_total{") for key in snap)

    def test_comm_level_message_instants_carry_wire_sizes(self):
        sync = make("spardl?density=0.02&trace=comm", SimulatedCluster(4),
                    num_elements=400)
        session = SyncSession(sync)
        result = session.step(grads_for(sync.cluster, 400))
        messages = [e for e in sync.tracer.events if e.cat == "message"]
        assert len(messages) == result.stats.total_messages
        assert sum(e.args["size"] for e in messages) == pytest.approx(
            result.stats.total_volume)

    def test_bucketed_sessions_get_labelled_nested_spans(self, tmp_path):
        from repro.nn.models import build_mlp
        model = build_mlp(20, [16], 4, seed=0)
        sync = make("spardl?density=0.05&buckets=layer&trace=steps",
                    SimulatedCluster(4), model=model)
        session = SyncSession(sync)
        n = model.num_parameters()
        session.step(grads_for(sync.cluster, n))
        labels = {e.name for e in sync.tracer.events if e.cat == "iteration"}
        # One outer step span plus one labelled span per bucket.
        assert "step" in labels
        for index in range(sync.num_buckets):
            assert f"step:b{index}" in labels
        # The whole timeline still nests properly.
        validate_chrome_trace(sync.tracer.export_chrome(tmp_path / "t.json"))

    def test_spec_round_trips_and_rejects_bad_levels(self):
        assert parse_spec("spardl?density=0.01&trace=comm").trace == "comm"
        assert "trace=comm" in parse_spec("spardl?density=0.01&trace=COMM").canonical()
        assert "trace" not in parse_spec("spardl?density=0.01&trace=off").canonical()
        with pytest.raises(ValueError, match="trace level"):
            parse_spec("spardl?trace=loud")
        sync = make("spardl?density=0.02&trace=steps", SimulatedCluster(4),
                    num_elements=400)
        assert describe(sync) == "spardl?density=0.02&trace=steps"

    def test_trace_off_builds_no_tracer(self):
        sync = make("spardl?density=0.02", SimulatedCluster(4), num_elements=400)
        assert sync.tracer is None
        assert sync.cluster.tracer is None
        assert SyncSession(sync).tracer is None

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_traced_runs_are_bit_identical_to_untraced(self, method):
        """trace=comm must observe without participating: gradients,
        residual stores and CommStats match the untraced run bit for bit,
        for SparDL and every baseline."""
        n = 400
        spec = f"{method}?density=0.05" if method != "dense" else "dense"
        runs = {}
        for trace in ("off", "comm"):
            cluster = SimulatedCluster(4)
            suffix = "" if trace == "off" else (
                "&trace=comm" if "?" in spec else "?trace=comm")
            sync = make(spec + suffix, cluster, num_elements=n)
            session = SyncSession(sync)
            results = [session.step(grads_for(cluster, n, step))
                       for step in range(3)]
            residuals = getattr(sync, "residuals", None)
            runs[trace] = (results, session.cumulative_stats,
                           None if residuals is None
                           else residuals.total_residual())
        off_results, off_stats, off_residual = runs["off"]
        comm_results, comm_stats, comm_residual = runs["comm"]
        for off, comm in zip(off_results, comm_results):
            for rank in off.global_gradients:
                np.testing.assert_array_equal(off.global_gradients[rank],
                                              comm.global_gradients[rank])
        assert off_stats.rounds == comm_stats.rounds
        assert off_stats.total_messages == comm_stats.total_messages
        assert off_stats.received_per_worker == comm_stats.received_per_worker
        assert off_stats.per_round_received == comm_stats.per_round_received
        if off_residual is not None:
            np.testing.assert_array_equal(off_residual, comm_residual)


# ---------------------------------------------------------------------------
# hook hardening (satellite): raising hooks are contained
# ---------------------------------------------------------------------------
class TestStageHookHardening:
    def _session(self, trace="off"):
        spec = "spardl?density=0.02" + ("" if trace == "off"
                                        else f"&trace={trace}")
        sync = make(spec, SimulatedCluster(4), num_elements=400)
        return SyncSession(sync)

    def test_raising_hook_is_contained_counted_and_warned_once(self):
        session = self._session()
        seen = []

        def bad_hook(stage, context):
            seen.append(stage)
            raise RuntimeError("observer exploded")

        session.add_stage_hook(bad_hook)
        with pytest.warns(RuntimeWarning, match="observer exploded"):
            result = session.step(grads_for(session.synchronizer.cluster, 400))
        assert result.is_consistent
        assert session.hook_errors == 5  # one per stage
        assert len(seen) == 5
        # Second step: errors keep counting, but no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session.step(grads_for(session.synchronizer.cluster, 400, step=1))
        assert session.hook_errors == 10
        assert session.summary()["hook_errors"] == 10

    def test_raising_hook_does_not_poison_later_hooks(self):
        session = self._session()
        calls = []
        session.add_stage_hook(lambda stage, ctx: (_ for _ in ()).throw(ValueError))
        session.add_stage_hook(lambda stage, ctx: calls.append(stage))
        with pytest.warns(RuntimeWarning):
            session.step(grads_for(session.synchronizer.cluster, 400))
        assert len(calls) == 5

    def test_hook_errors_metric_counts_under_tracing(self):
        session = self._session(trace="steps")
        session.add_stage_hook(lambda stage, ctx: (_ for _ in ()).throw(ValueError))
        with pytest.warns(RuntimeWarning):
            session.step(grads_for(session.synchronizer.cluster, 400))
        assert session.tracer.snapshot()["hook_errors"] == 5.0

    def test_result_matches_hookless_run_bitwise(self):
        clean = self._session()
        hooked = self._session()
        hooked.add_stage_hook(lambda stage, ctx: (_ for _ in ()).throw(OSError))
        reference = clean.step(grads_for(clean.synchronizer.cluster, 400))
        with pytest.warns(RuntimeWarning):
            damaged = hooked.step(grads_for(hooked.synchronizer.cluster, 400))
        np.testing.assert_array_equal(reference.gradient(0), damaged.gradient(0))


# ---------------------------------------------------------------------------
# fault and membership markers
# ---------------------------------------------------------------------------
class TestFaultAndMembershipMarkers:
    def test_drop_plan_emits_retry_markers_at_comm_level(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(seed=3, drop_rate=0.3))
        sync = make("spardl?density=0.05&trace=comm", cluster, num_elements=400)
        session = SyncSession(sync)
        for step in range(3):
            session.step(grads_for(cluster, 400, step))
        kinds = {e.name for e in sync.tracer.events if e.cat == "retry"}
        assert "drop" in kinds and "retry" in kinds
        snap = sync.tracer.snapshot()
        assert snap["fault_events_total{kind=drop}"] >= 1
        assert snap["fault_events_total{kind=drop}"] == float(
            session.cumulative_stats.dropped_messages)

    def test_steps_level_counts_faults_without_markers(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(seed=3, drop_rate=0.3))
        sync = make("spardl?density=0.05&trace=steps", cluster, num_elements=400)
        SyncSession(sync).step(grads_for(cluster, 400))
        assert not any(e.cat == "retry" for e in sync.tracer.events)
        assert any(key.startswith("fault_events_total{")
                   for key in sync.tracer.snapshot())

    def test_membership_transitions_emit_instants(self):
        cluster = SimulatedCluster(4)
        cluster.install_fault_plan(FaultPlan(events=(
            MembershipEvent(1, "crash", worker=2), MembershipEvent(2, "join"))))
        sync = make("spardl?density=0.05&trace=steps", cluster, num_elements=300)
        session = SyncSession(sync)
        for step in range(3):
            session.poll_membership()
            session.step(grads_for(cluster, 300, step))
        marks = [e for e in sync.tracer.events if e.cat == "membership"]
        assert [(e.name, e.args["old_workers"], e.args["new_workers"])
                for e in marks] == [("crash", 4, 3), ("join", 3, 4)]
        snap = sync.tracer.snapshot()
        assert snap["membership_events_total{kind=crash}"] == 1.0
        assert snap["membership_events_total{kind=join}"] == 1.0


# ---------------------------------------------------------------------------
# trainer wiring + overlap replay
# ---------------------------------------------------------------------------
def _build_trainer(trace="off", spec="spardl?density=0.05", **config_kwargs):
    from repro.training.cases import get_case
    from repro.training.trainer import DistributedTrainer, TrainerConfig

    case = get_case(5)
    train, test = case.build_datasets(num_samples=32, seed=0)
    return DistributedTrainer(
        SimulatedCluster(4), make_factory(spec), case.build_model, train, test,
        config=TrainerConfig(batch_size=8, seed=0, trace=trace, **config_kwargs),
        compute_profile=case.compute_profile,
    )


class TestTrainerTracing:
    def test_trace_off_keeps_trainer_untouched(self):
        trainer = _build_trainer("off")
        assert trainer.tracer is None
        assert trainer.session.tracer is None

    def test_trainer_builds_tracer_and_emits_epoch_iteration_spans(self, tmp_path):
        trainer = _build_trainer("steps")
        assert trainer.tracer is not None
        trainer.train(1)
        cats = {e.cat for e in trainer.tracer.events}
        assert {"iteration", "stage", "compute", "overlap"} <= cats
        names = {e.name for e in trainer.tracer.events if e.cat == "iteration"}
        assert "epoch 0" in names and "iteration" in names and "step" in names
        validate_chrome_trace(trainer.tracer.export_chrome(tmp_path / "t.json"))

    def test_spec_tracer_is_adopted_not_replaced(self):
        trainer = _build_trainer("off", spec="spardl?density=0.05&trace=comm")
        assert trainer.tracer is trainer.synchronizer.tracer
        assert trainer.tracer.wants_comm

    def test_overlap_replay_renders_hidden_and_exposed_comm(self):
        trainer = _build_trainer("steps",
                                 spec="spardl?density=0.05&buckets=layer",
                                 overlap_comm=True)
        history = trainer.train(1)
        sim = [e for e in trainer.tracer.events if e.pid == SIM_PID]
        assert sim, "the simulated timeline must be replayed onto SIM_PID"
        kinds = {e.args.get("kind") for e in sim if e.ph == "X"}
        assert "backward" in kinds
        hidden = sum(e.dur for e in sim if e.args.get("kind") == "hidden") / 1e6
        assert hidden == pytest.approx(history.total_hidden_comm_time, rel=1e-6)
        snap = trainer.tracer.snapshot()
        assert snap["sim_hidden_comm_s"] == pytest.approx(
            history.total_hidden_comm_time)
        assert snap["sim_iteration_s"]["sum"] == pytest.approx(
            history.total_time)

    def test_sim_track_spans_nest(self, tmp_path):
        trainer = _build_trainer("steps",
                                 spec="spardl?density=0.05&buckets=layer")
        trainer.train(1)
        info = validate_chrome_trace(trainer.tracer.export_chrome(
            tmp_path / "sim.json"))
        assert SIM_PID in info["pids"]


# ---------------------------------------------------------------------------
# replay unit behaviour (no trainer needed)
# ---------------------------------------------------------------------------
class TestReplayUnit:
    def test_flat_timing_renders_sequential_compute_then_comm(self):
        from repro.training.timing import IterationTiming

        tracer = Tracer("steps")
        timing = IterationTiming(compute_time=2.0, communication_time=1.0)
        replay_iteration_timing(tracer, timing, iteration=0)
        spans = [e for e in tracer.events if e.ph == "X"]
        assert [e.name for e in spans] == ["compute", "comm (exposed)"]
        assert spans[0].dur == pytest.approx(2e6)
        assert spans[1].ts == pytest.approx(spans[0].ts + spans[0].dur)
        assert tracer.sim_cursor_us == pytest.approx(3e6)

    def test_disabled_tracer_is_noop(self):
        from repro.training.timing import IterationTiming

        timing = IterationTiming(compute_time=1.0, communication_time=1.0)
        replay_iteration_timing(None, timing, iteration=0)  # must not raise


# ---------------------------------------------------------------------------
# multiprocess backend: per-rank streams
# ---------------------------------------------------------------------------
class TestMultiprocessStreams:
    def test_mp_trace_merges_worker_streams(self, tmp_path):
        sync = make("spardl?density=0.05&backend=mp:2&trace=comm",
                    num_elements=600)
        try:
            session = SyncSession(sync)
            for step in range(2):
                session.step(grads_for(sync.cluster, 600, step))
        finally:
            sync.cluster.close()
        document = sync.tracer.export_chrome(tmp_path / "mp.json")
        info = validate_chrome_trace(document)
        assert worker_pid(0) in info["pids"] and worker_pid(1) in info["pids"]
        worker_events = [e for e in document["traceEvents"]
                         if e.get("pid") == worker_pid(0) and e.get("ph") == "X"]
        assert worker_events
        assert all(e["ts"] >= 0 for e in worker_events)

    def test_mp_trace_off_runs_untraced(self):
        sync = make("spardl?density=0.05&backend=mp:2", num_elements=600)
        try:
            assert sync.tracer is None
            result = SyncSession(sync).step(grads_for(sync.cluster, 600))
            assert result.is_consistent
        finally:
            sync.cluster.close()
