"""Unit tests for report formatting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import (
    ExperimentReport,
    Series,
    format_series,
    format_table,
    speedup_table,
)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["method", "time"], [["SparDL", 0.12345], ["Ok-Topk", 0.5]])
        assert "method" in text and "SparDL" in text and "Ok-Topk" in text

    def test_floats_formatted(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="Table I")
        assert text.startswith("Table I")

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 2]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) or len(lines[0]) <= len(lines[2])


class TestSeries:
    def test_append_and_final(self):
        series = Series("SparDL")
        series.append(1.0, 0.5)
        series.append(2.0, 0.75)
        assert series.final() == (2.0, 0.75)
        assert len(series) == 2

    def test_final_on_empty_raises(self):
        with pytest.raises(ValueError):
            Series("x").final()

    def test_format_series_samples_points(self):
        series = Series("acc")
        for i in range(100):
            series.append(i, i / 100)
        text = format_series([series], x_label="time", y_label="accuracy", max_points=5)
        assert "acc" in text
        assert text.count("\n") < 30

    def test_format_series_empty(self):
        text = format_series([Series("empty")])
        assert "empty" in text


class TestSpeedupTable:
    def test_speedups_relative_to_reference(self):
        text = speedup_table({"SparDL": 1.0, "Ok-Topk": 2.0}, reference="Ok-Topk")
        assert "2" in text  # SparDL is 2x faster than the reference

    def test_unknown_reference_raises(self):
        with pytest.raises(ValueError):
            speedup_table({"a": 1.0}, reference="b")

    def test_rows_sorted_fastest_first(self):
        text = speedup_table({"slow": 3.0, "fast": 1.0, "mid": 2.0}, reference="slow")
        lines = text.splitlines()
        assert lines[2].startswith("fast")


class TestExperimentReport:
    def test_render_includes_sections(self):
        report = ExperimentReport("Fig. 8", description="per-update time")
        report.add_table(["method", "time"], [["SparDL", 0.1]])
        report.add_text("note")
        text = report.render()
        assert "Fig. 8" in text and "per-update time" in text
        assert "SparDL" in text and "note" in text

    def test_add_series(self):
        report = ExperimentReport("Fig. 9")
        series = Series("SparDL")
        series.append(0, 0.1)
        report.add_series([series], x_label="t", y_label="acc")
        assert "SparDL" in report.render()
