"""Unit tests for losses, metrics, optimisers and schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.losses import CrossEntropyLoss, MSELoss, accuracy, perplexity
from repro.nn.module import Sequential
from repro.nn.optim import SGD, ConstantLRSchedule, StepLRSchedule
from repro.nn.parameter import Parameter, flatten_values


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        targets = np.arange(4) % 10
        loss, _ = loss_fn(logits, targets)
        assert loss == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero_loss(self):
        loss_fn = CrossEntropyLoss()
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss, _ = loss_fn(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[1.0, 2.0, 3.0]])
        targets = np.array([0])
        _, grad = loss_fn(logits, targets)
        exp = np.exp(logits - logits.max())
        probabilities = exp / exp.sum()
        expected = probabilities.copy()
        expected[0, 0] -= 1.0
        np.testing.assert_allclose(grad, expected)

    def test_gradient_numerical_check(self):
        rng = np.random.default_rng(0)
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(3, 5))
        targets = rng.integers(0, 5, size=3)
        _, grad = loss_fn(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                logits[i, j] += eps
                plus, _ = loss_fn(logits, targets)
                logits[i, j] -= 2 * eps
                minus, _ = loss_fn(logits, targets)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-6)

    def test_sequence_logits_supported(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((2, 4, 6))
        targets = np.zeros((2, 4), dtype=int)
        loss, grad = loss_fn(logits, targets)
        assert grad.shape == logits.shape
        assert loss == pytest.approx(np.log(6))

    def test_ignore_index_masks_positions(self):
        loss_fn = CrossEntropyLoss(ignore_index=-1)
        logits = np.zeros((1, 3, 4))
        logits[0, 0, 2] = 100.0  # ignored position would otherwise dominate
        targets = np.array([[-1, 1, 1]])
        loss, grad = loss_fn(logits, targets)
        assert loss == pytest.approx(np.log(4))
        np.testing.assert_array_equal(grad[0, 0], np.zeros(4))

    def test_all_ignored_gives_zero(self):
        loss_fn = CrossEntropyLoss(ignore_index=-1)
        loss, grad = loss_fn(np.zeros((1, 2, 3)), np.full((1, 2), -1))
        assert loss == 0.0
        assert grad.sum() == 0.0

    def test_target_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestMSE:
    def test_zero_for_exact_prediction(self):
        loss, grad = MSELoss()(np.ones((2, 1)), np.ones((2, 1)))
        assert loss == 0.0
        assert grad.sum() == 0.0

    def test_value_and_gradient(self):
        predictions = np.array([[1.0], [3.0]])
        targets = np.array([[0.0], [0.0]])
        loss, grad = MSELoss()(predictions, targets)
        assert loss == pytest.approx(5.0)
        np.testing.assert_allclose(grad, [[1.0], [3.0]])

    def test_accepts_flat_targets(self):
        loss, _ = MSELoss()(np.zeros((3, 1)), np.zeros(3))
        assert loss == 0.0


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0], [0.0, 1.0]])
        targets = np.array([1, 0, 0])
        assert accuracy(logits, targets) == pytest.approx(2 / 3)

    def test_accuracy_with_ignore_index(self):
        logits = np.zeros((1, 2, 3))
        logits[0, :, 0] = 1.0
        targets = np.array([[0, -1]])
        assert accuracy(logits, targets) == 1.0

    def test_accuracy_all_ignored(self):
        assert accuracy(np.zeros((1, 1, 2)), np.array([[-1]])) == 0.0

    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(np.log(10)) == pytest.approx(10.0)
        assert np.isfinite(perplexity(1e6))


class TestSGD:
    def test_vanilla_update(self):
        parameter = Parameter(np.array([1.0, 2.0]))
        parameter.grad[...] = [0.5, 0.5]
        SGD([parameter], learning_rate=0.1).step()
        np.testing.assert_allclose(parameter.data, [0.95, 1.95])

    def test_momentum_accumulates(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], learning_rate=1.0, momentum=0.5)
        parameter.grad[...] = [1.0]
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [-1.0])
        parameter.grad[...] = [1.0]
        optimizer.step()
        # velocity = 0.5*1 + 1 = 1.5
        np.testing.assert_allclose(parameter.data, [-2.5])

    def test_weight_decay(self):
        parameter = Parameter(np.array([1.0]))
        parameter.grad[...] = [0.0]
        SGD([parameter], learning_rate=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(parameter.data, [1.0 - 0.1 * 0.5])

    def test_flat_gradient_is_scattered(self):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
        optimizer = SGD(model.parameters(), learning_rate=1.0)
        before = flatten_values(model.parameters())
        flat = np.ones(model.num_parameters())
        optimizer.step(flat_gradient=flat)
        after = flatten_values(model.parameters())
        np.testing.assert_allclose(after, before - 1.0)

    def test_learning_rate_override(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], learning_rate=1.0)
        parameter.grad[...] = [1.0]
        optimizer.step(learning_rate=0.1)
        np.testing.assert_allclose(parameter.data, [-0.1])

    def test_zero_grad(self):
        parameter = Parameter(np.array([0.0]))
        parameter.grad[...] = [1.0]
        SGD([parameter]).zero_grad()
        assert parameter.grad.sum() == 0.0

    def test_invalid_hyper_parameters(self):
        parameter = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([parameter], learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD([parameter], momentum=1.0)
        with pytest.raises(ValueError):
            SGD([parameter], weight_decay=-0.1)

    def test_reduces_loss_on_quadratic(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = SGD([parameter], learning_rate=0.1, momentum=0.5)
        for _ in range(100):
            parameter.grad[...] = 2 * parameter.data  # d/dx x^2
            optimizer.step()
        assert abs(parameter.data[0]) < 1e-3


class TestSchedules:
    def test_constant(self):
        schedule = ConstantLRSchedule(0.1)
        assert schedule.at_epoch(0) == schedule.at_epoch(100) == 0.1

    def test_step_decay(self):
        schedule = StepLRSchedule(1.0, step_epochs=80, gamma=0.1)
        assert schedule.at_epoch(0) == 1.0
        assert schedule.at_epoch(79) == 1.0
        assert schedule.at_epoch(80) == pytest.approx(0.1)
        assert schedule.at_epoch(160) == pytest.approx(0.01)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantLRSchedule(0.0)
        with pytest.raises(ValueError):
            StepLRSchedule(1.0, step_epochs=0)
        with pytest.raises(ValueError):
            StepLRSchedule(1.0, step_epochs=10, gamma=0.0)
