"""Cross-backend equivalence gate and transport-protocol tests.

The multiprocess backend must be indistinguishable from the simulated
reference everywhere the algorithms can observe: synchronised gradients,
residual stores and communication accounting, bit for bit, for SparDL and
every baseline — including quantized wire formats.  These tests are the
gate; ``benchmarks/perf/bench_backends.py`` re-asserts a subset before
timing anything.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import describe, make, parse_spec
from repro.comm import (
    Message,
    MultiprocessCluster,
    SimulatedCluster,
    Transport,
    UnsupportedTransportFeature,
    make_transport,
    parse_backend_spec,
    transport_spec,
)
from repro.comm.faults import FaultPlan
from repro.comm.mp_backend import _CKERNELS_ENV
from repro.data.synthetic import synthetic_image_classification
from repro.data.datasets import train_test_split
from repro.nn.models import build_mlp
from repro.training.trainer import DistributedTrainer, TrainerConfig

from tests.helpers import random_gradients

NUM_ELEMENTS = 300
ITERATIONS = 3

#: The equivalence matrix: SparDL variants (teams, quantized, deferred,
#: per-block wire) and all five baselines.
EQUIVALENCE_SPECS = [
    "spardl?density=0.02",
    "spardl?density=0.02&teams=2",
    "spardl?density=0.02&bits=8",
    "spardl?density=0.02&deferred=true",
    "spardl?density=0.02&wire=per-block",
    "ok-topk?density=0.02",
    "topka?density=0.02",
    "topkdsa?density=0.02",
    "gtopk?density=0.02",
    "dense",
    "dense?bits=4",
]


def _run_trace(spec: str, cluster: Transport):
    """Synchronise ITERATIONS steps and record everything observable."""
    sync = make(spec, cluster, num_elements=NUM_ELEMENTS)
    trace = []
    for iteration in range(ITERATIONS):
        gradients = random_gradients(cluster.num_workers, NUM_ELEMENTS,
                                     seed=17 * iteration + 1)
        result = sync.synchronize(gradients)
        residuals = getattr(sync, "residuals", None)
        trace.append({
            "gradients": {worker: np.asarray(result.gradient(worker))
                          for worker in cluster.ranks},
            "residuals": {
                worker: residuals.store(worker).peek()
                for worker in cluster.ranks
            } if residuals is not None else None,
            "rounds": result.stats.rounds,
            "messages": result.stats.total_messages,
            "volume": result.stats.total_volume,
            "sent": list(result.stats.sent_per_worker),
            "received": list(result.stats.received_per_worker),
        })
    return trace


@pytest.mark.parametrize("num_workers", [2, 4])
@pytest.mark.parametrize("spec", EQUIVALENCE_SPECS)
def test_mp_backend_is_bit_identical_to_sim(spec, num_workers):
    with SimulatedCluster(num_workers) as sim:
        reference = _run_trace(spec, sim)
    with MultiprocessCluster(num_workers) as mp:
        measured = _run_trace(spec, mp)
    for step, (want, got) in enumerate(zip(reference, measured)):
        for worker in range(num_workers):
            assert np.array_equal(want["gradients"][worker],
                                  got["gradients"][worker]), \
                f"step {step}, worker {worker}: global gradients diverged"
        if want["residuals"] is not None:
            for worker in range(num_workers):
                assert np.array_equal(want["residuals"][worker],
                                      got["residuals"][worker]), \
                    f"step {step}, worker {worker}: residual stores diverged"
        for key in ("rounds", "messages", "volume", "sent", "received"):
            assert want[key] == got[key], f"step {step}: stats[{key}] diverged"


# ---------------------------------------------------------------------------
# read-only payload discipline across the process boundary (satellite)
# ---------------------------------------------------------------------------
def _assert_all_readonly(payload):
    if isinstance(payload, np.ndarray):
        assert not payload.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            payload[...] = 0.0
    elif isinstance(payload, (list, tuple)):
        for item in payload:
            _assert_all_readonly(item)


@pytest.mark.parametrize("backend", ["sim", "mp"])
def test_payloads_arrive_readonly_including_nested(backend):
    nested = [np.arange(4.0), (np.ones(3), [np.zeros(2), np.full(2, 7.0)])]
    with make_transport(backend, num_workers=2) as cluster:
        inboxes = cluster.exchange([
            Message(src=0, dst=1, payload=np.arange(5.0)),
            Message(src=1, dst=0, payload=nested),
        ])
        _assert_all_readonly(inboxes[1][0].payload)
        _assert_all_readonly(inboxes[0][0].payload)
        # The nested structure survives the trip intact.
        received = inboxes[0][0].payload
        assert np.array_equal(received[0], np.arange(4.0))
        assert np.array_equal(received[1][1][1], np.full(2, 7.0))
    # The sender's own arrays stay writable: freezing delivers views
    # (sim) or copies (mp), never mutates the source.
    nested[0][0] = 99.0


def test_mp_payload_is_a_copy_not_a_view():
    source = np.arange(6.0)
    with MultiprocessCluster(2) as mp:
        inboxes = mp.exchange([Message(src=0, dst=1, payload=source)])
        received = inboxes[1][0].payload
        assert np.array_equal(received, source)
        assert not np.shares_memory(received, source)


# ---------------------------------------------------------------------------
# sendrecv tagging (satellite)
# ---------------------------------------------------------------------------
def test_sendrecv_default_tag_and_shape():
    with SimulatedCluster(3) as cluster:
        captured = []
        original = cluster.exchange

        def spy(messages):
            captured.extend(messages)
            return original(messages)

        cluster.exchange = spy
        result = cluster.sendrecv({0: (1, 1.0), 2: (1, 2.0)})
        assert all(message.tag == "sendrecv" for message in captured)
        assert result == {1: {0: 1.0, 2: 2.0}}


def test_sendrecv_custom_tag_separates_fault_fates():
    # FaultPlan keys each message fate by (round, attempt, src, dst, tag):
    # the same pair in the same round draws independent fates per tag.
    plan = FaultPlan(seed=5, drop_rate=0.5)
    fates = {
        tag: plan.message_fate(0, 1, 0, 1, tag)
        for tag in ("sendrecv", "a", "b", "c", "d", "e", "f", "g")
    }
    assert len(set(fates.values())) > 1


def test_sendrecv_works_on_mp_backend():
    with MultiprocessCluster(2) as mp:
        result = mp.sendrecv({0: (1, np.arange(3.0)), 1: (0, np.arange(2.0))},
                             tag="pairwise")
        assert np.array_equal(result[1][0], np.arange(3.0))
        assert np.array_equal(result[0][1], np.arange(2.0))


# ---------------------------------------------------------------------------
# capabilities
# ---------------------------------------------------------------------------
def test_capability_flags():
    with SimulatedCluster(2) as sim, MultiprocessCluster(2) as mp:
        assert sim.capabilities.fault_injection
        assert not sim.capabilities.parallel_workers
        assert not sim.capabilities.real_processes
        assert not mp.capabilities.fault_injection
        assert mp.capabilities.wire_pricing
        assert mp.capabilities.worker_compute
        assert mp.capabilities.parallel_workers
        assert mp.capabilities.real_processes


def test_mp_rejects_fault_plans_but_clears_them():
    with MultiprocessCluster(2) as mp:
        assert mp.install_fault_plan(None) is None  # clearing is universal
        with pytest.raises(UnsupportedTransportFeature):
            mp.install_fault_plan(FaultPlan(seed=0, drop_rate=0.1))
        assert mp.fault_plan is None
        assert mp.drain_lost() == []


def _seed_draw_task(context, rank):
    return float(np.random.default_rng(context["seed_sequence"]).normal())


def test_worker_seed_streams_match_across_backends():
    with SimulatedCluster(3) as sim, MultiprocessCluster(3) as mp:
        reference = sim.run_workers(_seed_draw_task)
        measured = mp.run_workers(_seed_draw_task)
    assert reference == measured


def _pid_task(context, rank):
    return os.getpid()


def test_mp_workers_are_real_processes():
    with MultiprocessCluster(2) as mp:
        pids = mp.run_workers(_pid_task)
    assert os.getpid() not in pids.values()
    assert pids[0] != pids[1]


def _env_task(context, rank):
    return os.environ.get(_CKERNELS_ENV, "")


def test_kernel_env_propagates_into_workers(monkeypatch):
    monkeypatch.setenv(_CKERNELS_ENV, "1")
    with MultiprocessCluster(2) as mp:
        values = mp.run_workers(_env_task)
    assert values == {0: "1", 1: "1"}


def _kernel_probe_task(context, rank):
    from repro.sparse import compiled_kernels_available
    return compiled_kernels_available()


def test_kernel_handshake_reports_worker_state():
    # Construction already performs the parent/worker kernel handshake;
    # reaching here with live workers means it agreed.
    from repro.sparse import compiled_kernels_available

    with MultiprocessCluster(2) as mp:
        states = mp.run_workers(_kernel_probe_task)
    assert set(states.values()) == {compiled_kernels_available()}


# ---------------------------------------------------------------------------
# lifecycle and deadlock containment
# ---------------------------------------------------------------------------
def test_mp_close_is_idempotent_and_use_after_close_raises():
    mp = MultiprocessCluster(2)
    mp.close()
    mp.close()
    with pytest.raises(RuntimeError, match="closed"):
        mp.exchange([Message(src=0, dst=1, payload=1.0)])


def _failing_task(context, rank):
    raise ValueError(f"boom on rank {rank}")


def test_worker_exception_propagates_and_tears_down():
    mp = MultiprocessCluster(2)
    with pytest.raises(RuntimeError, match="boom on rank"):
        mp.run_workers(_failing_task)
    with pytest.raises(RuntimeError, match="closed"):
        mp.run_workers(_pid_task)


def test_mp_resize_restarts_worker_pool():
    with MultiprocessCluster(2) as mp:
        before = mp.run_workers(_pid_task)
        mp.resize(3)
        after = mp.run_workers(_pid_task)
        assert mp.num_workers == 3
        assert len(after) == 3
        assert set(before.values()).isdisjoint(after.values())


# ---------------------------------------------------------------------------
# backend spec strings
# ---------------------------------------------------------------------------
def test_parse_backend_spec():
    assert parse_backend_spec("sim") == ("sim", None)
    assert parse_backend_spec("mp:4") == ("mp", 4)
    assert parse_backend_spec("SIM:2") == ("sim", 2)
    for bad in ("tcp", "mp:", "mp:zero", "mp:0", "mp:-1"):
        with pytest.raises(ValueError):
            parse_backend_spec(bad)


def test_make_transport_round_trips():
    with make_transport("mp:2") as mp:
        assert isinstance(mp, MultiprocessCluster)
        assert transport_spec(mp) == "mp:2"
    sim = make_transport("sim", num_workers=5)
    assert isinstance(sim, SimulatedCluster)
    assert transport_spec(sim) == "sim:5"
    with pytest.raises(ValueError):
        make_transport("mp")  # no worker count anywhere
    with pytest.raises(ValueError):
        make_transport("mp:2", num_workers=3)  # contradictory counts


def test_api_backend_key_builds_the_transport():
    sync = make("spardl?density=0.05&backend=mp:2", num_elements=NUM_ELEMENTS)
    try:
        assert isinstance(sync.cluster, MultiprocessCluster)
        assert sync.cluster.num_workers == 2
        assert describe(sync) == "spardl?density=0.05&backend=mp:2"
        result = sync.synchronize(random_gradients(2, NUM_ELEMENTS, seed=3))
        assert result.is_consistent
    finally:
        sync.cluster.close()


def test_api_backend_key_round_trips_through_describe():
    spec = "spardl?density=0.01&backend=mp:4"
    assert parse_spec(spec).canonical() == spec
    assert describe(spec) == spec
    assert parse_spec(describe(spec)) == parse_spec(spec)


def test_api_backend_without_worker_count_needs_a_cluster():
    with pytest.raises(ValueError, match="worker count"):
        make("dense?backend=mp", num_elements=NUM_ELEMENTS)
    with SimulatedCluster(3) as sim:
        sync = make("dense?backend=sim", sim, num_elements=NUM_ELEMENTS)
        assert sync.cluster is sim
        # describe() records the *effective* backend, with its worker count.
        assert describe(sync) == "dense?backend=sim:3"


def test_api_backend_key_must_agree_with_passed_cluster():
    with SimulatedCluster(2) as sim:
        with pytest.raises(ValueError, match="backend"):
            make("dense?backend=mp:2", sim, num_elements=NUM_ELEMENTS)
        with pytest.raises(ValueError, match="backend"):
            make("dense?backend=sim:4", sim, num_elements=NUM_ELEMENTS)


def test_api_without_backend_or_cluster_fails_loudly():
    with pytest.raises(ValueError, match="cluster"):
        make("dense", num_elements=NUM_ELEMENTS)


def test_describe_keeps_sim_specs_unchanged():
    with SimulatedCluster(2) as sim:
        sync = make("spardl?density=0.05", sim, num_elements=NUM_ELEMENTS)
        assert describe(sync) == "spardl?density=0.05"


# ---------------------------------------------------------------------------
# trainer compute modes
# ---------------------------------------------------------------------------
def _trainer(cluster, **config_overrides):
    dataset = synthetic_image_classification(num_samples=48, num_classes=4,
                                             image_size=4, channels=1,
                                             seed=11)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=11)

    def model_factory(seed):
        from repro.nn.layers import Flatten
        from repro.nn.module import Sequential
        return Sequential(Flatten(),
                          *build_mlp(input_dim=16, hidden_dims=[8],
                                     num_outputs=4, seed=seed).layers)

    from repro.api import make_factory
    config = TrainerConfig(batch_size=8, learning_rate=0.05, seed=7,
                           **config_overrides)
    return DistributedTrainer(cluster, make_factory("spardl?density=0.1"),
                              model_factory, train, test, config=config)


def _final_params(trainer):
    from repro.nn.parameter import flatten_values
    return flatten_values(trainer.global_model.parameters())


def test_trainer_offload_matches_inline_on_sim():
    with SimulatedCluster(2) as sim:
        inline = _trainer(sim, compute_mode="inline")
        inline.train(num_epochs=2)
    with SimulatedCluster(2) as sim:
        offload = _trainer(sim, compute_mode="offload")
        offload.train(num_epochs=2)
    assert np.array_equal(_final_params(inline), _final_params(offload))
    assert inline.compute_mode == "inline"
    assert offload.compute_mode == "offload"


def test_trainer_on_mp_backend_matches_sim_bit_for_bit():
    with SimulatedCluster(2) as sim:
        reference = _trainer(sim)
        assert reference.compute_mode == "inline"  # auto on sim
        history_sim = reference.train(num_epochs=2)
    with MultiprocessCluster(2) as mp:
        measured = _trainer(mp, check_consistency=True)
        assert measured.compute_mode == "offload"  # auto on mp
        history_mp = measured.train(num_epochs=2)
        measured_params = _final_params(measured)
    assert np.array_equal(_final_params(reference), measured_params)
    losses_sim = [record.loss for record in history_sim.iterations]
    losses_mp = [record.loss for record in history_mp.iterations]
    assert losses_sim == losses_mp
    assert history_sim.epochs[-1].eval_loss == history_mp.epochs[-1].eval_loss
