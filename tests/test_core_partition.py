"""Unit tests for the SRS bag partitioning (Section III-B, Theorem 1)."""

from __future__ import annotations

import math

import pytest

from repro.core.partition import (
    held_blocks_before_step,
    last_bag_capacity_shortfall,
    plan_bags,
    transmission_distances,
)


class TestPlanBags:
    def test_paper_example_worker_1_of_6(self):
        # Example 1 of the paper (worker 1 of 6, 0-indexed here as worker 0):
        # preservation bag {own block}, then bags of sizes 1, 2 and the
        # remaining E = 2 blocks.
        plan = plan_bags(0, 6)
        assert plan.preserved == 0
        assert plan.sending_bags == ((1,), (2, 3), (4, 5))

    def test_all_blocks_covered_exactly_once(self):
        for num_blocks in range(1, 20):
            for worker in range(num_blocks):
                plan = plan_bags(worker, num_blocks)
                blocks = plan.all_blocks()
                assert sorted(blocks) == list(range(num_blocks))

    def test_number_of_bags_is_ceil_log2(self):
        for num_blocks in range(2, 33):
            plan = plan_bags(0, num_blocks)
            assert plan.num_steps == math.ceil(math.log2(num_blocks))

    def test_bag_sizes_are_powers_of_two_except_last(self):
        plan = plan_bags(3, 13)
        sizes = [len(bag) for bag in plan.sending_bags]
        for index, size in enumerate(sizes[:-1]):
            assert size == 1 << index
        assert sizes[-1] == 13 - (1 << (len(sizes) - 1))

    def test_single_block_has_no_sending_bags(self):
        plan = plan_bags(0, 1)
        assert plan.num_steps == 0
        assert plan.all_blocks() == [0]

    def test_blocks_wrap_circularly(self):
        plan = plan_bags(4, 6)
        assert plan.preserved == 4
        assert plan.sending_bags == ((5,), (0, 1), (2, 3))

    def test_bag_for_step_reverses_order(self):
        # Transmission sends the *last* bag first.
        plan = plan_bags(0, 8)
        assert plan.bag_for_step(1) == plan.sending_bags[-1]
        assert plan.bag_for_step(plan.num_steps) == plan.sending_bags[0]

    def test_bag_for_step_out_of_range(self):
        plan = plan_bags(0, 8)
        with pytest.raises(ValueError):
            plan.bag_for_step(0)
        with pytest.raises(ValueError):
            plan.bag_for_step(plan.num_steps + 1)

    def test_invalid_worker(self):
        with pytest.raises(ValueError):
            plan_bags(6, 6)
        with pytest.raises(ValueError):
            plan_bags(-1, 6)

    def test_invalid_num_blocks(self):
        with pytest.raises(ValueError):
            plan_bags(0, 0)


class TestTransmissionDistances:
    def test_paper_example_distances_for_6_workers(self):
        # Example 2: distances 4, 2, 1.
        assert transmission_distances(6) == [4, 2, 1]

    def test_power_of_two(self):
        assert transmission_distances(8) == [4, 2, 1]

    def test_single_worker(self):
        assert transmission_distances(1) == []

    def test_distances_are_decreasing_powers_of_two(self):
        for num_blocks in range(2, 30):
            distances = transmission_distances(num_blocks)
            assert all(d == 1 << i for i, d in enumerate(reversed(distances)))


class TestLastBagShortfall:
    def test_power_of_two_has_no_shortfall(self):
        for num_blocks in (2, 4, 8, 16):
            assert last_bag_capacity_shortfall(num_blocks) == 0

    def test_paper_example(self):
        # 6 workers: E = 6 - 4 = 2 filled of capacity 4 -> shortfall 2.
        assert last_bag_capacity_shortfall(6) == 2

    def test_single_block(self):
        assert last_bag_capacity_shortfall(1) == 0


class TestTheorem1:
    @pytest.mark.parametrize("num_blocks", [2, 3, 4, 5, 6, 7, 8, 11, 14, 16])
    def test_sent_blocks_are_subset_of_receiver_holdings(self, num_blocks):
        """Theorem 1: at each step the ranks of the blocks in the sending bag
        are a subset of the blocks held by the receiving worker."""
        distances = transmission_distances(num_blocks)
        for worker in range(num_blocks):
            plan = plan_bags(worker, num_blocks)
            for step, distance in enumerate(distances, start=1):
                receiver = (worker + distance) % num_blocks
                sent = set(plan.bag_for_step(step))
                held = held_blocks_before_step(receiver, num_blocks, step)
                assert sent <= held, (
                    f"step {step}: worker {worker} sends {sent} but receiver "
                    f"{receiver} holds {held}"
                )

    @pytest.mark.parametrize("num_blocks", [2, 3, 5, 6, 8, 14])
    def test_each_worker_ends_holding_only_its_block(self, num_blocks):
        for worker in range(num_blocks):
            plan = plan_bags(worker, num_blocks)
            held = held_blocks_before_step(worker, num_blocks, plan.num_steps + 1)
            assert held == {worker}
