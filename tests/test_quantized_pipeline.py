"""End-to-end gates for the quantized ``compress`` stage (PR 5).

Three contracts, straight from the issue's acceptance criteria:

* **bits absent == pre-quantization pipeline.**  Without ``bits`` no
  compressor is installed, the compress stage is the identity and no wire
  pricer ever runs — `tests/test_pipeline_equivalence.py` already gates the
  resulting behaviour bit-for-bit; here we gate the *mechanism* (no
  compressor object, identity wire).
* **bits=b == quantized accounting, per message.**  Every message of a
  quantized step bills the ``(1 + b/32)/2`` COO accounting exactly — one
  full element per index, ``b`` bits per value, one scale element per
  non-empty sparse unit, ``b/32`` per dense value — verified message by
  message against an independent re-derivation, plus in closed form for a
  controlled TopkA run.
* **residual mass is conserved.**  ``sum_t global_t + residuals ==
  sum_t inputs`` (sent + quantization error + discards == input, telescoped
  over iterations) for every GRES-collecting configuration, including teams,
  the deferred-residual path and the dense fallback.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import SYNCHRONIZER_NAMES, describe, make, make_synchronizer, parse_spec
from repro.comm.cluster import SimulatedCluster
from repro.core.bucketed import BucketedSynchronizer
from repro.core.config import SparDLConfig
from repro.core.pipeline import SyncSession

# The independent re-derivation of the quantized accounting is shared with
# the BENCH_PR5 gate (benchmarks/perf/quantized_reference.py) so the test
# and the benchmark enforce one contract.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks" / "perf"))
from quantized_reference import expected_price, spy_exchange  # noqa: E402

NUM_ELEMENTS = 600
ITERATIONS = 3


def _spec(method: str, bits=None) -> str:
    base = "dense" if method == "Dense" else f"{method.lower()}?density=0.05"
    if bits is None:
        return base
    separator = "&" if "?" in base else "?"
    return f"{base}{separator}bits={bits}"


def _gradients(num_workers: int, iteration: int, reverse: bool = False):
    workers = range(num_workers)
    if reverse:
        workers = reversed(list(workers))
    return {
        worker: np.random.default_rng(1000 * iteration + worker)
                  .normal(size=NUM_ELEMENTS)
        for worker in workers
    }


def _methods_for(num_workers: int):
    return [name for name in SYNCHRONIZER_NAMES
            if name != "gTopk" or (num_workers & (num_workers - 1)) == 0]


class TestBitsAbsentIsIdentity:
    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_no_compressor_without_bits(self, method):
        sync = make(_spec(method), SimulatedCluster(8), num_elements=NUM_ELEMENTS)
        assert sync.compressor is None
        assert sync.cluster._pricer is None
        result = sync.synchronize(_gradients(8, 0))
        assert "quantized_bits" not in result.info
        assert sync.cluster._pricer is None

    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_compressor_with_bits(self, method):
        sync = make(_spec(method, bits=8), SimulatedCluster(8),
                    num_elements=NUM_ELEMENTS)
        assert sync.compressor is not None
        assert sync.compressor.num_bits == 8
        result = sync.synchronize(_gradients(8, 0))
        assert result.info["quantized_bits"] == 8
        assert result.is_consistent
        # the pricer is scoped to the step: uninstalled afterwards
        assert sync.cluster._pricer is None


class TestPerMessageAccounting:
    @pytest.mark.parametrize("num_workers", [5, 8])
    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    @pytest.mark.parametrize("bits", [2, 8])
    def test_every_message_bills_the_quantized_accounting(self, method,
                                                          num_workers, bits):
        if method not in _methods_for(num_workers):
            pytest.skip("gTopk needs a power-of-two worker count")
        cluster = SimulatedCluster(num_workers)
        sync = make(_spec(method, bits=bits), cluster, num_elements=NUM_ELEMENTS)
        records = spy_exchange(cluster)
        for iteration in range(2):
            sync.synchronize(_gradients(num_workers, iteration))
        assert records, "no traffic recorded"
        for tag, size, size_final, payload in records:
            if not size_final:
                assert size == expected_price(payload, bits), (
                    f"{method}/{tag}: billed {size}, expected "
                    f"{expected_price(payload, bits)}")
            elif tag == "oktopk-rebalance":
                # control statistics travel at full precision
                assert size == float(num_workers)
            elif tag == "topka-fold-out":
                # gathered set minus the receiver's own contribution
                assert size <= expected_price(payload, bits)
            elif tag.startswith("dsa-"):
                # per-block min(quantized COO, quantized dense block)
                assert 0.0 <= size <= expected_price(payload, bits)
            else:  # pragma: no cover - new size_final sites must be priced
                raise AssertionError(f"unpriced size_final message {tag!r}")

    def test_topka_closed_form_volume(self):
        """TopkA at a power-of-two P has a known message structure (no
        merging during the exchange), so the quantized volume has a closed
        form: each round r moves P messages of 2^r selections apiece, each
        selection billing k(1 + b/32) + 1."""
        P, k, bits = 4, 30, 8
        cluster = SimulatedCluster(P)
        sync = make(f"topka?k={k}&bits={bits}", cluster, num_elements=NUM_ELEMENTS)
        result = sync.synchronize(_gradients(P, 0))
        unit = k * (1 + bits / 32) + 1
        expected = P * unit + P * 2 * unit  # rounds: 1 then 2 selections each
        assert result.stats.total_volume == pytest.approx(expected)

    def test_dense_fallback_prices_bits_per_value(self):
        """Past the crossover SparDL runs the dense All-Reduce; message
        sizes depend only on chunk lengths, so the quantized volume is
        exactly bits/32 of the full-precision volume."""
        P, bits = 8, 8
        plain = make("spardl?density=0.8", SimulatedCluster(P),
                     num_elements=NUM_ELEMENTS)
        quantized = make(f"spardl?density=0.8&bits={bits}", SimulatedCluster(P),
                         num_elements=NUM_ELEMENTS)
        result_plain = plain.synchronize(_gradients(P, 0))
        result_quant = quantized.synchronize(_gradients(P, 0))
        assert result_plain.info["dense_fallback"]
        assert result_quant.info["dense_fallback"]
        assert result_quant.stats.total_volume == pytest.approx(
            result_plain.stats.total_volume * bits / 32)
        assert result_quant.stats.rounds == result_plain.stats.rounds

    def test_quantized_volume_is_reduced_for_every_method(self):
        P = 8
        for method in SYNCHRONIZER_NAMES:
            plain = make(_spec(method), SimulatedCluster(P),
                         num_elements=NUM_ELEMENTS)
            quantized = make(_spec(method, bits=4), SimulatedCluster(P),
                             num_elements=NUM_ELEMENTS)
            volume_plain = plain.synchronize(_gradients(P, 0)).stats.total_volume
            volume_quant = quantized.synchronize(_gradients(P, 0)).stats.total_volume
            assert volume_quant < volume_plain, method


class TestOrderIndependence:
    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_worker_iteration_order_does_not_change_results(self, method):
        """Per-worker spawned random streams: feeding the gradients dict in
        reversed insertion order must produce bit-identical results."""
        P = 8
        forward = make(_spec(method, bits=4), SimulatedCluster(P),
                       num_elements=NUM_ELEMENTS)
        backward = make(_spec(method, bits=4), SimulatedCluster(P),
                        num_elements=NUM_ELEMENTS)
        for iteration in range(ITERATIONS):
            result_fwd = forward.synchronize(_gradients(P, iteration))
            result_bwd = backward.synchronize(
                _gradients(P, iteration, reverse=True))
            for worker in range(P):
                np.testing.assert_array_equal(
                    result_fwd.global_gradients[worker],
                    result_bwd.global_gradients[worker],
                    err_msg=f"{method}: worker {worker} depends on iteration order")
            assert result_fwd.stats.total_volume == result_bwd.stats.total_volume

    def test_streams_are_reproducible_across_constructions(self):
        P = 4
        first = make("spardl?density=0.05&bits=8", SimulatedCluster(P),
                     num_elements=NUM_ELEMENTS)
        second = make("spardl?density=0.05&bits=8", SimulatedCluster(P),
                      num_elements=NUM_ELEMENTS)
        a = first.synchronize(_gradients(P, 0))
        b = second.synchronize(_gradients(P, 0))
        np.testing.assert_array_equal(a.gradient(0), b.gradient(0))


class TestResidualConservation:
    @pytest.mark.parametrize("spec", [
        "spardl?density=0.05&bits=8",
        "spardl?density=0.05&bits=2",
        "spardl?density=0.05&teams=2&bits=4",          # R-SAG
        "spardl?density=0.05&teams=3&bits=8",          # B-SAG (P=6)
        "spardl?density=0.05&bits=8&deferred=true",    # deferred residual path
        "spardl?density=0.8&bits=8",                   # dense fallback
        "dense?bits=8",                                # QSGD with error feedback
    ])
    def test_sent_plus_error_plus_discards_equals_input(self, spec):
        P = 6 if "teams=3" in spec else 8
        sync = make(spec, SimulatedCluster(P), num_elements=NUM_ELEMENTS)
        total_input = np.zeros(NUM_ELEMENTS)
        total_global = np.zeros(NUM_ELEMENTS)
        for iteration in range(ITERATIONS):
            gradients = _gradients(P, iteration)
            total_input += sum(gradients.values())
            result = sync.synchronize(gradients)
            assert result.is_consistent
            total_global += result.gradient(0)
        residual = sync.residuals.total_residual()
        np.testing.assert_allclose(total_global + residual, total_input,
                                   atol=1e-9)

    def test_deferred_matches_eager_bitwise_under_quantization(self):
        """The deferred residual fold must replay the eager scatter chain
        even when quantization errors join the discards."""
        P = 6
        eager = make("spardl?density=0.05&teams=2&bits=4", SimulatedCluster(P),
                     num_elements=NUM_ELEMENTS)
        deferred = make("spardl?density=0.05&teams=2&bits=4&deferred=true",
                        SimulatedCluster(P), num_elements=NUM_ELEMENTS)
        for iteration in range(ITERATIONS):
            gradients = _gradients(P, iteration)
            result_eager = eager.synchronize({w: g.copy() for w, g in gradients.items()})
            result_deferred = deferred.synchronize({w: g.copy() for w, g in gradients.items()})
            for worker in range(P):
                np.testing.assert_array_equal(
                    result_eager.global_gradients[worker],
                    result_deferred.global_gradients[worker])
        np.testing.assert_array_equal(eager.residuals.total_residual(),
                                      deferred.residuals.total_residual())


class TestSessionsAndBuckets:
    @pytest.mark.parametrize("method", SYNCHRONIZER_NAMES)
    def test_session_equals_legacy_with_bits(self, method):
        P = 8
        legacy = make(_spec(method, bits=8), SimulatedCluster(P),
                      num_elements=NUM_ELEMENTS)
        session = SyncSession(make(_spec(method, bits=8), SimulatedCluster(P),
                                   num_elements=NUM_ELEMENTS))
        for iteration in range(ITERATIONS):
            gradients = _gradients(P, iteration)
            expected = legacy.synchronize({w: g.copy() for w, g in gradients.items()})
            actual = session.step({w: g.copy() for w, g in gradients.items()})
            for worker in range(P):
                np.testing.assert_array_equal(actual.global_gradients[worker],
                                              expected.global_gradients[worker])
            assert actual.stats.total_volume == expected.stats.total_volume
            assert actual.stats.rounds == expected.stats.rounds

    def test_bucketed_quantized_run_conserves_and_prices(self):
        P = 4
        cluster = SimulatedCluster(P)
        sizes = [200, 150, 250]
        bucketed = BucketedSynchronizer(
            cluster, sizes,
            factory=lambda c, n: make("spardl?density=0.05&bits=8", c,
                                      num_elements=n))
        total_input = np.zeros(NUM_ELEMENTS)
        total_global = np.zeros(NUM_ELEMENTS)
        for iteration in range(ITERATIONS):
            gradients = _gradients(P, iteration)
            total_input += sum(gradients.values())
            result = bucketed.synchronize(gradients)
            total_global += result.gradient(0)
        np.testing.assert_allclose(total_global + bucketed.total_residual(),
                                   total_input, atol=1e-9)

    def test_mixed_precision_buckets_restore_the_pricer(self):
        """A quantized bucket must not leak its pricer into a later
        full-precision bucket on the shared cluster."""
        P = 4
        cluster = SimulatedCluster(P)
        specs = ["spardl?density=0.2&bits=8", "spardl?density=0.2"]
        built = iter(specs)
        bucketed = BucketedSynchronizer(
            cluster, [300, 300],
            factory=lambda c, n: make(next(built), c, num_elements=n))
        reference = make("spardl?density=0.2", SimulatedCluster(P),
                         num_elements=300)
        gradients = _gradients(P, 0)
        result = bucketed.synchronize(gradients)
        expected = reference.synchronize({w: g[300:] for w, g in gradients.items()})
        # the full-precision bucket's volume matches a standalone
        # full-precision run exactly: no pricer leaked
        bucket1_stats = bucketed.sessions[1].cumulative_stats
        assert bucket1_stats.total_volume == expected.stats.total_volume
        assert cluster._pricer is None
        assert result.is_consistent


class TestSpecSurface:
    def test_describe_round_trips_bits(self):
        spec = "spardl?density=0.01&teams=2&schedule=warmup:5&bits=8"
        sync = make(spec, SimulatedCluster(8), num_elements=1000)
        assert describe(sync) == spec
        assert parse_spec(describe(sync)).bits == 8

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            parse_spec("spardl?density=0.01&bits=0")
        with pytest.raises(ValueError):
            parse_spec("spardl?density=0.01&bits=33")
        with pytest.raises(ValueError):
            SparDLConfig(density=0.01, num_bits=40)

    def test_config_describe_mentions_bits(self):
        assert "8bit" in SparDLConfig(density=0.01, num_bits=8).describe()

    def test_make_synchronizer_num_bits_kwarg(self):
        sync = make_synchronizer("SparDL", SimulatedCluster(4), 1000,
                                 density=0.01, num_bits=4)
        assert sync.compressor is not None
        assert sync.compressor.num_bits == 4

    def test_bits_override_through_make(self):
        sync = make("spardl?density=0.01", SimulatedCluster(4),
                    num_elements=1000, bits=8)
        assert sync.compressor.num_bits == 8
        assert describe(sync) == "spardl?density=0.01&bits=8"
