"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file exists so that the
project can also be installed with legacy tooling (``pip install -e .
--no-use-pep517``) on environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="spardl-repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
