"""First-class sparsity schedules (the ``k`` of every synchronisation).

The paper sweeps the sparsity ratio ``k/n`` as a static hyper-parameter
(Fig. 16); follow-up systems treat it as a *schedule*: Deep Gradient
Compression ramps the sparsity up over a few warm-up epochs so early
iterations — whose gradients carry the most signal — are compressed
gently, and adaptive systems retune the ratio online from what the
exchange actually observed.  A :class:`KSchedule` makes that first-class:
every synchroniser resolves its per-step ``k`` through its schedule at the
start of each step, and hands the step's outcome back through
:meth:`KSchedule.observe` afterwards.

Three schedules are provided:

* :class:`ConstantSchedule` — the paper's static ``k``/``density`` pair.
  This is the default everywhere and reproduces the pre-schedule behaviour
  bit for bit.
* :class:`WarmupSchedule` — a DGC-style geometric ramp from a dense-ish
  ``start_density`` down to the target over ``warmup_steps`` steps.
* :class:`AdaptiveSchedule` — a feedback controller that treats the target
  ``k`` as a budget on the *merged global* non-zero count and multiplicatively
  retunes the per-worker ``k`` from the observed ``final_nnz``.

Schedules also define the spec-string grammar used by :mod:`repro.api`
(``schedule=warmup:5`` etc.); :func:`parse_schedule` and
:meth:`KSchedule.spec` round-trip it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

__all__ = [
    "resolve_k",
    "KSchedule",
    "ConstantSchedule",
    "WarmupSchedule",
    "AdaptiveSchedule",
    "parse_schedule",
    "coerce_schedule",
    "SCHEDULE_KINDS",
]

#: Schedule kinds understood by :func:`parse_schedule` (the ``schedule=``
#: values of the :mod:`repro.api` spec grammar).
SCHEDULE_KINDS = ("constant", "warmup", "adaptive")


def resolve_k(num_elements: int, k: Optional[int], density: Optional[float]) -> int:
    """Resolve the number of selected gradients from ``k`` or ``density``.

    Exactly one of the two should be provided; the result is clamped to
    ``[1, num_elements]``.
    """
    if num_elements <= 0:
        raise ValueError("num_elements must be positive")
    if k is None and density is None:
        raise ValueError("either k or density must be given")
    if k is not None and density is not None:
        raise ValueError("give only one of k and density")
    if k is None:
        if not 0 < density <= 1:
            raise ValueError("density must be in (0, 1]")
        k = int(round(density * num_elements))
    k = int(k)
    return max(1, min(num_elements, k))


class KSchedule(ABC):
    """Per-iteration resolution of the sparsity ``k``.

    ``resolve(iteration, num_elements)`` is called at the *start* of every
    step and returns the ``k`` that step selects per worker;
    ``observe(iteration, k_used, result)`` is called at the *end* of the
    step with the finished :class:`~repro.core.base.SyncResult`, so
    feedback schedules can retune themselves from the observed non-zero
    count or communication volume.  Stateless schedules ignore ``observe``.
    """

    #: Spec-grammar kind (first token of the ``schedule=`` value).
    kind: str = "constant"

    @abstractmethod
    def resolve(self, iteration: int, num_elements: int) -> int:
        """The ``k`` to select at ``iteration`` (0-based) for a gradient of
        ``num_elements``."""

    def observe(self, iteration: int, k_used: int, result) -> None:
        """Feedback hook called after each step (default: no-op)."""

    @abstractmethod
    def spec(self) -> str:
        """The ``schedule=`` spec-string value that reconstructs this
        schedule (see :func:`parse_schedule`)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec()!r})"


def _validate_target(k: Optional[int], density: Optional[float]) -> None:
    """Shared constructor validation: exactly one of ``k``/``density``."""
    if k is None and density is None:
        raise ValueError("either k or density must be given")
    if k is not None and density is not None:
        raise ValueError("give only one of k and density")
    if k is not None and int(k) <= 0:
        raise ValueError("k must be positive")
    if density is not None and not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")


class ConstantSchedule(KSchedule):
    """The paper's static sparsity: the same ``k`` (or ``density``) forever.

    ``resolve`` is exactly :func:`resolve_k`, so a constant schedule is
    bit-identical to the pre-schedule code path.
    """

    kind = "constant"

    def __init__(self, k: Optional[int] = None, density: Optional[float] = None) -> None:
        _validate_target(k, density)
        self.k = None if k is None else int(k)
        self.density = None if density is None else float(density)

    def resolve(self, iteration: int, num_elements: int) -> int:
        return resolve_k(num_elements, self.k, self.density)

    def spec(self) -> str:
        return "constant"


class WarmupSchedule(KSchedule):
    """DGC-style sparsity warm-up: start dense-ish, ramp to the target.

    Deep Gradient Compression ramps its sparsity exponentially over the
    first epochs (density 0.25 -> 0.0625 -> ... -> target) so the large
    early gradients are compressed gently.  This schedule reproduces that
    shape per *step*: the selected density decays geometrically from
    ``start_density`` at iteration 0 to the target ``k``/``density`` at
    iteration ``warmup_steps``, and stays at the target afterwards.

    ``start_density`` is clamped up to the target density when the target
    is denser than the start (the ramp never goes *up*).
    """

    kind = "warmup"

    #: DGC's first warm-up density (75% sparsity).
    DEFAULT_START_DENSITY = 0.25

    def __init__(self, warmup_steps: int, k: Optional[int] = None,
                 density: Optional[float] = None,
                 start_density: Optional[float] = None) -> None:
        _validate_target(k, density)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        start = self.DEFAULT_START_DENSITY if start_density is None else float(start_density)
        if not 0 < start <= 1:
            raise ValueError("start_density must be in (0, 1]")
        self.warmup_steps = int(warmup_steps)
        self.k = None if k is None else int(k)
        self.density = None if density is None else float(density)
        self.start_density = start
        self._explicit_start = start_density is not None

    def resolve(self, iteration: int, num_elements: int) -> int:
        target = resolve_k(num_elements, self.k, self.density)
        if iteration >= self.warmup_steps:
            return target
        target_density = target / num_elements
        start = max(self.start_density, target_density)
        if start <= target_density:
            return target
        # Geometric interpolation: exactly `start` at iteration 0, exactly
        # the target density once iteration reaches warmup_steps.
        fraction = iteration / self.warmup_steps
        density = start * (target_density / start) ** fraction
        return resolve_k(num_elements, None, min(1.0, density))

    def spec(self) -> str:
        if self._explicit_start:
            return f"warmup:{self.warmup_steps}:{self.start_density:g}"
        return f"warmup:{self.warmup_steps}"


class AdaptiveSchedule(KSchedule):
    """Feedback controller: retune ``k`` from the observed global nnz.

    The target ``k``/``density`` is read as a *budget on the merged global
    gradient's non-zero count* (the quantity SparDL's Fig. 7 plots and the
    B-SAG controller steers).  When workers select mostly disjoint indices
    the merged nnz approaches ``P * k`` — far over budget for the same
    per-element information — so after every step the controller rescales
    the per-worker ``k`` multiplicatively:

    ``k <- k * (budget / observed_nnz) ** gain``

    damped by ``gain`` (default 0.5) and clamped to at most a 2x move per
    step.  Steps that report no ``final_nnz``, and dense-fallback steps
    (whose ``final_nnz`` counts the exact dense sum, not a merged sparse
    selection), leave ``k`` untouched — otherwise a budget near the
    fallback crossover would oscillate across it forever.
    """

    kind = "adaptive"

    def __init__(self, k: Optional[int] = None, density: Optional[float] = None,
                 gain: float = 0.5) -> None:
        _validate_target(k, density)
        if not 0 < gain <= 1:
            raise ValueError("gain must be in (0, 1]")
        self.k = None if k is None else int(k)
        self.density = None if density is None else float(density)
        self.gain = float(gain)
        self._current: Optional[int] = None

    def resolve(self, iteration: int, num_elements: int) -> int:
        budget = resolve_k(num_elements, self.k, self.density)
        if self._current is None:
            self._current = budget
        return max(1, min(num_elements, self._current))

    def observe(self, iteration: int, k_used: int, result) -> None:
        if result is None or result.info.get("dense_fallback"):
            return
        observed = result.info.get("final_nnz")
        if not observed:
            return
        budget = self._budget_nnz(result)
        ratio = budget / float(observed)
        factor = ratio ** self.gain
        # At most halve / double per step so one noisy iteration cannot
        # collapse the selection.
        factor = min(2.0, max(0.5, factor))
        self._current = max(1, int(round(k_used * factor)))

    def _budget_nnz(self, result) -> float:
        length = None
        gradients = getattr(result, "global_gradients", None)
        if gradients:
            first = next(iter(gradients.values()))
            length = first.shape[0]
        if length is None:  # pragma: no cover - defensive
            return float(self.k or 1)
        return float(resolve_k(length, self.k, self.density))

    def spec(self) -> str:
        if self.gain != 0.5:
            return f"adaptive:{self.gain:g}"
        return "adaptive"


# ---------------------------------------------------------------------------
# spec-string grammar
# ---------------------------------------------------------------------------
def parse_schedule(spec: str, k: Optional[int] = None,
                   density: Optional[float] = None) -> KSchedule:
    """Build a :class:`KSchedule` from its spec-string value.

    Grammar (the ``schedule=`` value of the :mod:`repro.api` spec strings)::

        constant                  -> ConstantSchedule(k, density)
        warmup:STEPS              -> WarmupSchedule(STEPS, k, density)
        warmup:STEPS:START        -> WarmupSchedule(STEPS, k, density, START)
        adaptive                  -> AdaptiveSchedule(k, density)
        adaptive:GAIN             -> AdaptiveSchedule(k, density, GAIN)

    The target sparsity (``k`` or ``density``) comes from the surrounding
    configuration, exactly as in ``SparDLConfig``.
    """
    text = str(spec).strip().lower()
    if not text:
        raise ValueError("empty schedule spec")
    parts = text.split(":")
    kind, args = parts[0], parts[1:]
    if kind == "constant":
        if args:
            raise ValueError(f"constant schedule takes no arguments, got {spec!r}")
        return ConstantSchedule(k=k, density=density)
    if kind == "warmup":
        if not 1 <= len(args) <= 2:
            raise ValueError(
                f"warmup schedule spec must be warmup:STEPS[:START_DENSITY], got {spec!r}")
        steps = int(args[0])
        start = float(args[1]) if len(args) == 2 else None
        return WarmupSchedule(steps, k=k, density=density, start_density=start)
    if kind == "adaptive":
        if len(args) > 1:
            raise ValueError(f"adaptive schedule spec must be adaptive[:GAIN], got {spec!r}")
        gain = float(args[0]) if args else 0.5
        return AdaptiveSchedule(k=k, density=density, gain=gain)
    raise ValueError(
        f"unknown schedule kind {kind!r}; expected one of {', '.join(SCHEDULE_KINDS)}")


def coerce_schedule(schedule, k: Optional[int] = None,
                    density: Optional[float] = None) -> KSchedule:
    """Normalise a schedule argument into a :class:`KSchedule`.

    ``schedule`` may be a ready :class:`KSchedule` (then ``k``/``density``
    must not also be given — the schedule carries its own target), a spec
    string interpreted against the given target, or ``None`` for the
    constant schedule over ``k``/``density``.
    """
    if isinstance(schedule, KSchedule):
        if k is not None or density is not None:
            raise ValueError(
                "a KSchedule object carries its own sparsity target; "
                "do not also give k or density")
        return schedule
    if schedule is None:
        return ConstantSchedule(k=k, density=density)
    return parse_schedule(str(schedule), k=k, density=density)
