"""Configuration of the SparDL framework.

:class:`SparDLConfig` collects every knob the paper exposes: the sparsity
(``k`` or a density ratio), the team count ``d``, the Spar-All-Gather variant
and the residual collection policy — plus two implementation knobs: the SRS
wire format (batched :class:`~repro.comm.packed.PackedBags` messages by
default) and the dense-fallback crossover.  The configuration validates
itself against a cluster size so misconfigurations (``d`` not dividing
``P``, R-SAG with a non-power-of-two ``d``, ...) fail loudly before any
communication happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .residuals import ResidualPolicy
from .schedules import KSchedule, coerce_schedule
from .srs import WIRE_FORMATS

__all__ = ["SAGMode", "SparDLConfig", "DEFAULT_DENSE_CROSSOVER"]

#: Density ratio ``k/n`` at which the sparse pipeline stops beating a dense
#: All-Reduce.  Measured by ``benchmarks/perf/bench_srs.py`` in simulated
#: alpha-beta time (recorded in ``BENCH_PR2.json``): for power-of-two worker
#: counts — where the dense algorithm is bandwidth-optimal — the crossover
#: sits at ``k/n = 0.5``, exactly where the COO volume ``4k(P-1)/P`` meets
#: the dense ``2n(P-1)/P``.  For other worker counts the latency-heavy ring
#: keeps the sparse pipeline ahead even at ``k/n = 1``, so 0.5 is the
#: conservative bound.
DEFAULT_DENSE_CROSSOVER = 0.5


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


class SAGMode(str, Enum):
    """Which Spar-All-Gather variant synchronises the teams."""

    #: Pick R-SAG when ``d`` is a power of two, B-SAG otherwise.
    AUTO = "auto"
    #: Recursive-doubling SAG; requires ``d`` to be a power of two.
    RSAG = "rsag"
    #: Bruck-based SAG with the adaptive top-h controller; any ``d``.
    BSAG = "bsag"

    @classmethod
    def coerce(cls, value: "SAGMode | str") -> "SAGMode":
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


@dataclass
class SparDLConfig:
    """Hyper-parameters of one SparDL synchroniser.

    Parameters
    ----------
    k:
        Number of gradients selected per worker.  Mutually exclusive with
        ``density``.
    density:
        Fraction ``k/n`` of gradients selected per worker (the paper sweeps
        1e-1 .. 1e-5 in Fig. 16).  Mutually exclusive with ``k``.
    num_teams:
        The paper's ``d``.  ``d = 1`` disables Spar-All-Gather entirely
        (SparDL is then SRS followed by a Bruck All-Gather).
    sag_mode:
        Which SAG variant to use when ``num_teams > 1``.
    residual_policy:
        Residual collection policy (GRES / PRES / LRES / none).
    sparsify_all_blocks:
        Disable the paper's "Optimization for SRS": re-sparsify every held
        block after each summation instead of only the blocks about to be
        sent.  Only used by the ablation benchmark.
    wire_format:
        SRS wire format: ``"packed"`` (default, one batched
        :class:`~repro.comm.packed.PackedBags` message per worker and step)
        or ``"per-block"`` (unbatched; one message per block, kept for the
        batching benchmark).
    dense_fallback:
        When True (default), synchronisations whose density ``k/n`` reaches
        :attr:`dense_fallback_ratio` bypass the sparse pipeline and run a
        dense All-Reduce instead — at high density the COO representation
        moves *more* than the dense lower bound (2 elements per non-zero)
        and pays the sparse bookkeeping on top.
    dense_fallback_ratio:
        Crossover density for the fallback.  ``None`` uses the measured
        default :data:`DEFAULT_DENSE_CROSSOVER`; any positive float
        overrides it.  Because ``k/n`` never exceeds 1, a value above 1
        disables the fallback (equivalent to ``dense_fallback=False``).
    deferred_residuals:
        When True, the residual manager buffers every sparse discard
        (``collect_procedure`` / ``collect_local_sparse``) per worker and
        folds each buffer through one
        :func:`~repro.sparse.vector.merge_many_coo` call and a single
        scatter at the flush points of the iteration, instead of scattering
        once per (worker, step).  Bit-identical residuals either way; the
        default False keeps the eager reference path.
    schedule:
        Sparsity schedule (see :mod:`repro.core.schedules`): ``None`` keeps
        the constant ``k``/``density`` (the pre-schedule behaviour, bit for
        bit), a spec string (``"warmup:5"``, ``"adaptive"``) is interpreted
        against the configured ``k``/``density`` target, and a ready
        :class:`~repro.core.schedules.KSchedule` object carries its own
        target (``k``/``density`` must then be omitted).
    num_bits:
        Value quantization of the wire (Section VI extension): ``None``
        (default) transmits full-precision values — the pre-quantization
        pipeline bit for bit — while an integer in ``[1, 32]`` installs a
        :class:`~repro.compression.quantization.QuantizedCompressor` behind
        the pipeline's ``compress`` stage: selected values are quantized
        QSGD-style (per-worker independent random streams), the exact
        per-message quantization error joins the residual error-feedback
        path, and every message is billed at the ``(1 + num_bits/32)/2``
        COO accounting (dense-fallback values at ``num_bits/32`` apiece).
    momentum:
        DGC momentum-correction factor (Lin et al., ICLR'18): ``None``
        (default) keeps plain error feedback — the pre-momentum pipeline bit
        for bit — while a factor in ``(0, 1)`` makes the residual manager
        accumulate *velocity* (``u = m*u + g``) with momentum factor masking
        at the final global indices, so delayed coordinates keep their
        momentum history.  Coordinate with the trainer: when the
        synchroniser corrects momentum, the optimizer must run momentum-free
        (see ``TrainerConfig.momentum_correction``), otherwise velocity is
        applied twice.
    """

    k: Optional[int] = None
    density: Optional[float] = None
    num_teams: int = 1
    sag_mode: SAGMode | str = SAGMode.AUTO
    residual_policy: ResidualPolicy | str = ResidualPolicy.GLOBAL
    sparsify_all_blocks: bool = False
    wire_format: str = "packed"
    dense_fallback: bool = True
    dense_fallback_ratio: Optional[float] = None
    deferred_residuals: bool = False
    schedule: Optional[KSchedule | str] = None
    num_bits: Optional[int] = None
    momentum: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.schedule, KSchedule):
            if self.k is not None or self.density is not None:
                raise ValueError(
                    "a KSchedule object carries its own sparsity target; "
                    "do not also give k or density")
        else:
            if self.k is None and self.density is None:
                raise ValueError("either k or density must be given")
            if self.k is not None and self.density is not None:
                raise ValueError("give only one of k and density")
        if self.k is not None and self.k <= 0:
            raise ValueError("k must be positive")
        if self.density is not None and not 0 < self.density <= 1:
            raise ValueError("density must be in (0, 1]")
        if self.num_teams <= 0:
            raise ValueError("num_teams must be positive")
        if self.wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"wire_format must be one of {WIRE_FORMATS}, got {self.wire_format!r}"
            )
        if self.dense_fallback_ratio is not None and self.dense_fallback_ratio <= 0:
            raise ValueError("dense_fallback_ratio must be positive")
        if self.num_bits is not None and not 1 <= int(self.num_bits) <= 32:
            raise ValueError("num_bits must be between 1 and 32 (or None)")
        if self.momentum is not None and not 0 < float(self.momentum) < 1:
            raise ValueError("momentum must be in (0, 1) (or None)")
        if self.momentum is not None and ResidualPolicy.coerce(
                self.residual_policy) is ResidualPolicy.NONE:
            raise ValueError(
                "momentum correction accumulates velocity in the residual "
                "stores; residual_policy='none' would discard it")
        self.sag_mode = SAGMode.coerce(self.sag_mode)
        self.residual_policy = ResidualPolicy.coerce(self.residual_policy)

    # ------------------------------------------------------------------
    def resolve_schedule(self) -> KSchedule:
        """The :class:`~repro.core.schedules.KSchedule` this configuration
        describes (a constant schedule over ``k``/``density`` by default)."""
        return coerce_schedule(self.schedule, k=self.k, density=self.density)

    def resolve_k(self, num_elements: int) -> int:
        """Number of selected gradients for a vector of ``num_elements``
        at iteration 0 of the configured schedule."""
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        if self.k is not None:
            k = self.k
        elif self.density is not None:
            k = int(round(self.density * num_elements))
        else:
            return self.resolve_schedule().resolve(0, num_elements)
        return max(1, min(num_elements, int(k)))

    def validate_for_cluster(self, num_workers: int) -> None:
        """Raise when this configuration cannot run on ``num_workers``."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.num_teams > num_workers:
            raise ValueError(
                f"num_teams={self.num_teams} exceeds the number of workers {num_workers}"
            )
        if num_workers % self.num_teams != 0:
            raise ValueError(
                f"num_teams={self.num_teams} must divide the number of workers {num_workers}"
            )
        if (self.num_teams > 1 and self.sag_mode is SAGMode.RSAG
                and not _is_power_of_two(self.num_teams)):
            raise ValueError("R-SAG requires a power-of-two number of teams")

    def resolve_dense_crossover(self) -> float:
        """The density ``k/n`` at (or above) which the dense fallback kicks in."""
        if self.dense_fallback_ratio is not None:
            return float(self.dense_fallback_ratio)
        return DEFAULT_DENSE_CROSSOVER

    def effective_sag_mode(self) -> SAGMode:
        """The variant actually executed for this ``num_teams``."""
        if self.num_teams == 1:
            return SAGMode.AUTO
        if self.sag_mode is SAGMode.AUTO:
            return SAGMode.RSAG if _is_power_of_two(self.num_teams) else SAGMode.BSAG
        return SAGMode.coerce(self.sag_mode)

    def team_size(self, num_workers: int) -> int:
        self.validate_for_cluster(num_workers)
        return num_workers // self.num_teams

    def describe(self) -> str:
        """Short human-readable label used in figures and reports."""
        if self.k is not None:
            sparsity = f"k={self.k}"
        elif self.density is not None:
            sparsity = f"k/n={self.density:g}"
        else:
            sparsity = self.resolve_schedule().spec()
        parts = [sparsity]
        if isinstance(self.schedule, str) and self.schedule.strip().lower() != "constant":
            parts.append(self.schedule.strip().lower())
        elif isinstance(self.schedule, KSchedule) and self.schedule.spec() != "constant":
            if self.schedule.spec() != sparsity:
                parts.append(self.schedule.spec())
        if self.num_teams > 1:
            parts.append(f"{self.effective_sag_mode().value.upper()}")
            parts.append(f"d={self.num_teams}")
        if self.num_bits is not None:
            parts.append(f"{self.num_bits}bit")
        if self.momentum is not None:
            parts.append(f"m={self.momentum:g}")
        return f"SparDL({', '.join(parts)})"
