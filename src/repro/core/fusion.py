"""Bucket-fusion planning for compute/communication overlap.

Per-layer bucketing (:mod:`repro.core.bucketed`) earns its keep only when
the per-bucket exchanges *overlap* the backward pass — otherwise every
bucket pays the full latency of its own collective and the layout is
strictly slower than flat.  This module plans the bucket layout that
minimises the overlapped critical path, the way SSFusion's MG-WFBP and ASC
planners do for real clusters:

1. **Calibrate** an alpha-beta communication model.  The planner either
   takes the :class:`~repro.comm.network.NetworkProfile` at face value
   (``alpha`` = latency, ``beta`` = per-element cost) or runs a startup
   micro-benchmark on the live :class:`~repro.comm.transport.Transport`
   (:func:`benchmark_transport`): exchange a handful of payload sizes,
   time each round — wall-clock on real-process backends, the simulated
   alpha-beta price elsewhere — and least-squares fit
   ``time = alpha + beta * size`` (:func:`fit_alpha_beta`).
2. **Model** per-bucket cost.  Each candidate bucket's exchange is priced
   with the paper's Table I closed forms (:mod:`repro.analysis.complexity`)
   for the method that will run it — rounds times ``alpha`` plus volume
   times ``beta`` — and each bucket's backward slice comes from the
   :class:`~repro.training.timing.ComputeProfile` per-bucket model.
3. **Fuse**.  :func:`plan_mgwfbp` greedily merges adjacent layer buckets
   whenever the merge does not lengthen the overlapped critical path of
   the whole timeline (merging always saves per-bucket latency; it hurts
   only when it delays a gradient that could have been on the wire
   earlier).  :func:`plan_asc` fuses by alpha-saturation coalescing:
   walking the backward order, layers accumulate into one bucket until the
   bucket's bandwidth term has earned its latency term
   (``beta * volume >= alpha * rounds``), so an alpha-dominated network
   degenerates to one flat bucket and a beta-dominated one to pure
   per-layer buckets.

The resulting :class:`FusionPlan` is a valid partition by construction —
only *adjacent* buckets ever merge, so sizes sum to the model's parameter
count and layer order is preserved — and its predicted critical path never
exceeds the sequential (non-overlapped) per-layer timeline: MG-WFBP only
accepts merges that keep the critical path, and ASC falls back to the
per-layer plan if its grouping ever predicts worse.

``repro.api`` exposes the planners as ``buckets=auto`` (MG-WFBP, the
default), ``buckets=auto:mgwfbp`` and ``buckets=auto:asc``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.complexity import (
    dense_allreduce_complexity,
    gtopk_complexity,
    ok_topk_complexity,
    quantized_bandwidth,
    spardl_bsag_complexity,
    spardl_complexity,
    spardl_rsag_complexity,
    topk_a_complexity,
    topk_dsa_complexity,
)
from ..comm.network import NetworkProfile
from ..comm.transport import Message, Transport
from ..training.timing import ComputeProfile, OverlapTimeline, overlap_timeline

__all__ = [
    "AlphaBetaFit",
    "FusionPlan",
    "FUSION_PLANNERS",
    "fit_alpha_beta",
    "benchmark_transport",
    "bucket_comm_model",
    "plan_mgwfbp",
    "plan_asc",
    "plan_buckets",
]

#: Planner names accepted by ``buckets=auto[:PLANNER]``.
FUSION_PLANNERS = ("mgwfbp", "asc")

#: ``estimator(bucket_elements) -> (rounds, volume_elements)``.
CommModel = Callable[[int], Tuple[float, float]]


# ---------------------------------------------------------------------------
# alpha-beta calibration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AlphaBetaFit:
    """A fitted (or assumed) alpha-beta communication-time model.

    ``time = alpha + beta * size`` for one synchronous round delivering
    ``size`` elements to the busiest receiver.  ``source`` records where
    the constants came from: ``"profile"`` (taken from a
    :class:`~repro.comm.network.NetworkProfile`), ``"benchmark:simulated"``
    or ``"benchmark:wallclock"`` (fitted from a transport micro-benchmark).
    """

    alpha: float
    beta: float
    source: str = "profile"
    #: The ``(size, seconds)`` samples behind a fitted model (empty when
    #: the constants were assumed from a profile).
    samples: Tuple[Tuple[float, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")

    def round_time(self, volume: float) -> float:
        return self.alpha + self.beta * float(volume)

    def time(self, rounds: float, volume: float) -> float:
        """Predicted duration of ``rounds`` rounds moving ``volume``
        elements to the busiest receiver."""
        return self.alpha * float(rounds) + self.beta * float(volume)

    @property
    def saturation_size(self) -> float:
        """Elements per round at which the bandwidth term equals the
        latency term (``alpha / beta``; infinite on a latency-only model)."""
        if self.beta == 0:
            return float("inf")
        return self.alpha / self.beta

    @classmethod
    def from_network(cls, network: NetworkProfile) -> "AlphaBetaFit":
        return cls(alpha=network.alpha, beta=network.beta, source="profile")


def fit_alpha_beta(sizes: Sequence[float], times: Sequence[float],
                   source: str = "benchmark") -> AlphaBetaFit:
    """Least-squares fit of ``time = alpha + beta * size``.

    The SSFusion recipe: benchmark a handful of message sizes at startup
    and fit the linear model once, instead of trusting datasheet numbers.
    Negative fitted coefficients (possible with noisy wall-clock samples)
    are clamped to zero — the model must stay a valid cost model.
    """
    xs = np.asarray(sizes, dtype=np.float64)
    ys = np.asarray(times, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("sizes and times must be 1-D sequences of equal length")
    if xs.size < 2:
        raise ValueError("at least two samples are required to fit alpha and beta")
    if np.unique(xs).size < 2:
        raise ValueError("samples must cover at least two distinct sizes")
    design = np.stack([np.ones_like(xs), xs], axis=1)
    (alpha, beta), *_ = np.linalg.lstsq(design, ys, rcond=None)
    return AlphaBetaFit(
        alpha=float(max(0.0, alpha)),
        beta=float(max(0.0, beta)),
        source=source,
        samples=tuple((float(x), float(y)) for x, y in zip(xs, ys)),
    )


def benchmark_transport(transport: Transport,
                        network: Optional[NetworkProfile] = None,
                        sizes: Sequence[int] = (256, 2048, 16384, 131072),
                        repeats: int = 3) -> AlphaBetaFit:
    """Startup micro-benchmark: fit alpha/beta from live exchanges.

    Sends one ``size``-element payload from rank 0 to rank 1 for each probe
    size and times the round: **wall-clock** (best of ``repeats``) on
    backends whose workers are real processes, the **simulated**
    alpha-beta price of the recorded statistics elsewhere (which recovers
    the :class:`~repro.comm.network.NetworkProfile` constants exactly —
    ``network`` is required in that case since simulated transports carry
    no clock of their own).  The transport's statistics are saved and
    restored around the probes, so calibration never pollutes the
    accounting of the training run that follows.

    Transports with fewer than two workers cannot exchange; they fall back
    to the network profile's constants directly.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    probe_sizes = sorted({int(size) for size in sizes})
    if len(probe_sizes) < 2 or probe_sizes[0] < 0:
        raise ValueError("sizes must contain at least two distinct non-negative sizes")
    measured_clock = transport.capabilities.real_processes
    if not measured_clock and network is None:
        raise ValueError(
            "benchmarking a simulated transport needs a NetworkProfile to "
            "price the probe rounds (simulated backends have no clock)")
    if transport.num_workers < 2:
        if network is None:
            raise ValueError(
                "cannot micro-benchmark a single-worker transport; pass a "
                "NetworkProfile to take alpha/beta from")
        return AlphaBetaFit.from_network(network)

    preserved = transport.reset_stats()
    points: List[Tuple[float, float]] = []
    try:
        for size in probe_sizes:
            payload = np.zeros(size, dtype=np.float64)
            best: Optional[float] = None
            for _ in range(repeats):
                transport.reset_stats()
                if measured_clock:
                    start = _time.perf_counter()
                    transport.exchange([Message(src=0, dst=1, payload=payload,
                                                tag="fusion-probe")])
                    elapsed = _time.perf_counter() - start
                else:
                    transport.exchange([Message(src=0, dst=1, payload=payload,
                                                tag="fusion-probe")])
                    elapsed = transport.stats.simulated_time(network)
                best = elapsed if best is None else min(best, elapsed)
            points.append((float(size), float(best)))
    finally:
        transport.reset_stats()
        transport.stats.merge(preserved)
    source = "benchmark:wallclock" if measured_clock else "benchmark:simulated"
    return fit_alpha_beta([p[0] for p in points], [p[1] for p in points],
                          source=source)


# ---------------------------------------------------------------------------
# per-bucket communication models (Table I closed forms)
# ---------------------------------------------------------------------------
def bucket_comm_model(method: str, num_workers: int,
                      density: Optional[float] = None,
                      teams: int = 1,
                      num_bits: Optional[int] = None) -> CommModel:
    """``estimator(bucket_elements) -> (rounds, volume)`` for one method.

    Prices a bucket's exchange with the paper's Table I closed forms
    (:mod:`repro.analysis.complexity`), using the bucket's own ``k``
    (``max(1, round(density * elements))`` — per-bucket top-k keeps at
    least one entry, mirroring the selection semantics of the bucketed
    pipeline).  ``num_bits`` applies the quantized COO accounting to the
    bandwidth term.  These are *planning* estimates: the simulator still
    measures the real rounds and volumes when the plan runs.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    sparse_methods = {"SparDL", "Ok-Topk", "TopkA", "TopkDSA", "gTopk"}
    if method in sparse_methods and density is None:
        raise ValueError(f"{method} bucket planning needs a density target")
    if density is not None and not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")

    def bound_for(elements: int):
        if elements <= 0:
            raise ValueError("bucket elements must be positive")
        if method == "Dense":
            return dense_allreduce_complexity(num_workers, elements)
        k = max(1, min(elements, int(round(density * elements))))
        if method == "SparDL":
            if teams <= 1:
                return spardl_complexity(num_workers, elements, k)
            if (teams & (teams - 1)) == 0 and num_workers % teams == 0:
                return spardl_rsag_complexity(num_workers, elements, k, teams)
            return spardl_bsag_complexity(num_workers, elements, k, teams)
        if method == "Ok-Topk":
            return ok_topk_complexity(num_workers, elements, k)
        if method == "TopkA":
            return topk_a_complexity(num_workers, elements, k)
        if method == "TopkDSA":
            return topk_dsa_complexity(num_workers, elements, k)
        if method == "gTopk":
            return gtopk_complexity(num_workers, elements, k)
        raise ValueError(f"no communication model for method {method!r}")

    def estimator(elements: int) -> Tuple[float, float]:
        bound = bound_for(int(elements))
        volume = bound.bandwidth_high
        if num_bits is not None and method != "Dense":
            volume = quantized_bandwidth(volume, num_bits)
        elif num_bits is not None:
            volume = volume * num_bits / 32.0
        return float(bound.latency_rounds), float(volume)

    return estimator


# ---------------------------------------------------------------------------
# fusion plans
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FusionPlan:
    """A planned bucket layout with its predicted overlap timeline.

    ``groups`` maps every fused bucket (forward/layer order) to the
    contiguous range of original layer indices it merges; ``names`` and
    ``sizes`` are the fused layout the
    :class:`~repro.core.bucketed.BucketedSynchronizer` is built from.
    """

    planner: str
    #: The original per-layer layout the plan partitions.
    layers: Tuple[Tuple[str, int], ...]
    #: Per fused bucket: the (start, stop) slice of merged layer indices.
    groups: Tuple[Tuple[int, int], ...]
    #: The calibrated communication model the plan was made against.
    fit: AlphaBetaFit
    #: Volume rescaling applied to the bandwidth term (paper model size).
    volume_scale: float
    #: Predicted overlapped timeline of the fused layout (backward order).
    predicted: OverlapTimeline
    #: Predicted non-overlapped (sequential) time of the *per-layer*
    #: layout: the baseline any acceptable plan must not exceed.
    predicted_sequential: float
    #: True when ASC's threshold grouping predicted worse than per-layer
    #: buckets and the plan fell back to the per-layer layout.
    fallback: bool = False

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a fusion plan needs at least one bucket")
        expected = 0
        for start, stop in self.groups:
            if start != expected or stop <= start:
                raise ValueError(
                    f"fusion groups must be contiguous, ordered and non-empty; "
                    f"got {self.groups}")
            expected = stop
        if expected != len(self.layers):
            raise ValueError("fusion groups must cover every layer exactly once")

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self.groups)

    @property
    def names(self) -> List[str]:
        return ["+".join(name for name, _ in self.layers[start:stop])
                for start, stop in self.groups]

    @property
    def sizes(self) -> List[int]:
        return [sum(size for _, size in self.layers[start:stop])
                for start, stop in self.groups]

    @property
    def total_elements(self) -> int:
        return sum(size for _, size in self.layers)

    def bucket_layout(self) -> List[Tuple[str, int]]:
        """The fused ``(name, size)`` layout, forward order."""
        return list(zip(self.names, self.sizes))

    def breakdown(self) -> dict:
        """JSON-friendly plan summary for benchmark reports."""
        return {
            "planner": self.planner,
            "num_layers": len(self.layers),
            "num_buckets": self.num_buckets,
            "bucket_sizes": self.sizes,
            "alpha": self.fit.alpha,
            "beta": self.fit.beta,
            "fit_source": self.fit.source,
            "volume_scale": self.volume_scale,
            "fallback": self.fallback,
            "predicted_sequential_s": self.predicted_sequential,
            "predicted": self.predicted.breakdown(),
        }


def _group_times(layers: Sequence[Tuple[str, int]],
                 compute_times: Sequence[float],
                 groups: Sequence[Tuple[int, int]],
                 estimator: CommModel,
                 fit: AlphaBetaFit,
                 volume_scale: float) -> Tuple[List[float], List[float]]:
    """Per-group (backward slice, comm time), forward order."""
    computes: List[float] = []
    comms: List[float] = []
    for start, stop in groups:
        size = sum(s for _, s in layers[start:stop])
        rounds, volume = estimator(size)
        computes.append(float(sum(compute_times[start:stop])))
        comms.append(fit.time(rounds, volume * volume_scale))
    return computes, comms


def _timeline_for(layers, compute_times, groups, estimator, fit,
                  volume_scale) -> OverlapTimeline:
    computes, comms = _group_times(layers, compute_times, groups, estimator,
                                   fit, volume_scale)
    # Backward consumes the layout back to front.
    return overlap_timeline(computes[::-1], comms[::-1])


def _validate_plan_inputs(layers, compute_times) -> None:
    if not layers:
        raise ValueError("at least one layer bucket is required")
    if any(size <= 0 for _, size in layers):
        raise ValueError("layer bucket sizes must be positive")
    if len(compute_times) != len(layers):
        raise ValueError(
            f"{len(compute_times)} compute times for {len(layers)} layers")
    if any(t < 0 for t in compute_times):
        raise ValueError("compute times must be non-negative")


def plan_mgwfbp(layers: Sequence[Tuple[str, int]],
                compute_times: Sequence[float],
                estimator: CommModel,
                fit: AlphaBetaFit,
                volume_scale: float = 1.0) -> FusionPlan:
    """MG-WFBP-style fusion: merge adjacent buckets whenever the merge does
    not lengthen the overlapped critical path.

    Starting from per-layer buckets, the planner walks the backward order
    and greedily merges each bucket into its successor when the full
    timeline (re-evaluated exactly, not approximated) predicts a strictly
    shorter critical path — a merge saves one collective's latency but may
    delay gradients that could already have been in flight, and the
    timeline arbitrates.  A critical-path *tie* is accepted only when the
    merge strictly reduces total communication time (it removed latency
    that the overlap happened to be hiding anyway); a tie that saves
    nothing is rejected, so a zero-latency (bandwidth-dominated) network
    keeps pure per-layer buckets.  Passes repeat until no merge is
    accepted, so the result is a local optimum of single adjacent merges.
    Because the starting plan is per-layer and every accepted merge is
    non-worsening, the plan's critical path never exceeds the per-layer
    one — which itself never exceeds the sequential sum.
    """
    layers = tuple((str(name), int(size)) for name, size in layers)
    compute_times = [float(t) for t in compute_times]
    _validate_plan_inputs(layers, compute_times)
    groups: List[Tuple[int, int]] = [(i, i + 1) for i in range(len(layers))]
    current = _timeline_for(layers, compute_times, groups, estimator, fit,
                            volume_scale)
    sequential = current.backward_total + current.comm_total

    improved = True
    while improved and len(groups) > 1:
        improved = False
        # Backward order: the last forward group's backward slice finishes
        # first, so walk the candidate merges from the back of the list.
        for position in range(len(groups) - 2, -1, -1):
            merged = (groups[:position]
                      + [(groups[position][0], groups[position + 1][1])]
                      + groups[position + 2:])
            candidate = _timeline_for(layers, compute_times, merged, estimator,
                                      fit, volume_scale)
            tol = 1e-12 * max(1.0, current.critical_path)
            shorter = candidate.critical_path < current.critical_path - tol
            tie = abs(candidate.critical_path - current.critical_path) <= tol
            saves_comm = candidate.comm_total < current.comm_total - tol
            if shorter or (tie and saves_comm):
                groups = merged
                current = candidate
                improved = True
    return FusionPlan(
        planner="mgwfbp", layers=layers, groups=tuple(groups), fit=fit,
        volume_scale=volume_scale, predicted=current,
        predicted_sequential=sequential,
    )


def plan_asc(layers: Sequence[Tuple[str, int]],
             compute_times: Sequence[float],
             estimator: CommModel,
             fit: AlphaBetaFit,
             volume_scale: float = 1.0) -> FusionPlan:
    """ASC-style fusion: alpha-saturation coalescing over the fitted model.

    Walking the backward order, consecutive layers accumulate into one
    bucket until the bucket's bandwidth term has earned its latency term —
    ``beta * volume >= alpha * rounds`` under the fitted alpha-beta model —
    at which point the bucket closes and the next one starts.  A
    latency-dominated network (large ``alpha/beta``) therefore fuses
    everything into a single flat bucket, while a bandwidth-dominated one
    (``alpha -> 0``) keeps pure per-layer buckets; in between the bucket
    count tracks the fitted saturation size ``alpha / beta``.  Unlike
    MG-WFBP the rule is closed-form rather than timeline-driven, so the
    plan is additionally checked against the per-layer timeline and falls
    back to per-layer buckets when the grouping predicts worse
    (``fallback=True``) — the plan never exceeds the sequential baseline.
    """
    layers = tuple((str(name), int(size)) for name, size in layers)
    compute_times = [float(t) for t in compute_times]
    _validate_plan_inputs(layers, compute_times)
    per_layer = [(i, i + 1) for i in range(len(layers))]
    per_layer_timeline = _timeline_for(layers, compute_times, per_layer,
                                       estimator, fit, volume_scale)
    sequential = (per_layer_timeline.backward_total
                  + per_layer_timeline.comm_total)

    # Accumulate in backward order (last forward layer first), closing each
    # group once its bandwidth term covers its latency term.
    groups_backward: List[Tuple[int, int]] = []
    stop = len(layers)
    for index in range(len(layers) - 1, -1, -1):
        size = sum(s for _, s in layers[index:stop])
        rounds, volume = estimator(size)
        if fit.beta * volume * volume_scale >= fit.alpha * rounds:
            groups_backward.append((index, stop))
            stop = index
    if stop > 0:  # leftover head of the model never saturated: one bucket
        groups_backward.append((0, stop))
    groups = tuple(sorted(groups_backward))

    timeline = _timeline_for(layers, compute_times, groups, estimator, fit,
                             volume_scale)
    fallback = timeline.critical_path > per_layer_timeline.critical_path * (1 + 1e-12)
    if fallback:
        groups = tuple(per_layer)
        timeline = per_layer_timeline
    return FusionPlan(
        planner="asc", layers=layers, groups=groups, fit=fit,
        volume_scale=volume_scale, predicted=timeline,
        predicted_sequential=sequential, fallback=fallback,
    )


_PLANNERS = {"mgwfbp": plan_mgwfbp, "asc": plan_asc}


def plan_buckets(layers: Sequence[Tuple[str, int]],
                 *,
                 planner: str = "mgwfbp",
                 method: str = "SparDL",
                 num_workers: int,
                 density: Optional[float] = None,
                 teams: int = 1,
                 num_bits: Optional[int] = None,
                 fit: Optional[AlphaBetaFit] = None,
                 transport: Optional[Transport] = None,
                 network: Optional[NetworkProfile] = None,
                 compute_profile: Optional[ComputeProfile] = None,
                 model_parameters: Optional[int] = None) -> FusionPlan:
    """Plan a fused bucket layout for ``layers`` (forward order).

    Resolution order for the alpha-beta model: an explicit ``fit`` wins;
    otherwise a ``transport`` is micro-benchmarked
    (:func:`benchmark_transport`, priced by ``network`` on simulated
    backends); otherwise ``network``'s constants are taken at face value.
    ``compute_profile`` supplies the per-bucket backward times (none means
    planning under zero compute — no overlap is assumable, so latency
    minimisation fuses aggressively).  ``model_parameters`` defaults to
    the layout's own total and feeds the same
    :meth:`~repro.training.timing.ComputeProfile.volume_scale` rescaling
    the iteration timing applies, so plans optimise exactly the quantity
    :func:`~repro.training.timing.iteration_time` reports.

    Everything here is deterministic: a fixed layout, profile and
    fit/seeded transport always produce the identical plan.
    """
    if planner not in _PLANNERS:
        raise ValueError(
            f"unknown fusion planner {planner!r}; expected one of "
            f"{', '.join(FUSION_PLANNERS)}")
    layout = [(str(name), int(size)) for name, size in layers]
    if not layout:
        raise ValueError("at least one layer bucket is required")
    if fit is None:
        if transport is not None:
            fit = benchmark_transport(transport, network=network)
        elif network is not None:
            fit = AlphaBetaFit.from_network(network)
        else:
            raise ValueError(
                "give fit=, transport= or network= so the planner has an "
                "alpha-beta communication model to optimise against")
    sizes = [size for _, size in layout]
    total = sum(sizes)
    if model_parameters is None:
        model_parameters = total
    if compute_profile is not None:
        compute_times = compute_profile.bucket_backward_times_for(sizes)
        volume_scale = compute_profile.volume_scale(model_parameters)
    else:
        compute_times = [0.0] * len(layout)
        volume_scale = 1.0
    estimator = bucket_comm_model(method, num_workers, density=density,
                                  teams=teams, num_bits=num_bits)
    return _PLANNERS[planner](layout, compute_times, estimator, fit,
                              volume_scale=volume_scale)
