"""Common interface for gradient synchronisation methods.

Every communication method in this repository — SparDL and all baselines —
implements :class:`GradientSynchronizer`: given the local dense gradient of
every worker it returns the synchronised (summed) global gradient each worker
ends up holding, together with the communication statistics of the exchange.

Keeping a single interface lets the distributed trainer, the examples and
every benchmark swap methods freely, exactly as the paper swaps its
communication backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..comm.cluster import SimulatedCluster
from ..comm.stats import CommStats

__all__ = ["SyncResult", "GradientSynchronizer", "resolve_k"]


def resolve_k(num_elements: int, k: Optional[int], density: Optional[float]) -> int:
    """Resolve the number of selected gradients from ``k`` or ``density``.

    Exactly one of the two should be provided; the result is clamped to
    ``[1, num_elements]``.
    """
    if num_elements <= 0:
        raise ValueError("num_elements must be positive")
    if k is None and density is None:
        raise ValueError("either k or density must be given")
    if k is not None and density is not None:
        raise ValueError("give only one of k and density")
    if k is None:
        if not 0 < density <= 1:
            raise ValueError("density must be in (0, 1]")
        k = int(round(density * num_elements))
    k = int(k)
    return max(1, min(num_elements, k))


@dataclass
class SyncResult:
    """Outcome of one gradient synchronisation."""

    #: Per-worker dense global gradient (sum over all workers' contributions).
    global_gradients: Dict[int, np.ndarray]
    #: Communication accounting for this synchronisation only.
    stats: CommStats
    #: Method-specific diagnostics (final nnz, thresholds, team size, ...).
    info: Dict[str, Any] = field(default_factory=dict)

    def gradient(self, worker: int = 0) -> np.ndarray:
        return self.global_gradients[worker]

    @property
    def is_consistent(self) -> bool:
        """True when every worker holds numerically identical global gradients."""
        ranks = sorted(self.global_gradients)
        reference = self.global_gradients[ranks[0]]
        return all(
            np.allclose(self.global_gradients[rank], reference, rtol=1e-9, atol=1e-12)
            for rank in ranks[1:]
        )


class GradientSynchronizer(ABC):
    """Base class for dense and sparse All-Reduce methods."""

    #: Short human-readable name used in reports and figures.
    name: str = "synchronizer"

    def __init__(self, cluster: SimulatedCluster, num_elements: int) -> None:
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        self.cluster = cluster
        self.num_elements = int(num_elements)
        self.iteration = 0

    @property
    def num_workers(self) -> int:
        return self.cluster.num_workers

    # ------------------------------------------------------------------
    def synchronize(self, gradients: Dict[int, np.ndarray]) -> SyncResult:
        """Synchronise the workers' local gradients.

        ``gradients`` maps every worker rank to its local dense gradient of
        length ``num_elements``.  The concrete algorithm runs inside a fresh
        statistics window so the returned :class:`SyncResult` accounts for
        this call only.
        """
        self._validate(gradients)
        self.cluster.reset_stats()
        result = self._synchronize(
            {rank: np.asarray(grad, dtype=np.float64) for rank, grad in gradients.items()}
        )
        result.stats = self.cluster.reset_stats()
        self.iteration += 1
        return result

    @abstractmethod
    def _synchronize(self, gradients: Dict[int, np.ndarray]) -> SyncResult:
        """Method-specific synchronisation; statistics are captured by the caller."""

    # ------------------------------------------------------------------
    def _validate(self, gradients: Dict[int, np.ndarray]) -> None:
        expected = set(self.cluster.ranks)
        provided = set(gradients)
        if provided != expected:
            raise ValueError(
                f"gradients must be provided for every worker: expected {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        for rank, grad in gradients.items():
            grad = np.asarray(grad)
            if grad.ndim != 1 or grad.shape[0] != self.num_elements:
                raise ValueError(
                    f"worker {rank}: gradient must be a vector of length {self.num_elements}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(P={self.num_workers}, n={self.num_elements})"
