"""Common interface for gradient synchronisation methods.

Every communication method in this repository — SparDL and all baselines —
implements :class:`GradientSynchronizer`: given the local dense gradient of
every worker it returns the synchronised (summed) global gradient each worker
ends up holding, together with the communication statistics of the exchange.

Since the staged-pipeline redesign, a synchronisation is no longer one
opaque call: every method expresses itself as the five stages of
:mod:`repro.core.pipeline` (``select -> compress -> exchange -> combine ->
residual_update``) and the base class drives them.  :meth:`synchronize`
remains as a thin adapter over the staged driver, so existing callers and
tests run unchanged, while sessions (:class:`~repro.core.pipeline.SyncSession`),
sparsity schedules (:mod:`repro.core.schedules`) and per-layer bucketing
(:mod:`repro.core.bucketed`) hook the stage boundaries directly.

Keeping a single interface lets the distributed trainer, the examples and
every benchmark swap methods freely, exactly as the paper swaps its
communication backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from ..comm.transport import Transport, payload_size
from ..comm.faults import membership_transition
from ..comm.stats import CommStats
from .pipeline import PIPELINE_STAGES, StepContext, SyncStage, fold_lost_messages
from .schedules import KSchedule, resolve_k

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compression.quantization import QuantizedCompressor
    from ..compression.stack import CompressorStack

__all__ = ["SyncResult", "GradientSynchronizer", "resolve_k"]


@dataclass
class SyncResult:
    """Outcome of one gradient synchronisation."""

    #: Per-worker dense global gradient (sum over all workers' contributions).
    global_gradients: Dict[int, np.ndarray]
    #: Communication accounting for this synchronisation only.
    stats: CommStats
    #: Method-specific diagnostics (final nnz, thresholds, team size, ...).
    info: Dict[str, Any] = field(default_factory=dict)

    def gradient(self, worker: int = 0) -> np.ndarray:
        return self.global_gradients[worker]

    @property
    def is_consistent(self) -> bool:
        """True when every worker holds numerically identical global gradients."""
        ranks = sorted(self.global_gradients)
        reference = self.global_gradients[ranks[0]]
        return all(
            np.allclose(self.global_gradients[rank], reference, rtol=1e-9, atol=1e-12)
            for rank in ranks[1:]
        )


class GradientSynchronizer(ABC):
    """Base class for dense and sparse All-Reduce methods.

    Subclasses implement the stage methods (``stage_exchange`` and
    ``stage_combine`` are mandatory; ``stage_select``, ``stage_compress``
    and ``stage_residual_update`` default to the dense pass-through /
    no-op) and, when they support sparsity schedules, :meth:`set_sparsity`.
    """

    #: Short human-readable name used in reports and figures.
    name: str = "synchronizer"

    def __init__(self, cluster: Transport, num_elements: int,
                 schedule: Optional[KSchedule] = None) -> None:
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        self.cluster = cluster
        self.num_elements = int(num_elements)
        self.iteration = 0
        #: Sparsity schedule consulted at the start of every step
        #: (``None`` for methods without a sparsity knob, e.g. Dense).
        self.schedule: Optional[KSchedule] = schedule
        #: The composable compressor stack driving the ``compress`` stage
        #: (``None`` keeps the identity compress stage and the
        #: full-precision accounting — the pre-compression pipeline, bit for
        #: bit).  Built by subclasses via
        #: :meth:`~repro.compression.stack.CompressorStack.from_config` and
        #: bound to the method's residual manager through :meth:`adopt_stack`.
        self.stack: Optional["CompressorStack"] = None
        #: Tracer installed by ``repro.obs.attach_tracer`` / ``trace=`` on
        #: the facade spec (``None`` keeps the untraced code path).
        self.tracer: Optional[Any] = None
        # Iteration up to which membership events have been applied, so
        # polling twice before the same step never applies an event twice.
        self._membership_polled = -1

    @property
    def num_workers(self) -> int:
        return self.cluster.num_workers

    @property
    def compressor(self) -> Optional["QuantizedCompressor"]:
        """The stack's quantize-stage compressor, or ``None``.

        Read-only backward-compatible accessor: pre-stack code (tests,
        benchmarks, diagnostics) inspected ``sync.compressor`` directly; the
        quantizer now lives inside :attr:`stack`.
        """
        return self.stack.quantize if self.stack is not None else None

    # ------------------------------------------------------------------
    # compressor stack plumbing
    # ------------------------------------------------------------------
    def adopt_stack(self, stack: Optional["CompressorStack"]) -> None:
        """Install ``stack`` and bind its declarative stages to the method's
        residual manager (momentum correction configures the manager's
        velocity mode here).  ``None`` uninstalls — full precision, no
        momentum, the pre-stack pipeline bit for bit."""
        self.stack = stack
        if stack is None:
            return
        residuals = getattr(self, "residuals", None)
        if residuals is not None:
            stack.bind_residuals(residuals)
        elif stack.momentum is not None:
            raise ValueError(
                f"{type(self).__name__} has no residual manager; momentum "
                "correction requires an error-feedback path")

    def enable_momentum_correction(self, factor: float) -> None:
        """Turn on DGC momentum correction at ``factor`` (trainer handoff).

        Idempotent at the same factor; raises if a different factor is
        already active (e.g. spec ``momentum=`` disagreeing with
        ``TrainerConfig.momentum``) or the method has no residual manager.
        """
        residuals = getattr(self, "residuals", None)
        if residuals is None:
            raise ValueError(
                f"{type(self).__name__} has no residual manager; momentum "
                "correction requires an error-feedback path")
        residuals.set_momentum(factor)

    # ------------------------------------------------------------------
    # the staged pipeline
    # ------------------------------------------------------------------
    def synchronize(self, gradients: Dict[int, np.ndarray]) -> SyncResult:
        """Synchronise the workers' local gradients.

        ``gradients`` maps every worker rank to its local dense gradient of
        length ``num_elements``.  This is a thin adapter over the staged
        pipeline driver (:meth:`_step`): the concrete algorithm runs inside
        a fresh statistics window so the returned :class:`SyncResult`
        accounts for this call only.
        """
        return self._step(gradients)

    def _step(self, gradients: Dict[int, np.ndarray], observer=None) -> SyncResult:
        """Run one full pipeline step: resolve ``k`` through the schedule,
        drive the five stages inside a fresh statistics window, feed the
        outcome back to the schedule, and advance the iteration counter.

        ``observer`` (``hook(stage, context)``) is invoked after every
        stage; :class:`~repro.core.pipeline.SyncSession` uses it to expose
        the stage boundaries.
        """
        if self.schedule is not None:
            k = int(self.schedule.resolve(self.iteration, self.num_elements))
            if k != getattr(self, "k", None):
                self.set_sparsity(k)
        self._validate(gradients)
        self.cluster.reset_stats()
        context = StepContext(
            gradients={rank: np.asarray(grad, dtype=np.float64)
                       for rank, grad in gradients.items()},
            k=getattr(self, "k", None),
            iteration=self.iteration,
        )
        # A pricing compressor stack re-prices every wire message of this
        # step at its compressed accounting.  The pricer is scoped to the
        # step (and the previous one restored) because the cluster is shared
        # — e.g. by the buckets of a BucketedSynchronizer, which may mix
        # quantized and full-precision buckets.
        prices = self.stack is not None and self.stack.prices
        previous_pricer = None
        if prices:
            previous_pricer = self.cluster.install_pricer(self.stack.price_message)
        try:
            for stage in PIPELINE_STAGES:
                getattr(self, f"stage_{stage.value}")(context)
                if stage in (SyncStage.EXCHANGE, SyncStage.COMBINE):
                    # Graceful degradation under faults: messages lost past
                    # the retry budget surrender their mass to the senders'
                    # residual stores before the residual state is resolved,
                    # so the conservation invariant survives the loss.
                    self._absorb_lost(context)
                if observer is not None:
                    observer(stage, context)
        finally:
            if prices:
                self.cluster.install_pricer(previous_pricer)
        if prices:
            context.info.setdefault("quantized_bits", self.stack.num_bits)
        residuals = getattr(self, "residuals", None)
        if residuals is not None and residuals.momentum:
            # Only added when momentum correction is active, so momentum-off
            # runs keep their info dicts (and bit-identity gates) unchanged.
            context.info.setdefault("momentum", residuals.momentum)
        if "lost_messages" in context.scratch:
            # Copied from scratch because combine stages may rebuild
            # ``context.info`` wholesale after the exchange absorbed losses.
            context.info["lost_messages"] = context.scratch["lost_messages"]
            context.info["lost_mass"] = context.scratch["lost_mass"]
        result = SyncResult(
            global_gradients=context.global_gradients,
            stats=self.cluster.reset_stats(),
            info=context.info,
        )
        if self.schedule is not None:
            self.schedule.observe(self.iteration, context.k, result)
        self.iteration += 1
        return result

    def _absorb_lost(self, context: StepContext) -> None:
        """Fold messages the cluster declared lost into the residual path."""
        lost = self.cluster.drain_lost()
        if not lost:
            return
        residuals = getattr(self, "residuals", None)
        if residuals is None:
            raise RuntimeError(
                f"{type(self).__name__} lost {len(lost)} lossy message(s) but "
                "has no residual manager to absorb their mass; lossy "
                "messages require an error-feedback path")
        mass = fold_lost_messages(lost, residuals)
        context.scratch["lost_messages"] = (
            context.scratch.get("lost_messages", 0) + len(lost))
        context.scratch["lost_mass"] = (
            context.scratch.get("lost_mass", 0.0) + mass)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def poll_membership(self) -> bool:
        """Apply membership events scheduled before the current iteration.

        Consults the cluster's installed fault plan; crash/join events keyed
        to :attr:`iteration` resolve through
        :func:`~repro.comm.faults.membership_transition` and are applied via
        :meth:`apply_membership`.  Call *between* steps, before building the
        next step's gradients — the worker count may change.  Idempotent per
        iteration.  Returns True when the membership changed.
        """
        plan = self.cluster.fault_plan
        if plan is None or not getattr(plan, "events", None):
            return False
        if self.iteration <= self._membership_polled:
            return False
        self._membership_polled = self.iteration
        changed = False
        tracer = self.cluster.tracer
        for event in plan.events_at(self.iteration):
            old_size = self.num_workers
            new_size, mapping = membership_transition(self.num_workers, event)
            self.apply_membership(new_size, mapping)
            changed = True
            if tracer is not None:
                details = event.describe()
                tracer.record_membership(details.pop("kind"),
                                         old_workers=old_size,
                                         new_workers=new_size, **details)
        return changed

    def apply_membership(self, num_workers: int, mapping: Dict[int, int]) -> None:
        """Adopt a new cluster membership.

        ``mapping`` sends every old rank to the new rank inheriting its
        state (see :func:`~repro.comm.faults.membership_transition`).  The
        base implementation resizes the cluster — sufficient for stateless
        methods like the dense baseline; methods with per-rank state
        (residual stores, team partitions) override and remap it first.
        """
        self.cluster.resize(num_workers)

    # ------------------------------------------------------------------
    # stage protocol (the SyncPipeline surface)
    # ------------------------------------------------------------------
    def stage_select(self, context: StepContext) -> None:
        """Residual-corrected local selection.  Default: dense pass-through
        (no residuals, no sparsification)."""
        context.selected = context.gradients

    def stage_compress(self, context: StepContext) -> None:
        """Wire encoding of the selection.  Default: identity — COO sparse
        gradients already are the wire format.  Hook point for quantisation."""
        context.wire = context.selected

    @abstractmethod
    def stage_exchange(self, context: StepContext) -> None:
        """The method-specific communication.  All cluster traffic of the
        step happens here; reads ``context.wire``, writes ``context.exchanged``."""

    @abstractmethod
    def stage_combine(self, context: StepContext) -> None:
        """Merge the exchanged pieces into ``context.global_gradients`` (and
        ``context.global_sparse`` / ``context.reference`` for sparse methods),
        and assemble ``context.info``."""

    def stage_residual_update(self, context: StepContext) -> None:
        """Resolve residual state against the final global index set.
        Default: no-op (methods without error feedback)."""

    # ------------------------------------------------------------------
    def wire_size(self, payload: Any) -> float:
        """Billed wire size of ``payload`` under the active compression.

        Methods that compute explicit message sizes (metadata exclusion,
        dense switching, fold-out subtraction) route them through this
        helper so one code path serves both the full-precision and the
        quantized accounting; such messages are sent with
        ``size_final=True`` because the pricer cannot reconstruct the
        adjustment from the payload alone.
        """
        if self.stack is not None and self.stack.prices:
            return self.stack.price(payload)
        return payload_size(payload)

    # ------------------------------------------------------------------
    def set_sparsity(self, k: int) -> None:
        """Adopt a new per-step ``k`` (called by the schedule resolution).

        Methods with a sparsity knob override this; the default refuses so
        a schedule attached to a dense method fails loudly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support per-step sparsity")

    # ------------------------------------------------------------------
    def _validate(self, gradients: Dict[int, np.ndarray]) -> None:
        expected = set(self.cluster.ranks)
        provided = set(gradients)
        if provided != expected:
            raise ValueError(
                f"gradients must be provided for every worker: expected {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        for rank, grad in gradients.items():
            grad = np.asarray(grad)
            if grad.ndim != 1 or grad.shape[0] != self.num_elements:
                raise ValueError(
                    f"worker {rank}: gradient must be a vector of length {self.num_elements}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(P={self.num_workers}, n={self.num_elements})"
