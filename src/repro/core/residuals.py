"""Residual collection (error feedback) strategies.

Top-k sparsification discards gradient mass; error feedback keeps the
discarded values as *residuals* and adds them back to the next iteration's
gradients so nothing is permanently lost.  The paper distinguishes three
kinds of discarded gradients inside SparDL (Section III-C):

* **local residuals** — dropped by a worker's own block-wise top-k *before*
  any transmission,
* **end-procedure residuals** — dropped during the communication procedure,
  whose indices never appear in the final global gradient,
* **in-procedure residuals** — dropped during the procedure although their
  index *does* appear in the final global gradient (contributed by another
  worker).

Three policies are provided, matching the paper's Section IV-I ablation:

* :class:`ResidualPolicy.GLOBAL` (GRES, the paper's contribution) collects
  all three kinds.  Collection is event-driven: every discarded value is
  accumulated on the worker that performed the discard, which yields the
  conservation invariant ``sum_w residual_w + global = sum_w input``.
* :class:`ResidualPolicy.PARTIAL` (PRES, as in Ok-Topk / gTopk) collects
  local and end-procedure residuals only.
* :class:`ResidualPolicy.LOCAL` (LRES, as in DGC) collects local residuals
  only.
* :class:`ResidualPolicy.NONE` disables error feedback entirely.

Orthogonally to the policy, :class:`ResidualManager` supports **deferred
accumulation** (``deferred=True``): sparse discards are buffered per worker
and folded into the dense stores with one k-way merge and one scatter per
worker at the iteration's flush points, instead of one scatter per
(worker, step) — the amortisation matters at large worker counts where a
synchronisation performs many small discards.  Both modes produce
bit-identical stores; see :meth:`ResidualStore.fold_sparse_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..sparse.vector import SparseGradient, merge_many_coo

__all__ = ["ResidualPolicy", "ResidualStore", "ResidualManager"]


class ResidualPolicy(str, Enum):
    """Which discarded gradients are kept for the next iteration."""

    GLOBAL = "global"
    PARTIAL = "partial"
    LOCAL = "local"
    NONE = "none"

    @classmethod
    def coerce(cls, value: "ResidualPolicy | str") -> "ResidualPolicy":
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


class ResidualStore:
    """Dense per-worker accumulator of discarded gradient mass.

    :attr:`scatter_count` counts the sparse scatter operations performed
    (one per :meth:`add_sparse` call, one per :meth:`fold_sparse_batch`
    call) so the deferred-accumulation benchmark can demonstrate the
    reduction from one scatter per (worker, step) to one per flush.
    """

    def __init__(self, num_elements: int) -> None:
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        self._data = np.zeros(num_elements, dtype=np.float64)
        #: Number of sparse scatter operations applied to this store.
        self.scatter_count = 0

    @property
    def num_elements(self) -> int:
        """Length of the underlying dense gradient vector (``int``)."""
        return self._data.shape[0]

    def add_dense(self, values: np.ndarray, offset: int = 0) -> None:
        """Accumulate a dense block ``values`` starting at ``offset``."""
        values = np.asarray(values, dtype=np.float64)
        self._data[offset:offset + values.shape[0]] += values

    def add_sparse(self, sparse: SparseGradient, share: float = 1.0) -> None:
        """Accumulate ``share * sparse`` with one sparse scatter."""
        if sparse.nnz == 0:
            return
        # SparseGradient indices are unique by invariant, so a direct
        # fancy-index add is exact and much faster than np.add.at.
        self._data[sparse.indices] += sparse.values * float(share)
        self.scatter_count += 1

    def fold_sparse_batch(
        self, discards: Sequence[Tuple[SparseGradient, float]]
    ) -> None:
        """Accumulate many ``(sparse, share)`` discards with ONE scatter.

        Bit-identical to calling :meth:`add_sparse` once per discard in
        order: the current store content at the touched indices is gathered
        and fed to :func:`~repro.sparse.vector.merge_many_coo` as stream 0,
        so each output value is the same left-to-right addition chain
        ``((base + v1) + v2) + ...`` the sequential scatters would have
        produced, and the result is written back with a single fancy-index
        assignment.
        """
        index_streams: List[np.ndarray] = []
        value_streams: List[np.ndarray] = []
        for sparse, share in discards:
            if sparse.nnz == 0:
                continue
            index_streams.append(sparse.indices)
            # share == 1.0 skips the multiply; v * 1.0 == v bitwise anyway.
            value_streams.append(sparse.values if share == 1.0
                                 else sparse.values * float(share))
        if not index_streams:
            return
        touched = np.unique(np.concatenate(index_streams))
        base = self._data[touched]
        indices, values = merge_many_coo([touched] + index_streams,
                                         [base] + value_streams)
        # Every stream index is in `touched`, so the merge returns exactly
        # the touched set and the write-back is a plain assignment.
        self._data[indices] = values
        self.scatter_count += 1

    def peek(self) -> np.ndarray:
        """Current residual (read-only view semantics: copy)."""
        return self._data.copy()

    def drain(self) -> np.ndarray:
        """Return the accumulated residual and reset the store."""
        data = self._data
        self._data = np.zeros_like(data)
        return data

    def norm(self) -> float:
        """L2 norm of the stored residual (``float``)."""
        return float(np.linalg.norm(self._data))


@dataclass
class _PendingDiscard:
    """A procedure discard whose fate depends on the final global indices."""

    worker: int
    sparse: SparseGradient
    share: float


class ResidualManager:
    """Collects discarded gradients according to a :class:`ResidualPolicy`.

    The manager owns one :class:`ResidualStore` per worker.  A
    synchronisation round uses it in three phases:

    1. :meth:`apply` adds the stored residuals to the new local gradients
       (and empties the stores),
    2. :meth:`collect_local` / :meth:`collect_procedure` are called whenever
       a sparsification discards values,
    3. :meth:`finalize` resolves deferred (PARTIAL-policy) discards once the
       final global gradient's index set is known.

    **Deferred accumulation** (``deferred=True``): instead of scattering
    every sparse discard into the dense store at collection time — one
    scatter per (worker, step) — the manager buffers the discards per
    worker and folds each worker's buffer through a single
    :func:`~repro.sparse.vector.merge_many_coo` call and one scatter at the
    next flush point (:meth:`flush`, reached from :meth:`apply`,
    :meth:`finalize` and every diagnostic read).  The fold replays the same
    left-to-right addition chain the eager scatters would have performed
    (see :meth:`ResidualStore.fold_sparse_batch`), so both modes produce
    bit-identical stores.  The ordering contract is that dense
    :meth:`collect_local` residuals of an iteration are collected *before*
    that iteration's sparse discards — which is how every synchroniser in
    this repository behaves (SRS phase 1 precedes all transmissions).

    Parameters
    ----------
    num_workers:
        Number of per-worker stores to own (``int > 0``).
    num_elements:
        Gradient vector length of every store (``int > 0``).
    policy:
        Which discards to keep: a :class:`ResidualPolicy` or its string
        value (``"global"`` / ``"partial"`` / ``"local"`` / ``"none"``).
    deferred:
        When True, batch sparse discards per worker and fold them at flush
        points instead of scattering eagerly.  Default False (the eager
        reference path).
    momentum:
        DGC momentum-correction factor ``m`` in ``[0, 1)`` (Lin et al.,
        ICLR'18).  When positive, :meth:`apply` accumulates a per-worker
        *velocity* ``u = m * u + gradient`` and corrects with
        ``velocity + residual`` instead of ``gradient + residual``, so the
        residual store accumulates velocity rather than raw gradient — the
        momentum history of delayed coordinates survives sparsification.
        :meth:`finalize` applies DGC's *momentum factor masking*: velocity
        is zeroed at the final global index set (those coordinates were just
        applied, so their momentum restarts).  Dense synchronisation paths
        never call :meth:`finalize`, leave the velocity unmasked, and are
        therefore mathematically equivalent to naive momentum SGD.  The
        default 0.0 disables the mode and keeps every code path bit-identical
        to a manager built without the argument.
    """

    def __init__(self, num_workers: int, num_elements: int,
                 policy: ResidualPolicy | str = ResidualPolicy.GLOBAL,
                 deferred: bool = False, momentum: float = 0.0) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.policy = ResidualPolicy.coerce(policy)
        self.num_workers = num_workers
        self.num_elements = num_elements
        self.deferred = bool(deferred)
        self._stores: Dict[int, ResidualStore] = {
            worker: ResidualStore(num_elements) for worker in range(num_workers)
        }
        self._pending: List[_PendingDiscard] = []
        #: Deferred mode: per-worker FIFO of (discard, share) awaiting a flush.
        self._buffered: Dict[int, List[Tuple[SparseGradient, float]]] = {
            worker: [] for worker in range(num_workers)
        }
        self.momentum = 0.0
        #: Per-worker velocity ``u`` (allocated only when momentum > 0, so
        #: the momentum-off paths stay exactly the pre-momentum code).
        self._velocity: Optional[Dict[int, np.ndarray]] = None
        if momentum:
            self.set_momentum(momentum)

    # ------------------------------------------------------------------
    # DGC momentum correction
    # ------------------------------------------------------------------
    def set_momentum(self, momentum: float) -> None:
        """Enable (or re-confirm) momentum correction at factor ``momentum``.

        Idempotent when called again with the same factor; raises
        ``ValueError`` if a *different* non-zero factor is already active —
        two owners disagreeing on the momentum factor is always a
        configuration bug (e.g. spec ``momentum=`` vs trainer handoff).
        """
        momentum = float(momentum)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self._velocity is not None and momentum != self.momentum:
            raise ValueError(
                f"momentum correction already active at factor "
                f"{self.momentum}; cannot change it to {momentum}")
        self.momentum = momentum
        if momentum and self._velocity is None:
            self._velocity = {
                worker: np.zeros(self.num_elements, dtype=np.float64)
                for worker in range(self.num_workers)
            }

    def velocity(self, worker: int) -> Optional[np.ndarray]:
        """The worker's momentum velocity ``u`` (copy), or ``None`` when
        momentum correction is off."""
        if self._velocity is None:
            return None
        return self._velocity[worker].copy()

    def total_velocity(self) -> np.ndarray:
        """Coordinate-wise sum of all workers' velocities (zeros when
        momentum correction is off).  Used by the momentum conservation
        tests: with correction on, the invariant becomes
        ``global + residual_after == residual_before
        + momentum * velocity_before + sum_w gradient_w``."""
        total = np.zeros(self.num_elements, dtype=np.float64)
        if self._velocity is not None:
            for velocity in self._velocity.values():
                total += velocity
        return total

    # ------------------------------------------------------------------
    def store(self, worker: int) -> ResidualStore:
        """The worker's :class:`ResidualStore`, flushed of any buffered
        discards so direct reads (``peek`` / ``norm``) are accurate."""
        self.flush(worker)
        return self._stores[worker]

    def flush(self, worker: Optional[int] = None) -> None:
        """Fold buffered discards into the dense stores (deferred mode).

        One :func:`~repro.sparse.vector.merge_many_coo` fold and one scatter
        per non-empty buffer; a no-op in eager mode or when nothing is
        buffered.  ``worker=None`` flushes every worker.
        """
        if not self.deferred:
            return
        workers = self._buffered.keys() if worker is None else (worker,)
        for rank in workers:
            buffered = self._buffered[rank]
            if buffered:
                self._stores[rank].fold_sparse_batch(buffered)
                buffered.clear()

    def apply(self, gradients: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Return the error-corrected gradient per worker and reset the stores.

        Without momentum correction this is ``gradient + residual``.  With
        ``momentum > 0`` the per-worker velocity is advanced first
        (``u = m * u + gradient``) and the correction becomes
        ``u + residual`` — the DGC recursion ``v_t = v_{t-1} + u_t`` with the
        residual store playing the role of the unsent accumulator ``v``.
        A flush point: buffered discards are folded in before draining.
        """
        self.flush()
        corrected = {}
        for worker, gradient in gradients.items():
            residual = self._stores[worker].drain()
            gradient = np.asarray(gradient, dtype=np.float64)
            if self._velocity is not None:
                velocity = self._velocity[worker]
                velocity *= self.momentum
                velocity += gradient
                corrected[worker] = velocity + residual
            else:
                corrected[worker] = gradient + residual
        return corrected

    # ------------------------------------------------------------------
    # collection hooks
    # ------------------------------------------------------------------
    def collect_local(self, worker: int, residual_block: np.ndarray, offset: int = 0) -> None:
        """Collect a *local* residual: a dense block with the transmitted
        entries already zeroed, produced before any communication."""
        if self.policy is ResidualPolicy.NONE:
            return
        self._stores[worker].add_dense(residual_block, offset)

    def collect_local_sparse(self, worker: int, dropped: SparseGradient, share: float = 1.0) -> None:
        """Sparse variant of :meth:`collect_local`.

        ``dropped`` is the discarded :class:`SparseGradient`; ``share`` is
        the fraction of it this worker keeps (1.0 unless several workers
        discard identical values).  Buffered until the next flush in
        deferred mode.
        """
        if self.policy is ResidualPolicy.NONE:
            return
        if self.deferred:
            if dropped.nnz:
                self._buffered[worker].append((dropped, share))
            return
        self._stores[worker].add_sparse(dropped, share)

    def collect_procedure(self, worker: int, dropped: SparseGradient, share: float = 1.0) -> None:
        """Collect gradients discarded *during* the communication procedure.

        Under GRES they are stored on the discarding worker — immediately in
        eager mode, at the next flush in deferred mode.  Under PRES they are
        held back until :meth:`finalize` decides whether they are
        end-procedure (kept) or in-procedure (dropped).  Under LRES / NONE
        they are discarded.
        """
        if dropped.nnz == 0:
            return
        if self.policy is ResidualPolicy.GLOBAL:
            if self.deferred:
                self._buffered[worker].append((dropped, share))
            else:
                self._stores[worker].add_sparse(dropped, share)
        elif self.policy is ResidualPolicy.PARTIAL:
            self._pending.append(_PendingDiscard(worker, dropped, share))
        # LOCAL and NONE intentionally drop procedure residuals.

    def finalize(self, final_indices: Optional[Iterable[int]]) -> None:
        """Resolve PRES-pending discards given the final global index set.

        ``final_indices`` is the index set of the final global gradient (an
        ``np.ndarray`` or iterable of ints; ``None`` means empty).  A flush
        point in deferred mode, for every policy.

        With momentum correction active, also applies DGC's *momentum factor
        masking*: every worker's velocity is zeroed at the final global
        indices, because those coordinates were just applied to the model and
        their momentum history must restart.  Dense paths (pure dense
        allreduce, SparDL dense-fallback steps) do not call :meth:`finalize`
        and so keep their velocity — which is exactly what makes the dense
        path equal to naive momentum SGD.
        """
        final: Optional[np.ndarray] = None
        needs_final = (self.policy is ResidualPolicy.PARTIAL
                       or self._velocity is not None)
        if needs_final:
            if final_indices is None:
                final = np.empty(0, dtype=np.int64)
            elif isinstance(final_indices, np.ndarray):
                final = final_indices.astype(np.int64, copy=False)
            else:
                final = np.fromiter((int(i) for i in final_indices),
                                    dtype=np.int64)
            # Uniquify once so every membership test below can use the fast
            # assume_unique path (pending indices are unique by invariant).
            final = np.unique(final)
        if self.policy is ResidualPolicy.PARTIAL:
            for pending in self._pending:
                if pending.sparse.nnz == 0:
                    continue
                mask = ~np.isin(pending.sparse.indices, final,
                                assume_unique=True)
                if not mask.any():
                    continue
                # Masking a sorted-unique index array preserves the invariant.
                end_procedure = SparseGradient.from_sorted_unique(
                    pending.sparse.indices[mask], pending.sparse.values[mask],
                    pending.sparse.length,
                )
                if self.deferred:
                    self._buffered[pending.worker].append(
                        (end_procedure, pending.share))
                else:
                    self._stores[pending.worker].add_sparse(
                        end_procedure, pending.share)
        self._pending.clear()
        self.flush()
        if self._velocity is not None and final is not None and final.size:
            for velocity in self._velocity.values():
                velocity[final] = 0.0

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def remap_workers(self, num_workers: int, mapping: Dict[int, int]) -> None:
        """Adopt a new worker count, handing residual state across ranks.

        ``mapping`` sends every *old* rank to the new rank inheriting its
        store (see :func:`~repro.comm.faults.membership_transition`: a
        crashed rank maps onto a survivor, which absorbs its residual so no
        gradient mass leaves the system; joins map identically and the new
        rank starts empty).  Buffered discards are flushed first and
        PRES-pending discards follow their worker, so conservation holds
        exactly across the transition in both eager and deferred modes.
        Momentum-correction velocity state is handed off the same way: a
        crashed rank's velocity is summed onto its successor's (momentum
        history is conserved alongside the residual mass) and joining ranks
        start from zero velocity.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.flush()
        new_stores: Dict[int, ResidualStore] = {
            worker: ResidualStore(self.num_elements) for worker in range(num_workers)
        }
        new_velocity: Optional[Dict[int, np.ndarray]] = None
        if self._velocity is not None:
            new_velocity = {
                worker: np.zeros(self.num_elements, dtype=np.float64)
                for worker in range(num_workers)
            }
        for old, store in self._stores.items():
            if old not in mapping:
                raise ValueError(f"mapping does not cover old rank {old}")
            new = mapping[old]
            if not 0 <= new < num_workers:
                raise ValueError(
                    f"old rank {old} maps to {new}, outside the new "
                    f"membership of {num_workers} workers")
            new_stores[new]._data += store._data
            if new_velocity is not None:
                new_velocity[new] += self._velocity[old]
        for pending in self._pending:
            pending.worker = mapping[pending.worker]
        self._stores = new_stores
        self._velocity = new_velocity
        self._buffered = {worker: [] for worker in range(num_workers)}
        self.num_workers = num_workers

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def total_residual(self) -> np.ndarray:
        """Coordinate-wise sum of all workers' residuals (used by the
        conservation tests and by convergence diagnostics).  Returns a fresh
        dense ``np.ndarray`` of ``num_elements`` floats; flushes buffered
        discards first."""
        self.flush()
        total = np.zeros(self.num_elements, dtype=np.float64)
        for store in self._stores.values():
            total += store.peek()
        return total

    def residual_norms(self) -> Dict[int, float]:
        """Per-worker L2 norm of the stored residual (``{rank: float}``);
        flushes buffered discards first."""
        self.flush()
        return {worker: store.norm() for worker, store in self._stores.items()}
