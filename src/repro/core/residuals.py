"""Residual collection (error feedback) strategies.

Top-k sparsification discards gradient mass; error feedback keeps the
discarded values as *residuals* and adds them back to the next iteration's
gradients so nothing is permanently lost.  The paper distinguishes three
kinds of discarded gradients inside SparDL (Section III-C):

* **local residuals** — dropped by a worker's own block-wise top-k *before*
  any transmission,
* **end-procedure residuals** — dropped during the communication procedure,
  whose indices never appear in the final global gradient,
* **in-procedure residuals** — dropped during the procedure although their
  index *does* appear in the final global gradient (contributed by another
  worker).

Three policies are provided, matching the paper's Section IV-I ablation:

* :class:`ResidualPolicy.GLOBAL` (GRES, the paper's contribution) collects
  all three kinds.  Collection is event-driven: every discarded value is
  accumulated on the worker that performed the discard, which yields the
  conservation invariant ``sum_w residual_w + global = sum_w input``.
* :class:`ResidualPolicy.PARTIAL` (PRES, as in Ok-Topk / gTopk) collects
  local and end-procedure residuals only.
* :class:`ResidualPolicy.LOCAL` (LRES, as in DGC) collects local residuals
  only.
* :class:`ResidualPolicy.NONE` disables error feedback entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..sparse.vector import SparseGradient

__all__ = ["ResidualPolicy", "ResidualStore", "ResidualManager"]


class ResidualPolicy(str, Enum):
    """Which discarded gradients are kept for the next iteration."""

    GLOBAL = "global"
    PARTIAL = "partial"
    LOCAL = "local"
    NONE = "none"

    @classmethod
    def coerce(cls, value: "ResidualPolicy | str") -> "ResidualPolicy":
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


class ResidualStore:
    """Dense per-worker accumulator of discarded gradient mass."""

    def __init__(self, num_elements: int) -> None:
        if num_elements <= 0:
            raise ValueError("num_elements must be positive")
        self._data = np.zeros(num_elements, dtype=np.float64)

    @property
    def num_elements(self) -> int:
        return self._data.shape[0]

    def add_dense(self, values: np.ndarray, offset: int = 0) -> None:
        values = np.asarray(values, dtype=np.float64)
        self._data[offset:offset + values.shape[0]] += values

    def add_sparse(self, sparse: SparseGradient, share: float = 1.0) -> None:
        if sparse.nnz == 0:
            return
        # SparseGradient indices are unique by invariant, so a direct
        # fancy-index add is exact and much faster than np.add.at.
        self._data[sparse.indices] += sparse.values * float(share)

    def peek(self) -> np.ndarray:
        """Current residual (read-only view semantics: copy)."""
        return self._data.copy()

    def drain(self) -> np.ndarray:
        """Return the accumulated residual and reset the store."""
        data = self._data
        self._data = np.zeros_like(data)
        return data

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))


@dataclass
class _PendingDiscard:
    """A procedure discard whose fate depends on the final global indices."""

    worker: int
    sparse: SparseGradient
    share: float


class ResidualManager:
    """Collects discarded gradients according to a :class:`ResidualPolicy`.

    The manager owns one :class:`ResidualStore` per worker.  A
    synchronisation round uses it in three phases:

    1. :meth:`apply` adds the stored residuals to the new local gradients
       (and empties the stores),
    2. :meth:`collect_local` / :meth:`collect_procedure` are called whenever
       a sparsification discards values,
    3. :meth:`finalize` resolves deferred (PARTIAL-policy) discards once the
       final global gradient's index set is known.
    """

    def __init__(self, num_workers: int, num_elements: int,
                 policy: ResidualPolicy | str = ResidualPolicy.GLOBAL) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.policy = ResidualPolicy.coerce(policy)
        self.num_workers = num_workers
        self.num_elements = num_elements
        self._stores: Dict[int, ResidualStore] = {
            worker: ResidualStore(num_elements) for worker in range(num_workers)
        }
        self._pending: List[_PendingDiscard] = []

    # ------------------------------------------------------------------
    def store(self, worker: int) -> ResidualStore:
        return self._stores[worker]

    def apply(self, gradients: Dict[int, np.ndarray]) -> Dict[int, np.ndarray]:
        """Return ``gradient + residual`` per worker and reset the stores."""
        corrected = {}
        for worker, gradient in gradients.items():
            residual = self._stores[worker].drain()
            corrected[worker] = np.asarray(gradient, dtype=np.float64) + residual
        return corrected

    # ------------------------------------------------------------------
    # collection hooks
    # ------------------------------------------------------------------
    def collect_local(self, worker: int, residual_block: np.ndarray, offset: int = 0) -> None:
        """Collect a *local* residual: a dense block with the transmitted
        entries already zeroed, produced before any communication."""
        if self.policy is ResidualPolicy.NONE:
            return
        self._stores[worker].add_dense(residual_block, offset)

    def collect_local_sparse(self, worker: int, dropped: SparseGradient, share: float = 1.0) -> None:
        """Sparse variant of :meth:`collect_local`."""
        if self.policy is ResidualPolicy.NONE:
            return
        self._stores[worker].add_sparse(dropped, share)

    def collect_procedure(self, worker: int, dropped: SparseGradient, share: float = 1.0) -> None:
        """Collect gradients discarded *during* the communication procedure.

        Under GRES they are stored immediately on the discarding worker.
        Under PRES they are deferred until :meth:`finalize` decides whether
        they are end-procedure (kept) or in-procedure (dropped).  Under
        LRES / NONE they are discarded.
        """
        if dropped.nnz == 0:
            return
        if self.policy is ResidualPolicy.GLOBAL:
            self._stores[worker].add_sparse(dropped, share)
        elif self.policy is ResidualPolicy.PARTIAL:
            self._pending.append(_PendingDiscard(worker, dropped, share))
        # LOCAL and NONE intentionally drop procedure residuals.

    def finalize(self, final_indices: Optional[Iterable[int]]) -> None:
        """Resolve deferred discards given the final global index set."""
        if self.policy is not ResidualPolicy.PARTIAL:
            self._pending.clear()
            return
        if final_indices is None:
            final = np.empty(0, dtype=np.int64)
        elif isinstance(final_indices, np.ndarray):
            final = final_indices.astype(np.int64, copy=False)
        else:
            final = np.fromiter((int(i) for i in final_indices), dtype=np.int64)
        # Uniquify once so every membership test below can use the fast
        # assume_unique path (pending indices are unique by invariant).
        final = np.unique(final)
        for pending in self._pending:
            if pending.sparse.nnz == 0:
                continue
            mask = ~np.isin(pending.sparse.indices, final, assume_unique=True)
            if not mask.any():
                continue
            # Masking a sorted-unique index array preserves the invariant.
            end_procedure = SparseGradient.from_sorted_unique(
                pending.sparse.indices[mask], pending.sparse.values[mask],
                pending.sparse.length,
            )
            self._stores[pending.worker].add_sparse(end_procedure, pending.share)
        self._pending.clear()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def total_residual(self) -> np.ndarray:
        """Coordinate-wise sum of all workers' residuals (used by the
        conservation tests and by convergence diagnostics)."""
        total = np.zeros(self.num_elements, dtype=np.float64)
        for store in self._stores.values():
            total += store.peek()
        return total

    def residual_norms(self) -> Dict[int, float]:
        return {worker: store.norm() for worker, store in self._stores.items()}
