"""The SparDL framework (Fig. 4): SRS -> SAG -> intra-team All-Gather.

:class:`SparDLSynchronizer` stitches together the three algorithms of the
paper:

1. apply stored residuals, divide the ``P`` workers into ``d`` teams, and run
   **Spar-Reduce-Scatter** inside every team (block-wise top-k between
   transmission steps keeps every message at its target sparsity),
2. when ``d > 1``, run **Spar-All-Gather** (R-SAG or B-SAG) so workers at the
   same team position hold identical ``L = d*k/P`` sparse gradients,
3. run a **Bruck All-Gather** inside every team so every worker ends with the
   same global sparse gradient, and
4. let the **global residual collection** manager keep every value any
   sparsification dropped along the way.

Sparse payloads travel in the batched :class:`~repro.comm.packed.PackedBags`
wire format throughout (SRS bags and the Bruck all-gathers alike), so every
worker emits one message per communication step.

When the configured density ``k/n`` reaches the dense-fallback crossover
(:meth:`SparDLConfig.resolve_dense_crossover`), the sparse pipeline is
skipped entirely in favour of a dense All-Reduce: past the crossover the COO
encoding moves more elements than the dense bandwidth lower bound and pays
the sparse bookkeeping on top, so falling back is strictly faster and exact.

The synchroniser implements :class:`repro.core.base.GradientSynchronizer`, so
the distributed trainer, the examples and the benchmarks can swap it with any
baseline method.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..comm.transport import Transport
from ..comm.collectives import allgather_bruck_grouped, allreduce_dense
from ..compression.stack import CompressorStack
from ..sparse.blocks import BlockLayout
from ..sparse.vector import SparseGradient
from .base import GradientSynchronizer
from .config import SAGMode, SparDLConfig
from .pipeline import StepContext
from .residuals import ResidualManager
from .sag import CompressionRatioController, SAGOutput, b_sag, r_sag
from .srs import spar_reduce_scatter

__all__ = ["SparDLSynchronizer", "make_teams"]


def make_teams(num_workers: int, num_teams: int) -> List[List[int]]:
    """Divide ranks ``0..P-1`` into ``d`` contiguous, equally sized teams."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if num_teams <= 0 or num_workers % num_teams != 0:
        raise ValueError("num_teams must divide num_workers")
    team_size = num_workers // num_teams
    return [list(range(t * team_size, (t + 1) * team_size)) for t in range(num_teams)]


class SparDLSynchronizer(GradientSynchronizer):
    """Sparse All-Reduce using the SparDL framework.

    Parameters
    ----------
    cluster:
        The :class:`~repro.comm.transport.Transport` to communicate
        on; its worker count must be divisible by ``config.num_teams``.
    num_elements:
        Length of the dense gradient vector every worker contributes.
    config:
        A :class:`~repro.core.config.SparDLConfig`; validated against the
        cluster at construction (see ``docs/configuration.md``).

    Calling :meth:`synchronize` with a ``{rank: dense gradient}`` mapping
    returns a :class:`~repro.core.base.SyncResult` whose
    ``global_gradients`` are identical on every worker.  Residual state
    lives in :attr:`residuals` (a
    :class:`~repro.core.residuals.ResidualManager`, deferred-accumulation
    mode when ``config.deferred_residuals`` is set) and carries over
    between iterations, implementing error feedback.
    """

    name = "SparDL"

    def __init__(self, cluster: Transport, num_elements: int,
                 config: SparDLConfig) -> None:
        super().__init__(cluster, num_elements, schedule=config.resolve_schedule())
        config.validate_for_cluster(cluster.num_workers)
        self.config = config
        self.num_teams = config.num_teams
        self.team_size = cluster.num_workers // config.num_teams
        self.teams = make_teams(cluster.num_workers, config.num_teams)
        self.layout = BlockLayout(num_elements, self.team_size)
        self.residuals = ResidualManager(cluster.num_workers, num_elements,
                                         config.residual_policy,
                                         deferred=config.deferred_residuals)
        self.adopt_stack(CompressorStack.from_config(
            cluster.num_workers, momentum=config.momentum,
            num_bits=config.num_bits, sparsify=True))
        #: Crossover density at which the dense fallback engages.
        self.dense_crossover = config.resolve_dense_crossover()
        self.set_sparsity(self.schedule.resolve(0, num_elements))
        self._controller: Optional[CompressionRatioController] = None
        if self.num_teams > 1 and config.effective_sag_mode() is SAGMode.BSAG:
            self._controller = CompressionRatioController(
                k=self.k, num_workers=cluster.num_workers, num_teams=self.num_teams
            )
        #: Per-iteration history of the merged non-zero count observed by the
        #: SAG step (the series plotted in Fig. 7).
        self.merged_nnz_history: List[float] = []
        self.name = config.describe()

    # ------------------------------------------------------------------
    @property
    def controller(self) -> Optional[CompressionRatioController]:
        """The B-SAG compression-ratio controller (``None`` unless B-SAG)."""
        return self._controller

    def set_sparsity(self, k: int) -> None:
        """Adopt a per-step ``k`` (schedule resolution): recompute the
        per-block budget and the dense-fallback decision."""
        k = max(1, min(self.num_elements, int(k)))
        self.k = k
        #: Non-zeros kept per block: ``k/P`` when d=1, ``L = d*k/P`` in general.
        #: Rounded up so that k = n degenerates to an exact dense All-Reduce
        #: (a block is never forced below its own size by integer division).
        self.k_block = max(1, -(-k * self.num_teams // self.cluster.num_workers))
        #: True when the current ``k`` bypasses the sparse pipeline.
        self.uses_dense_fallback = (self.config.dense_fallback
                                    and k / self.num_elements >= self.dense_crossover)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def apply_membership(self, num_workers: int, mapping: Dict[int, int]) -> None:
        """Re-partition for a new worker count between iterations.

        The residual stores are handed off first (crashed ranks' stores are
        absorbed by their successors, so conservation holds across the
        transition), then teams, block layout, per-block budget and the
        B-SAG controller are rebuilt for the new ``P``.  The team count is
        re-resolved as the largest divisor of the new ``P`` not exceeding
        the configured ``num_teams`` — Theorem 1 requires teams of equal
        size, and crashes rarely preserve divisibility.  A quantizing
        synchroniser rebuilds its compressor stack (per-worker random
        streams restart, deterministically, at the transition); the
        residual remap hands momentum-correction velocity state to the
        surviving ranks first.
        """
        self.residuals.remap_workers(num_workers, mapping)
        super().apply_membership(num_workers, mapping)
        num_teams = 1
        for candidate in range(min(self.config.num_teams, num_workers), 0, -1):
            if num_workers % candidate == 0:
                num_teams = candidate
                break
        self.num_teams = num_teams
        self.team_size = num_workers // num_teams
        self.teams = make_teams(num_workers, num_teams)
        self.layout = BlockLayout(self.num_elements, self.team_size)
        if self.stack is not None:
            self.adopt_stack(CompressorStack.from_config(
                num_workers, momentum=self.config.momentum,
                num_bits=self.config.num_bits, sparsify=True))
        self.set_sparsity(self.k)
        if self.num_teams > 1 and self.config.effective_sag_mode() is SAGMode.BSAG:
            self._controller = CompressionRatioController(
                k=self.k, num_workers=num_workers, num_teams=self.num_teams)
        else:
            self._controller = None

    # ------------------------------------------------------------------
    # the staged pipeline
    # ------------------------------------------------------------------
    def stage_compress(self, context: StepContext) -> None:
        """Wire encoding of the step, driven by the compressor stack.

        Without a wire-transforming stage this is the identity.  With
        ``config.num_bits`` set, the dense-fallback path folds every
        worker's corrected gradient through the stack here (one draw per
        worker, exact error into that worker's residual store); on the
        sparse path the selection is interleaved with the SRS transmissions,
        so the stack is applied inside :meth:`stage_exchange` instead —
        right after each block-wise top-k, i.e. the moment a value first
        reaches the wire.  Declarative stages (momentum correction) act
        through the residual manager and leave the wire untouched.
        """
        if (self.stack is None or not self.stack.transforms_wire
                or not self.uses_dense_fallback):
            context.wire = context.selected
            return
        wire = {}
        for rank, corrected in context.selected.items():
            quantized, error = self.stack.compress_dense(rank, corrected)
            self.residuals.collect_local(rank, error)
            wire[rank] = quantized
        context.wire = wire

    def stage_select(self, context: StepContext) -> None:
        """Residual add (SRS phase 1).  SparDL's block-wise top-k selection
        is interleaved with the SRS transmissions, so the selection proper
        lives inside :meth:`stage_exchange`."""
        context.selected = self.residuals.apply(context.gradients)

    def stage_exchange(self, context: StepContext) -> None:
        """SRS inside every team, then Spar-All-Gather across teams — or the
        exact dense All-Reduce past the density crossover."""
        corrected = context.wire
        if self.uses_dense_fallback:
            context.exchanged = allreduce_dense(self.cluster, corrected)
            context.scratch["dense_fallback"] = True
            return
        srs_out = spar_reduce_scatter(
            cluster=self.cluster,
            teams=self.teams,
            gradients=corrected,
            layout=self.layout,
            k_block=self.k_block,
            residuals=self.residuals,
            sparsify_all=self.config.sparsify_all_blocks,
            wire_format=self.config.wire_format,
            compressor=(self.stack if self.stack is not None
                        and self.stack.transforms_wire else None),
        )
        sag_out = self._run_sag(srs_out.reduced_blocks)
        context.scratch["srs"] = srs_out
        context.scratch["sag"] = sag_out
        context.exchanged = sag_out.blocks if sag_out is not None else srs_out.reduced_blocks

    def stage_combine(self, context: StepContext) -> None:
        """Bruck All-Gather inside every team and merge into the per-worker
        global gradients."""
        if context.scratch.get("dense_fallback"):
            reduced = context.exchanged
            reference = reduced[next(iter(reduced))]
            context.global_gradients = reduced
            context.info = {
                "k": self.k,
                "k_block": self.k_block,
                "num_teams": self.num_teams,
                "final_nnz": int(np.count_nonzero(reference)),
                "srs_steps": 0,
                "max_bag_nnz_per_step": [],
                "dense_fallback": True,
                "dense_crossover": self.dense_crossover,
            }
            return
        final = self._intra_team_allgather(context.exchanged)
        reference = final[next(iter(final))]
        context.global_sparse = final
        context.reference = reference
        context.global_gradients = {rank: sparse.to_dense() for rank, sparse in final.items()}
        srs_out = context.scratch["srs"]
        sag_out = context.scratch["sag"]
        info = {
            "k": self.k,
            "k_block": self.k_block,
            "num_teams": self.num_teams,
            "final_nnz": reference.nnz,
            "srs_steps": srs_out.num_steps,
            "max_bag_nnz_per_step": srs_out.max_bag_nnz_per_step,
            "dense_fallback": False,
        }
        if sag_out is not None:
            info.update({
                "sag_steps": sag_out.num_steps,
                "sag_merged_nnz_max": sag_out.merged_nnz_max,
                "sag_merged_nnz_mean": sag_out.merged_nnz_mean,
                "sag_h": sag_out.h_used,
            })
        context.info = info

    def stage_residual_update(self, context: StepContext) -> None:
        """Resolve deferred (PRES) discards against the final index set,
        which is identical on every worker.  This is also the per-iteration
        flush point of deferred residual accumulation: every sparse discard
        the SRS/SAG steps buffered is folded into the stores in one merge
        per worker here.  A dense-fallback step drops nothing, so there is
        nothing to resolve."""
        if context.scratch.get("dense_fallback"):
            return
        self.residuals.finalize(context.reference.indices)

    def _run_sag(self, blocks: Dict[int, SparseGradient]) -> Optional[SAGOutput]:
        """Synchronise teams with R-SAG or B-SAG (no-op when ``d == 1``)."""
        if self.num_teams == 1:
            return None
        mode = self.config.effective_sag_mode()
        keep = self.k_block
        if mode is SAGMode.RSAG:
            output = r_sag(self.cluster, self.teams, blocks, keep, self.residuals)
        else:
            controller = self._controller
            assert controller is not None  # constructed in __init__ for BSAG
            output = b_sag(self.cluster, self.teams, blocks, keep, controller.h,
                           self.residuals)
            controller.update(output.merged_nnz_max)
        self.merged_nnz_history.append(float(output.merged_nnz_mean))
        return output

    def _intra_team_allgather(self, blocks: Dict[int, SparseGradient]) -> Dict[int, SparseGradient]:
        """Bruck All-Gather of the per-position blocks inside every team and
        merge them into one sparse gradient per worker."""
        if self.team_size == 1:
            return dict(blocks)
        gathered = allgather_bruck_grouped(self.cluster, self.teams, blocks)
        merged: Dict[int, SparseGradient] = {}
        for team in self.teams:
            for rank in team:
                merged[rank] = SparseGradient.merge_many(gathered[rank])
        return merged
