"""The staged synchronisation pipeline: stages, step context and sessions.

The paper's method is a pipeline — residual add, top-k select, SRS
exchange, residual update — and every synchroniser in this repository now
exposes those boundaries explicitly instead of hiding them inside one
opaque ``synchronize()`` call.  A step runs five stages in order:

``select``
    Apply stored residuals to the new local gradients and perform the
    method's local selection (top-k, threshold pruning, or — for methods
    whose selection is interleaved with communication, like SparDL's
    block-wise SRS top-k — just the residual add).
``compress``
    Turn the selection into its wire representation.  The default is the
    identity (COO sparse gradients already *are* the wire format); the
    stage exists as the hook point for quantisation and other encodings.
``exchange``
    The method-specific communication.  All cluster traffic of a step
    happens here.
``combine``
    Merge the exchanged pieces into the per-worker global gradients and
    assemble the step's diagnostics.
``residual_update``
    Resolve the residual state against the final global index set
    (error-feedback bookkeeping for the next iteration).

:class:`StepContext` is the mutable record the stages pass along;
:class:`SyncSession` is the stateful driver that runs the stages step
after step, carrying the iteration count, the schedule-resolved ``k`` and
the cumulative :class:`~repro.comm.stats.CommStats` across steps.  The
legacy ``GradientSynchronizer.synchronize()`` remains as a thin adapter
over the same staged driver, so the two paths are bit-identical by
construction (asserted method-by-method in ``tests/test_pipeline_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from ..comm.stats import CommStats
from .schedules import KSchedule, coerce_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import GradientSynchronizer, SyncResult

__all__ = ["SyncStage", "PIPELINE_STAGES", "StepContext", "SyncSession"]


class SyncStage(str, Enum):
    """The five stages of one synchronisation step, in execution order."""

    SELECT = "select"
    COMPRESS = "compress"
    EXCHANGE = "exchange"
    COMBINE = "combine"
    RESIDUAL_UPDATE = "residual_update"


#: Execution order of the stages.
PIPELINE_STAGES = (
    SyncStage.SELECT,
    SyncStage.COMPRESS,
    SyncStage.EXCHANGE,
    SyncStage.COMBINE,
    SyncStage.RESIDUAL_UPDATE,
)


@dataclass
class StepContext:
    """Mutable state passed through the stages of one step.

    Each stage reads the fields the previous stages produced and writes its
    own; ``scratch`` holds method-private intermediates (SRS/SAG outputs,
    short-circuit flags) that do not belong to the protocol.
    """

    #: Per-worker dense input gradients (float64, validated).
    gradients: Dict[int, np.ndarray]
    #: The schedule-resolved ``k`` of this step (``None`` for dense methods).
    k: Optional[int]
    #: 0-based iteration index of this step.
    iteration: int
    #: Output of ``select``: per-worker selection (sparse, or dense pass-through).
    selected: Any = None
    #: Output of ``compress``: the wire representation (default: ``selected``).
    wire: Any = None
    #: Output of ``exchange``: method-specific gathered/reduced payloads.
    exchanged: Any = None
    #: Per-worker final sparse gradients, when the method is sparse.
    global_sparse: Optional[Dict[int, Any]] = None
    #: Per-worker final dense global gradients (set by ``combine``).
    global_gradients: Optional[Dict[int, np.ndarray]] = None
    #: The final sparse gradient whose index set drives ``residual_update``.
    reference: Any = None
    #: Step diagnostics collected into ``SyncResult.info``.
    info: Dict[str, Any] = field(default_factory=dict)
    #: Method-private intermediates (not part of the stage protocol).
    scratch: Dict[str, Any] = field(default_factory=dict)


#: Signature of a per-stage observer: ``hook(stage, context)``.
StageHook = Callable[[SyncStage, StepContext], None]


class SyncSession:
    """Stateful driver of the staged pipeline for one synchroniser.

    A session owns the cross-step state the one-shot ``synchronize()``
    call hides: the iteration count, the ``k`` each step resolved through
    the synchroniser's :class:`~repro.core.schedules.KSchedule`, and the
    cumulative :class:`~repro.comm.stats.CommStats` over every step driven
    so far.  Per-stage hooks observe the :class:`StepContext` after each
    stage — the boundary that per-stage timing, logging and the bucketing
    layer build on.

    Parameters
    ----------
    synchronizer:
        The :class:`~repro.core.base.GradientSynchronizer` to drive.
    schedule:
        Optional schedule override: a :class:`KSchedule`, or a spec string
        (``"warmup:5"``) interpreted against the synchroniser's current
        ``k``.  ``None`` keeps the synchroniser's own schedule.

    >>> import numpy as np
    >>> from repro import SimulatedCluster, SparDLConfig, SparDLSynchronizer
    >>> from repro.core.pipeline import SyncSession
    >>> cluster = SimulatedCluster(4)
    >>> sync = SparDLSynchronizer(cluster, 1000, SparDLConfig(density=0.01))
    >>> session = SyncSession(sync)
    >>> grads = {w: np.random.default_rng(w).normal(size=1000) for w in range(4)}
    >>> result = session.step(grads)
    >>> session.iteration, session.resolved_k
    (1, 10)
    """

    def __init__(self, synchronizer: "GradientSynchronizer",
                 schedule: Optional[KSchedule | str] = None) -> None:
        self.synchronizer = synchronizer
        if schedule is not None:
            if isinstance(schedule, KSchedule):
                synchronizer.schedule = schedule
            else:
                synchronizer.schedule = coerce_schedule(
                    schedule, k=getattr(synchronizer, "k", None))
        #: Number of steps driven through this session.
        self.iteration = 0
        #: The ``k`` the schedule resolved for the most recent step.
        self.resolved_k: Optional[int] = None
        #: Per-step history of the resolved ``k``.
        self.k_history: List[Optional[int]] = []
        #: Communication accounting accumulated over every step.
        self.cumulative_stats = CommStats(num_workers=synchronizer.num_workers)
        #: The most recent step's result.
        self.last_result: Optional["SyncResult"] = None
        self._stage_hooks: List[StageHook] = []

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.synchronizer.num_workers

    @property
    def num_elements(self) -> int:
        return self.synchronizer.num_elements

    @property
    def schedule(self) -> Optional[KSchedule]:
        return self.synchronizer.schedule

    def add_stage_hook(self, hook: StageHook) -> None:
        """Register ``hook(stage, context)`` to run after every stage."""
        self._stage_hooks.append(hook)

    # ------------------------------------------------------------------
    def step(self, gradients: Dict[int, np.ndarray]) -> "SyncResult":
        """Run one full pipeline step and update the session state."""
        observer = self._notify if self._stage_hooks else None
        result = self.synchronizer._step(gradients, observer=observer)
        self.iteration += 1
        self.resolved_k = getattr(self.synchronizer, "k", None)
        self.k_history.append(self.resolved_k)
        self.cumulative_stats.merge(result.stats)
        self.last_result = result
        return result

    def _notify(self, stage: SyncStage, context: StepContext) -> None:
        for hook in self._stage_hooks:
            hook(stage, context)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Cross-step summary: steps, cumulative comm cost, k trajectory."""
        ks = [k for k in self.k_history if k is not None]
        return {
            "method": self.synchronizer.name,
            "steps": self.iteration,
            "rounds": self.cumulative_stats.rounds,
            "total_volume": self.cumulative_stats.total_volume,
            "max_received": self.cumulative_stats.max_received,
            "k_first": ks[0] if ks else None,
            "k_last": ks[-1] if ks else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SyncSession({self.synchronizer!r}, steps={self.iteration}, "
                f"k={self.resolved_k})")
