"""The staged synchronisation pipeline: stages, step context and sessions.

The paper's method is a pipeline — residual add, top-k select, SRS
exchange, residual update — and every synchroniser in this repository now
exposes those boundaries explicitly instead of hiding them inside one
opaque ``synchronize()`` call.  A step runs five stages in order:

``select``
    Apply stored residuals to the new local gradients and perform the
    method's local selection (top-k, threshold pruning, or — for methods
    whose selection is interleaved with communication, like SparDL's
    block-wise SRS top-k — just the residual add).
``compress``
    Turn the selection into its wire representation, by folding it through
    the synchroniser's :class:`~repro.compression.stack.CompressorStack`
    (ordered stages momentum-correction -> sparsify -> quantize with a
    uniform ``(payload, error)`` contract).  The default is the identity
    (COO sparse gradients already *are* the wire format, and a stack
    without wire-transforming stages leaves it untouched); declarative
    stages like momentum correction act through the residual manager
    instead of the payload.
``exchange``
    The method-specific communication.  All cluster traffic of a step
    happens here.
``combine``
    Merge the exchanged pieces into the per-worker global gradients and
    assemble the step's diagnostics.
``residual_update``
    Resolve the residual state against the final global index set
    (error-feedback bookkeeping for the next iteration).

:class:`StepContext` is the mutable record the stages pass along;
:class:`SyncSession` is the stateful driver that runs the stages step
after step, carrying the iteration count, the schedule-resolved ``k`` and
the cumulative :class:`~repro.comm.stats.CommStats` across steps.  The
legacy ``GradientSynchronizer.synchronize()`` remains as a thin adapter
over the same staged driver, so the two paths are bit-identical by
construction (asserted method-by-method in ``tests/test_pipeline_equivalence.py``).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..comm.packed import PackedBags
from ..comm.stats import CommStats
from ..sparse.vector import SparseGradient
from .schedules import KSchedule, coerce_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm.transport import Message
    from .base import GradientSynchronizer, SyncResult
    from .residuals import ResidualManager

__all__ = ["SyncStage", "PIPELINE_STAGES", "StepContext", "SyncSession",
           "RetryPolicy", "fold_lost_messages"]


class SyncStage(str, Enum):
    """The five stages of one synchronisation step, in execution order."""

    SELECT = "select"
    COMPRESS = "compress"
    EXCHANGE = "exchange"
    COMBINE = "combine"
    RESIDUAL_UPDATE = "residual_update"


#: Execution order of the stages.
PIPELINE_STAGES = (
    SyncStage.SELECT,
    SyncStage.COMPRESS,
    SyncStage.EXCHANGE,
    SyncStage.COMBINE,
    SyncStage.RESIDUAL_UPDATE,
)


@dataclass
class StepContext:
    """Mutable state passed through the stages of one step.

    Each stage reads the fields the previous stages produced and writes its
    own; ``scratch`` holds method-private intermediates (SRS/SAG outputs,
    short-circuit flags) that do not belong to the protocol.
    """

    #: Per-worker dense input gradients (float64, validated).
    gradients: Dict[int, np.ndarray]
    #: The schedule-resolved ``k`` of this step (``None`` for dense methods).
    k: Optional[int]
    #: 0-based iteration index of this step.
    iteration: int
    #: Output of ``select``: per-worker selection (sparse, or dense pass-through).
    selected: Any = None
    #: Output of ``compress``: the wire representation (default: ``selected``).
    wire: Any = None
    #: Output of ``exchange``: method-specific gathered/reduced payloads.
    exchanged: Any = None
    #: Per-worker final sparse gradients, when the method is sparse.
    global_sparse: Optional[Dict[int, Any]] = None
    #: Per-worker final dense global gradients (set by ``combine``).
    global_gradients: Optional[Dict[int, np.ndarray]] = None
    #: The final sparse gradient whose index set drives ``residual_update``.
    reference: Any = None
    #: Step diagnostics collected into ``SyncResult.info``.
    info: Dict[str, Any] = field(default_factory=dict)
    #: Method-private intermediates (not part of the stage protocol).
    scratch: Dict[str, Any] = field(default_factory=dict)


#: Signature of a per-stage observer: ``hook(stage, context)``.
StageHook = Callable[[SyncStage, StepContext], None]


# ---------------------------------------------------------------------------
# exchange-stage robustness policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for faulted message deliveries.

    A message dropped (or timed out) on the wire is re-attempted up to
    ``max_retries`` times.  Every attempt is billed as an extra recorded
    round; before the ``a``-th attempt the sender additionally idles
    ``ceil(backoff^(a-2)) - 1`` empty (latency-only) rounds, so the first
    retry is immediate and later ones back off geometrically.  Past the
    budget the step degrades gracefully instead of stalling: ``lossy``
    messages are declared lost (their gradient mass is folded into the
    sender's residual path by :func:`fold_lost_messages`, preserving the
    conservation invariant) and reliable messages are force-delivered in
    one final billed round.
    """

    max_retries: int = 2
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not (math.isfinite(self.backoff) and self.backoff >= 1.0):
            raise ValueError("backoff must be a finite factor >= 1")

    def idle_rounds(self, attempt: int) -> int:
        """Backoff idle rounds billed before delivery attempt ``attempt``
        (1-based; the first retry is attempt 2 and waits nothing)."""
        if attempt <= 2:
            return 0
        return max(0, int(math.ceil(self.backoff ** (attempt - 2))) - 1)


def _lost_sparse_parts(payload: Any) -> List[SparseGradient]:
    """The sparse gradients carried by a lost message's payload."""
    if isinstance(payload, PackedBags):
        return payload.to_list()
    if isinstance(payload, SparseGradient):
        return [payload]
    if (isinstance(payload, tuple) and len(payload) == 2
            and isinstance(payload[1], SparseGradient)):
        return [payload[1]]  # (block_id, sparse) — the per-block wire format
    raise TypeError(
        f"cannot fold lost payload of type {type(payload).__name__} into the "
        "residual path; lossy messages must carry sparse gradient mass")


def fold_lost_messages(lost: Sequence["Message"],
                       residuals: "ResidualManager") -> float:
    """Fold the gradient mass of lost messages into the senders' residuals.

    Each lost message's sparse payload is collected as a *procedure discard*
    of its sender — exactly how the residual policy treats any other value
    dropped during communication — so the conservation invariant
    ``sum_w residual_w + global == sum_w input`` keeps holding under faults
    (under GRES exactly; PRES/LRES degrade it no further than they already
    do for ordinary discards).  Returns the L1 mass folded, for diagnostics.
    """
    mass = 0.0
    for message in lost:
        for sparse in _lost_sparse_parts(message.payload):
            residuals.collect_procedure(message.src, sparse)
            if sparse.nnz:
                mass += float(np.abs(sparse.values).sum())
    return mass


class SyncSession:
    """Stateful driver of the staged pipeline for one synchroniser.

    A session owns the cross-step state the one-shot ``synchronize()``
    call hides: the iteration count, the ``k`` each step resolved through
    the synchroniser's :class:`~repro.core.schedules.KSchedule`, and the
    cumulative :class:`~repro.comm.stats.CommStats` over every step driven
    so far.  Per-stage hooks observe the :class:`StepContext` after each
    stage — the boundary that per-stage timing, logging and the bucketing
    layer build on.

    Parameters
    ----------
    synchronizer:
        The :class:`~repro.core.base.GradientSynchronizer` to drive.
    schedule:
        Optional schedule override: a :class:`KSchedule`, or a spec string
        (``"warmup:5"``) interpreted against the synchroniser's current
        ``k``.  ``None`` keeps the synchroniser's own schedule.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When set (directly, or
        inherited from ``synchronizer.tracer`` as installed by
        ``repro.obs.attach_tracer`` / ``trace=`` on the facade spec), every
        step records an ``iteration``-category step span containing one
        ``stage`` span per pipeline stage.  ``None`` (the default) keeps
        the exact untraced code path.

    >>> import numpy as np
    >>> from repro import SimulatedCluster, SparDLConfig, SparDLSynchronizer
    >>> from repro.core.pipeline import SyncSession
    >>> cluster = SimulatedCluster(4)
    >>> sync = SparDLSynchronizer(cluster, 1000, SparDLConfig(density=0.01))
    >>> session = SyncSession(sync)
    >>> grads = {w: np.random.default_rng(w).normal(size=1000) for w in range(4)}
    >>> result = session.step(grads)
    >>> session.iteration, session.resolved_k
    (1, 10)
    """

    def __init__(self, synchronizer: "GradientSynchronizer",
                 schedule: Optional[KSchedule | str] = None,
                 tracer: Optional[Any] = None) -> None:
        self.synchronizer = synchronizer
        if schedule is not None:
            if isinstance(schedule, KSchedule):
                synchronizer.schedule = schedule
            else:
                synchronizer.schedule = coerce_schedule(
                    schedule, k=getattr(synchronizer, "k", None))
        #: Number of steps driven through this session.
        self.iteration = 0
        #: The ``k`` the schedule resolved for the most recent step.
        self.resolved_k: Optional[int] = None
        #: Per-step history of the resolved ``k``.
        self.k_history: List[Optional[int]] = []
        #: Communication accounting accumulated over every step.
        self.cumulative_stats = CommStats(num_workers=synchronizer.num_workers)
        #: The most recent step's result.
        self.last_result: Optional["SyncResult"] = None
        #: Tracer recording step/stage spans (``None`` = untraced path).
        self.tracer = tracer if tracer is not None else getattr(
            synchronizer, "tracer", None)
        #: Label distinguishing this session's spans (set on the inner
        #: sessions of a bucketed synchroniser: ``b0``, ``b1``, ...).
        self.trace_label: Optional[str] = None
        #: Stage hooks that raised (errors are contained, counted, and
        #: warned about once — a misbehaving observer must not corrupt the
        #: step's residual bookkeeping mid-pipeline).
        self.hook_errors = 0
        self._hook_error_warned = False
        self._stage_hooks: List[StageHook] = []

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self.synchronizer.num_workers

    @property
    def num_elements(self) -> int:
        return self.synchronizer.num_elements

    @property
    def schedule(self) -> Optional[KSchedule]:
        return self.synchronizer.schedule

    def add_stage_hook(self, hook: StageHook) -> None:
        """Register ``hook(stage, context)`` to run after every stage."""
        self._stage_hooks.append(hook)

    # ------------------------------------------------------------------
    def poll_membership(self) -> bool:
        """Apply membership events the installed fault plan schedules before
        the next step (delegates to the synchroniser).

        Call *before* building the step's gradients: a crash or join changes
        :attr:`num_workers`, and :meth:`step` expects one gradient per rank
        of the membership in force.  Returns True when membership changed.
        """
        return self.synchronizer.poll_membership()

    def step(self, gradients: Dict[int, np.ndarray]) -> "SyncResult":
        """Run one full pipeline step and update the session state."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            result = self._traced_step(gradients, tracer)
        else:
            observer = self._notify if self._stage_hooks else None
            result = self.synchronizer._step(gradients, observer=observer)
        self.iteration += 1
        self.resolved_k = getattr(self.synchronizer, "k", None)
        self.k_history.append(self.resolved_k)
        # Elastic membership: accumulate across different worker counts by
        # expanding whichever side is narrower to the widest seen so far.
        stats = result.stats
        if stats.num_workers > self.cumulative_stats.num_workers:
            self.cumulative_stats.expand(stats.num_workers)
        elif stats.num_workers < self.cumulative_stats.num_workers:
            stats = stats.copy()
            stats.expand(self.cumulative_stats.num_workers)
        self.cumulative_stats.merge(stats)
        self.last_result = result
        return result

    def _traced_step(self, gradients: Dict[int, np.ndarray],
                     tracer: Any) -> "SyncResult":
        """One step with per-stage spans: the observer that already fires at
        every stage boundary doubles as the span clock, so tracing adds two
        timer reads per stage and nothing to the stage bodies."""
        label = self.trace_label
        suffix = "" if label is None else f":{label}"
        start = tracer.now_us()
        cursor = [start]

        def observer(stage: SyncStage, context: StepContext) -> None:
            now = tracer.now_us()
            tracer.complete(f"{stage.value}{suffix}", "stage", cursor[0],
                            now - cursor[0], args={"iteration": self.iteration})
            cursor[0] = now
            if self._stage_hooks:
                self._notify(stage, context)

        result = self.synchronizer._step(gradients, observer=observer)
        end = tracer.now_us()
        k = getattr(self.synchronizer, "k", None)
        tracer.complete(f"step{suffix}", "iteration", start, end - start,
                        args={"iteration": self.iteration,
                              "method": self.synchronizer.name,
                              "k": None if k is None else int(k)})
        tracer.metrics.counter("steps_total", method=self.synchronizer.name).inc()
        tracer.metrics.histogram("step_wall_us").observe(end - start)
        if k is not None:
            tracer.metrics.gauge("resolved_k").set(int(k))
        return result

    def _notify(self, stage: SyncStage, context: StepContext) -> None:
        for hook in self._stage_hooks:
            try:
                hook(stage, context)
            except Exception as error:
                # A broken observer must not abort the pipeline mid-step
                # (the residual update of this step has not run yet, so
                # propagating here would leave error-feedback state torn).
                self.hook_errors += 1
                if self.tracer is not None and getattr(self.tracer, "enabled", False):
                    self.tracer.metrics.counter("hook_errors").inc()
                if not self._hook_error_warned:
                    self._hook_error_warned = True
                    warnings.warn(
                        f"stage hook {hook!r} raised {error!r} after stage "
                        f"{stage.value!r}; the error is contained and counted "
                        "in SyncSession.hook_errors (warning once)",
                        RuntimeWarning, stacklevel=3)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Cross-step summary: steps, cumulative comm cost, k trajectory."""
        ks = [k for k in self.k_history if k is not None]
        return {
            "method": self.synchronizer.name,
            "steps": self.iteration,
            "rounds": self.cumulative_stats.rounds,
            "total_volume": self.cumulative_stats.total_volume,
            "max_received": self.cumulative_stats.max_received,
            "k_first": ks[0] if ks else None,
            "k_last": ks[-1] if ks else None,
            "hook_errors": self.hook_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SyncSession({self.synchronizer!r}, steps={self.iteration}, "
                f"k={self.resolved_k})")
