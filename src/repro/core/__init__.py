"""SparDL core: Spar-Reduce-Scatter, Spar-All-Gather and residual collection."""

from .base import GradientSynchronizer, SyncResult, resolve_k
from .bucketed import BucketedSynchronizer, fuse_buckets, layer_buckets
from .config import SAGMode, SparDLConfig
from .partition import BagPlan, plan_bags, transmission_distances
from .pipeline import (
    PIPELINE_STAGES,
    RetryPolicy,
    StepContext,
    SyncSession,
    SyncStage,
    fold_lost_messages,
)
from .residuals import ResidualManager, ResidualPolicy, ResidualStore
from .sag import CompressionRatioController, SAGOutput, b_sag, cross_team_groups, r_sag
from .schedules import (
    AdaptiveSchedule,
    ConstantSchedule,
    KSchedule,
    WarmupSchedule,
    coerce_schedule,
    parse_schedule,
)
from .spardl import SparDLSynchronizer, make_teams
from .srs import SRSOutput, spar_reduce_scatter

__all__ = [
    "GradientSynchronizer",
    "SyncResult",
    "resolve_k",
    "BucketedSynchronizer",
    "layer_buckets",
    "fuse_buckets",
    "PIPELINE_STAGES",
    "RetryPolicy",
    "fold_lost_messages",
    "StepContext",
    "SyncSession",
    "SyncStage",
    "KSchedule",
    "ConstantSchedule",
    "WarmupSchedule",
    "AdaptiveSchedule",
    "parse_schedule",
    "coerce_schedule",
    "SAGMode",
    "SparDLConfig",
    "BagPlan",
    "plan_bags",
    "transmission_distances",
    "ResidualManager",
    "ResidualPolicy",
    "ResidualStore",
    "CompressionRatioController",
    "SAGOutput",
    "b_sag",
    "r_sag",
    "cross_team_groups",
    "SparDLSynchronizer",
    "make_teams",
    "SRSOutput",
    "spar_reduce_scatter",
]
