"""Spar-Reduce-Scatter (SRS), the paper's Section III-B.

SRS reduces the workers' sparse gradient blocks so that, at the end, every
worker holds the fully reduced sparse block matching its own rank — the
Reduce-Scatter result — while re-sparsifying between transmission steps so
that message sizes never grow (this is how SparDL resolves the SGA dilemma
without extra transmissions).

The algorithm:

1. every worker adds its stored residual, partitions the dense gradient into
   ``m`` blocks (``m`` = team size) and selects the top ``k_block`` entries
   of each block (locally dropped values become *local residuals*);
2. blocks are grouped into bags (:mod:`repro.core.partition`);
3. for ``l = ceil(log2 m)`` steps, bags are forwarded to the worker at
   distance ``2^(l-i)`` and received blocks are merge-summed into the
   receiver's held blocks;
4. re-sparsification keeps every held block at ``k_block`` non-zeros — by
   default only the blocks about to be sent next are re-sparsified (the
   paper's "Optimization for SRS"); ``sparsify_all=True`` restores the
   unoptimised behaviour for the ablation benchmark.

Teams run SRS concurrently: all teams share communication rounds, exactly as
the paper's ``P/d``-worker teams operate in parallel.

Wire format
-----------
By default every bag is shipped *batched*: the per-block COO arrays of one
bag are concatenated into a single :class:`~repro.comm.packed.PackedBags`
buffer pair, so each worker emits exactly **one message per transmission
step** no matter how many blocks the bag holds.  Block ids ride as zero-cost
header metadata and ``comm_size`` is derived from the packed arrays alone
(two elements per non-zero, the paper's COO convention).  Receivers decode
each block as a zero-copy slice view (``from_sorted_unique``) and merge it
with the compiled ``merge_add`` kernel.  ``wire_format="per-block"`` keeps
the unbatched wiring — one message per block per step — for the batching
benchmark; both formats move identical bytes and produce bit-identical
reduced blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.transport import Message, Transport
from ..comm.packed import PackedBags
from ..sparse.blocks import BlockLayout
from ..sparse.vector import SparseGradient
from .partition import BagPlan, plan_bags, transmission_distances
from .residuals import ResidualManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compression.stack import CompressorStack

__all__ = ["SRSOutput", "spar_reduce_scatter", "WIRE_FORMATS"]

#: Supported SRS wire formats: batched (one PackedBags message per worker and
#: step) and unbatched (one message per block per step).
WIRE_FORMATS = ("packed", "per-block")


@dataclass
class SRSOutput:
    """Result of Spar-Reduce-Scatter."""

    #: Global worker rank -> reduced sparse block (in global coordinates).
    reduced_blocks: Dict[int, SparseGradient]
    #: Global worker rank -> index (within the team's block layout) of the
    #: block that worker now owns.
    owned_block: Dict[int, int]
    #: Block layout shared by every team.
    layout: BlockLayout
    #: Number of transmission steps that were executed.
    num_steps: int = 0
    #: Diagnostic: per-step maximum number of non-zeros in any sent bag.
    max_bag_nnz_per_step: List[int] = field(default_factory=list)


def spar_reduce_scatter(
    cluster: Transport,
    teams: Sequence[Sequence[int]],
    gradients: Dict[int, np.ndarray],
    layout: BlockLayout,
    k_block: int,
    residuals: ResidualManager,
    sparsify_all: bool = False,
    wire_format: str = "packed",
    compressor: Optional["CompressorStack"] = None,
) -> SRSOutput:
    """Run SRS concurrently inside every team.

    Parameters
    ----------
    teams:
        Disjoint lists of global worker ranks; all teams must have the same
        size ``m`` and ``layout.num_blocks`` must equal ``m``.
    gradients:
        Per-worker dense gradients (residuals already applied by the caller).
    k_block:
        Non-zeros kept per block after every sparsification (the paper's
        ``k/P``, or ``L = dk/P`` when teams are used).
    residuals:
        Residual manager receiving local and in-procedure discards.
    sparsify_all:
        When True, re-sparsify every held block after each summation instead
        of only the blocks about to be sent (paper's pre-optimisation
        behaviour).
    wire_format:
        ``"packed"`` (default) batches each bag into one
        :class:`~repro.comm.packed.PackedBags` message per (worker, step);
        ``"per-block"`` sends one message per block per step (the unbatched
        wiring, kept for the batching benchmark).  Both move identical
        element counts and produce bit-identical results.
    compressor:
        Optional wire-transforming
        :class:`~repro.compression.stack.CompressorStack` (or any object
        honouring its ``compress_sparse -> (payload, error)`` contract).
        When given, every block is folded through it immediately after its
        local top-k — the moment its values first reach the wire — using the
        owning worker's independent random stream, and the exact
        compression error of that draw is collected as a local residual.
        Later transmission steps forward merge-sums of the compressed blocks
        unchanged; the synchroniser's installed pricer bills them at the
        compressed accounting.
    """
    team_size = _validate_teams(cluster, teams, layout)
    if k_block <= 0:
        raise ValueError("k_block must be positive")
    if wire_format not in WIRE_FORMATS:
        raise ValueError(f"wire_format must be one of {WIRE_FORMATS}, got {wire_format!r}")
    packed_wire = wire_format == "packed"

    # ------------------------------------------------------------------
    # 1. partitioning + local sparsification
    # ------------------------------------------------------------------
    held: Dict[int, Dict[int, SparseGradient]] = {}
    plans: Dict[int, BagPlan] = {}
    for team in teams:
        for position, rank in enumerate(team):
            dense = np.asarray(gradients[rank], dtype=np.float64)
            blocks: Dict[int, SparseGradient] = {}
            for block, lo, hi in layout.iter_blocks():
                selected, residual_block, offset = layout.sparse_block_from_dense(
                    dense, block, k_block
                )
                residuals.collect_local(rank, residual_block, offset)
                if compressor is not None:
                    selected, quantization_error = compressor.compress_sparse(
                        rank, selected)
                    residuals.collect_local_sparse(rank, quantization_error)
                blocks[block] = selected
            held[rank] = blocks
            plans[rank] = plan_bags(position, team_size)

    distances = transmission_distances(team_size)
    num_steps = len(distances)
    max_bag_nnz_per_step: List[int] = []

    # ------------------------------------------------------------------
    # 2. transmission with sparsification
    # ------------------------------------------------------------------
    for step_index, distance in enumerate(distances, start=1):
        messages: List[Message] = []
        step_max_nnz = 0
        for team in teams:
            for position, rank in enumerate(team):
                plan = plans[rank]
                bag_blocks = plan.bag_for_step(step_index)
                pieces = []
                for block in bag_blocks:
                    sparse_block = held[rank].pop(block)
                    pieces.append(sparse_block)
                    step_max_nnz = max(step_max_nnz, sparse_block.nnz)
                dst = team[(position + distance) % team_size]
                if packed_wire:
                    # One message per (worker, step): the whole bag travels as
                    # one contiguous buffer pair.  Block ids are header
                    # metadata; comm_size comes from the packed arrays alone.
                    # SRS bags are ``lossy``: only the block owner's final
                    # value degrades if one is lost (its mass returns to the
                    # sender's residual store), and the downstream all-gather
                    # keeps every worker consistent — so SRS can degrade
                    # gracefully where the SAG/all-gather steps cannot.
                    messages.append(Message(src=rank, dst=dst,
                                             payload=PackedBags.pack(pieces, ids=bag_blocks),
                                             tag=f"srs-{step_index}",
                                             lossy=True))
                else:
                    # Unbatched wiring: one message per block.  Block ids are
                    # still metadata, so each message bills the COO payload
                    # only.
                    for block, sparse_block in zip(bag_blocks, pieces):
                        messages.append(Message(src=rank, dst=dst,
                                                 payload=(block, sparse_block),
                                                 size=sparse_block.comm_size,
                                                 tag=f"srs-{step_index}",
                                                 lossy=True))
        inboxes = cluster.exchange(messages)
        max_bag_nnz_per_step.append(step_max_nnz)

        for team in teams:
            for position, rank in enumerate(team):
                for message in inboxes.get(rank, []):
                    if isinstance(message.payload, PackedBags):
                        received = message.payload.items()
                    else:
                        received = [message.payload]
                    for block, sparse_block in received:
                        if block not in held[rank]:
                            raise RuntimeError(
                                f"Theorem 1 violated: worker {rank} received block {block} "
                                "it no longer holds"
                            )
                        held[rank][block] = held[rank][block].add(sparse_block)

                plan = plans[rank]
                if sparsify_all:
                    targets: Tuple[int, ...] = tuple(held[rank])
                elif step_index < num_steps:
                    targets = plan.bag_for_step(step_index + 1)
                else:
                    targets = (plan.preserved,)
                for block in targets:
                    kept, dropped = held[rank][block].top_k(k_block)
                    held[rank][block] = kept
                    residuals.collect_procedure(rank, dropped)

    # ------------------------------------------------------------------
    # 3. collect the reduced block of every worker
    # ------------------------------------------------------------------
    reduced_blocks: Dict[int, SparseGradient] = {}
    owned_block: Dict[int, int] = {}
    for team in teams:
        for position, rank in enumerate(team):
            remaining = held[rank]
            if set(remaining) != {plans[rank].preserved}:
                raise RuntimeError(
                    f"worker {rank} should hold exactly its preservation block after SRS, "
                    f"holds {sorted(remaining)}"
                )
            block = plans[rank].preserved
            if team_size == 1:
                # No transmission happened; enforce the target sparsity here.
                kept, dropped = remaining[block].top_k(k_block)
                remaining[block] = kept
                residuals.collect_procedure(rank, dropped)
            reduced_blocks[rank] = remaining[block]
            owned_block[rank] = block

    return SRSOutput(
        reduced_blocks=reduced_blocks,
        owned_block=owned_block,
        layout=layout,
        num_steps=num_steps,
        max_bag_nnz_per_step=max_bag_nnz_per_step,
    )


# ---------------------------------------------------------------------------
def _validate_teams(cluster: Transport, teams: Sequence[Sequence[int]],
                    layout: BlockLayout) -> int:
    if not teams:
        raise ValueError("at least one team is required")
    sizes = {len(team) for team in teams}
    if len(sizes) != 1:
        raise ValueError("all teams must have the same size")
    team_size = sizes.pop()
    if team_size == 0:
        raise ValueError("teams must not be empty")
    if layout.num_blocks != team_size:
        raise ValueError(
            f"layout has {layout.num_blocks} blocks but teams have {team_size} workers"
        )
    seen = set()
    for team in teams:
        for rank in team:
            if rank in seen:
                raise ValueError(f"worker {rank} appears in more than one team")
            if not 0 <= rank < cluster.num_workers:
                raise ValueError(f"worker {rank} outside cluster of size {cluster.num_workers}")
            seen.add(rank)
    return team_size
