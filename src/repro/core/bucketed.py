"""Per-layer bucketed synchronisation (SSFusion-style).

The flat-vector synchronisers treat the model as one opaque gradient.
Real systems shard it: SSFusion fuses per-layer sparse tensors into
bucketed exchanges so selection, compression and communication happen at
tensor granularity.  :class:`BucketedSynchronizer` brings that shape here:
the flat gradient is sliced into contiguous buckets derived from the
model's parameter shapes (one per layer, or greedily fused up to a size
cap), and every bucket is driven by its own
:class:`~repro.core.pipeline.SyncSession` — with its own synchroniser,
sparsity schedule and residual state — while the aggregate still presents
the plain :class:`~repro.core.base.GradientSynchronizer` interface, so the
trainer and the benchmarks are oblivious.

Communication accounting is honest about the simulator's execution model:
buckets synchronise sequentially, so the aggregated
:class:`~repro.comm.stats.CommStats` adds the buckets' rounds (the latency
price of bucketing) as well as their volumes.  The end-to-end benchmark
(``benchmarks/perf/bench_e2e_throughput.py``) measures exactly this
trade-off against the flat pipeline.

Note that bucketing changes *what is selected*: top-k runs per bucket, so
small layers are guaranteed representation in the global gradient (the
motivation DGC gives for per-layer selection), whereas the flat pipeline
lets a few large layers monopolise the budget.  Residual conservation is
preserved bucket by bucket, which the bucketed-vs-flat equivalence tests
assert alongside exact equality on the dense path.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.transport import Transport
from ..comm.stats import CommStats
from .base import GradientSynchronizer, SyncResult
from .pipeline import SyncSession

__all__ = ["BucketedSynchronizer", "layer_buckets", "fuse_buckets"]

#: Builds one bucket's synchroniser: ``factory(cluster, bucket_elements)``,
#: or ``factory(cluster, bucket_elements, bucket_name)`` for per-bucket
#: policies (hybrid dense/sparse switching, per-bucket ``bits=`` overrides).
BucketFactory = Callable[..., GradientSynchronizer]


def _factory_takes_name(factory: BucketFactory) -> bool:
    """True when ``factory`` accepts a third positional (name) argument."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / odd callables: stay binary
        return False
    positional = [
        p for p in parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if any(p.kind is p.VAR_POSITIONAL for p in parameters.values()):
        return True
    return len(positional) >= 3


def layer_buckets(module) -> List[Tuple[str, int]]:
    """``(name, size)`` of one bucket per parameter tensor of ``module``.

    ``module`` is anything exposing ``parameters()`` yielding objects with
    ``name`` and ``size`` attributes (a :class:`repro.nn.module.Module`);
    the function is duck-typed so the core layer does not depend on the nn
    substrate.
    """
    buckets: List[Tuple[str, int]] = []
    for index, parameter in enumerate(module.parameters()):
        name = getattr(parameter, "name", "") or f"param{index}"
        size = int(parameter.size)
        if size <= 0:
            raise ValueError(f"parameter {name!r} has no elements")
        buckets.append((name, size))
    if not buckets:
        raise ValueError("module has no parameters to bucket")
    return buckets


def fuse_buckets(buckets: Sequence[Tuple[str, int]],
                 max_elements: int) -> List[Tuple[str, int]]:
    """Greedily fuse consecutive buckets up to ``max_elements`` apiece.

    This is SSFusion's fusion step: many small tensors share one exchange.
    A single bucket larger than the cap keeps its own bucket (it cannot be
    split without breaking the per-tensor selection semantics).
    """
    if max_elements <= 0:
        raise ValueError("max_elements must be positive")
    fused: List[Tuple[str, int]] = []
    group_names: List[str] = []
    group_size = 0
    for name, size in buckets:
        if group_size and group_size + size > max_elements:
            fused.append(("+".join(group_names), group_size))
            group_names, group_size = [], 0
        group_names.append(name)
        group_size += size
    if group_size:
        fused.append(("+".join(group_names), group_size))
    return fused


class BucketedSynchronizer(GradientSynchronizer):
    """Drives one :class:`SyncSession` per gradient bucket.

    Parameters
    ----------
    cluster:
        The simulated cluster shared by every bucket.
    bucket_sizes:
        Element count of each contiguous bucket; they concatenate to the
        full flat gradient.
    factory:
        ``factory(cluster, bucket_elements)`` building one bucket's
        synchroniser.  Each bucket gets its own instance — and therefore
        its own residual state and schedule position.  A factory accepting
        a third positional argument is additionally handed the bucket's
        *name* (``factory(cluster, bucket_elements, bucket_name)``), which
        per-bucket policies key on: the hybrid dense/sparse switch picks
        the method per bucket size, and per-bucket ``bits=`` overrides
        match name patterns.
    bucket_names:
        Optional display names (defaults to ``bucket0..``).
    plan:
        Optional :class:`~repro.core.fusion.FusionPlan` this layout was
        derived from (set by ``api.make`` for ``buckets=auto`` specs).
        Stored as :attr:`fusion_plan` purely for introspection — the
        planner's predicted timeline and bucket counts surface in
        benchmark reports; the synchroniser itself only consumes the
        fused ``bucket_sizes``.
    """

    name = "Bucketed"

    def __init__(self, cluster: Transport, bucket_sizes: Sequence[int],
                 factory: BucketFactory,
                 bucket_names: Optional[Sequence[str]] = None,
                 plan=None) -> None:
        sizes = [int(size) for size in bucket_sizes]
        if not sizes:
            raise ValueError("at least one bucket is required")
        if any(size <= 0 for size in sizes):
            raise ValueError("bucket sizes must be positive")
        super().__init__(cluster, sum(sizes))
        self.bucket_sizes = sizes
        if bucket_names is None:
            bucket_names = [f"bucket{i}" for i in range(len(sizes))]
        if len(bucket_names) != len(sizes):
            raise ValueError("bucket_names must match bucket_sizes")
        self.bucket_names = list(bucket_names)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        #: ``(lo, hi)`` slice of every bucket in the flat gradient.
        self.slices: List[Tuple[int, int]] = [
            (int(offsets[i]), int(offsets[i + 1])) for i in range(len(sizes))
        ]
        #: One session per bucket, each wrapping its own synchroniser.
        if _factory_takes_name(factory):
            self.sessions: List[SyncSession] = [
                SyncSession(factory(cluster, size, name))
                for size, name in zip(sizes, self.bucket_names)
            ]
        else:
            self.sessions = [
                SyncSession(factory(cluster, size)) for size in sizes
            ]
        #: The fusion plan behind this layout, when one was used.
        self.fusion_plan = plan
        inner = self.sessions[0].synchronizer.name
        self.name = f"Bucketed[{len(sizes)}]({inner})"

    # ------------------------------------------------------------------
    def enable_momentum_correction(self, factor: float) -> None:
        """Trainer handoff: momentum correction is enabled on every bucket's
        synchroniser (each owns its own residual manager and velocity)."""
        for session in self.sessions:
            session.synchronizer.enable_momentum_correction(factor)

    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return len(self.sessions)

    @property
    def k(self) -> Optional[int]:
        """Aggregate selection budget: the sum of the buckets' current
        ``k`` (``None`` when the buckets have no sparsity knob, e.g. dense).

        Sessions read this after every step, so a bucketed warm-up's
        resolved-``k`` trajectory is visible exactly like a flat one's.
        """
        ks = [getattr(session.synchronizer, "k", None) for session in self.sessions]
        if any(value is None for value in ks):
            return None
        return int(sum(ks))

    def _step(self, gradients: Dict[int, np.ndarray], observer=None) -> SyncResult:
        """One bucketed step: slice, drive every bucket's session, and
        re-assemble the flat global gradients with aggregated statistics.

        Stage observers attach at the bucket level (each inner session runs
        the full five-stage pipeline); ``observer`` is therefore ignored
        here rather than fired with a context the buckets share.
        """
        self._validate(gradients)
        arrays = {rank: np.asarray(grad, dtype=np.float64)
                  for rank, grad in gradients.items()}
        results: List[SyncResult] = []
        for (lo, hi), session in zip(self.slices, self.sessions):
            outcome = session.step({rank: grad[lo:hi] for rank, grad in arrays.items()})
            results.append(outcome)
        stats = CommStats.merged(self.num_workers, (outcome.stats for outcome in results))
        global_gradients = {
            rank: np.concatenate([outcome.global_gradients[rank] for outcome in results])
            for rank in arrays
        }
        info = {
            "buckets": self.num_buckets,
            "bucket_names": list(self.bucket_names),
            "bucket_sizes": list(self.bucket_sizes),
            # Per-bucket method labels: under the hybrid dense/sparse policy
            # (and per-bucket bits overrides) buckets run different methods,
            # and the volume accounting is audited per bucket against them.
            "bucket_methods": [session.synchronizer.name
                               for session in self.sessions],
            "k": self._total_or_none("k", results),
            "final_nnz": self._total_or_none("final_nnz", results),
            "per_bucket_info": [outcome.info for outcome in results],
            # Per-bucket statistics, forward order: the overlap-aware
            # iteration timing schedules these against the per-bucket
            # backward slices instead of pricing the merged aggregate.
            "bucket_stats": [outcome.stats for outcome in results],
        }
        result = SyncResult(global_gradients=global_gradients, stats=stats, info=info)
        self.iteration += 1
        return result

    # ------------------------------------------------------------------
    # the abstract stage methods never run: _step overrides the flat driver
    # (buckets each run their own five-stage pipeline).
    def stage_exchange(self, context) -> None:  # pragma: no cover
        raise RuntimeError("BucketedSynchronizer drives per-bucket pipelines")

    def stage_combine(self, context) -> None:  # pragma: no cover
        raise RuntimeError("BucketedSynchronizer drives per-bucket pipelines")

    # ------------------------------------------------------------------
    def total_residual(self) -> np.ndarray:
        """Sum of every bucket's residual stores, assembled to full length.

        Buckets without residual state (e.g. dense buckets) contribute
        zeros, so ``global + total_residual() == exact dense sum`` holds
        exactly when it holds per bucket (GRES conservation).
        """
        total = np.zeros(self.num_elements, dtype=np.float64)
        for (lo, hi), session in zip(self.slices, self.sessions):
            residuals = getattr(session.synchronizer, "residuals", None)
            if residuals is not None:
                total[lo:hi] = residuals.total_residual()
        return total

    @staticmethod
    def _total_or_none(key: str, results: Sequence[SyncResult]):
        values = [outcome.info.get(key) for outcome in results]
        if any(value is None for value in values):
            return None
        return int(sum(values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BucketedSynchronizer(P={self.num_workers}, buckets={self.num_buckets}, "
                f"n={self.num_elements})")
