"""Spar-All-Gather (SAG): inter-team synchronisation (Section III-D).

After Spar-Reduce-Scatter has run inside every team, the worker at position
``j`` of team ``t`` holds the team-reduced sparse block ``j``.  SAG makes the
workers at the same position of *all* teams hold the same ``L = d*k/P``
sparse gradients, so that the final intra-team All-Gather produces identical
global gradients on every worker.

Two variants are provided, exactly as in the paper:

* :func:`r_sag` — recursive-doubling exchange between teams, usable when the
  number of teams ``d`` is a power of two.  Both sides of an exchange hold
  the same data after summation and drop the same values after the top-L
  selection, so each side collects *half* of the discarded mass as residual.
* :func:`b_sag` — Bruck All-Gather between teams.  Re-sparsifying during a
  Bruck exchange would give different workers different compression orders
  (and therefore different final gradients), so B-SAG instead applies a
  single top-``h`` selection *before* the exchange and a top-``L`` selection
  after it.  ``h`` is adapted across iterations by
  :class:`CompressionRatioController` (Algorithm 2), which drives the
  post-exchange non-zero count towards ``L``.

Both variants ship sparse payloads in the batched
:class:`~repro.comm.packed.PackedBags` wire format: R-SAG packs the
exchanged block into a single-bag buffer pair (``comm_size`` derived from
the packed arrays), and B-SAG's Bruck exchange packs each forwarded item
list inside :func:`~repro.comm.collectives.allgather_bruck_grouped`.
Receivers decode zero-copy views and merge them with the compiled kernels.

Every ``collect_procedure`` call below goes through the
:class:`~repro.core.residuals.ResidualManager` collection hooks, so when the
synchroniser enables deferred residual accumulation
(``SparDLConfig.deferred_residuals``) the per-step discards of both SAG
variants are buffered and folded into the stores in one merge per worker at
the iteration's flush point instead of being scattered step by step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..comm.transport import Message, Transport
from ..comm.collectives import allgather_bruck_grouped
from ..comm.packed import PackedBags
from ..sparse.vector import SparseGradient
from .residuals import ResidualManager

__all__ = [
    "CompressionRatioController",
    "SAGOutput",
    "cross_team_groups",
    "r_sag",
    "b_sag",
]


def cross_team_groups(teams: Sequence[Sequence[int]]) -> List[List[int]]:
    """Groups of workers that occupy the same position in every team.

    ``teams`` is a list of ``d`` teams of equal size ``m``; the result is a
    list of ``m`` groups of size ``d``: group ``j`` holds the ``j``-th worker
    of every team.  These are the workers that exchange data during SAG.
    """
    if not teams:
        raise ValueError("at least one team is required")
    sizes = {len(team) for team in teams}
    if len(sizes) != 1:
        raise ValueError("all teams must have the same size")
    team_size = sizes.pop()
    return [[team[pos] for team in teams] for pos in range(team_size)]


@dataclass
class SAGOutput:
    """Result of a Spar-All-Gather step."""

    #: Global worker rank -> synchronised sparse block (identical across the
    #: workers of one cross-team group).
    blocks: Dict[int, SparseGradient]
    #: Number of communication steps used by the SAG exchange.
    num_steps: int
    #: Number of non-zeros held by the busiest worker after merging but
    #: before the final top-L selection (the quantity plotted in Fig. 7).
    merged_nnz_max: int = 0
    #: Mean of the same quantity over workers.
    merged_nnz_mean: float = 0.0
    #: The ``h`` used by B-SAG for this iteration (``None`` for R-SAG).
    h_used: Optional[int] = None


# ---------------------------------------------------------------------------
# Algorithm 2: compression ratio adjustment for B-SAG
# ---------------------------------------------------------------------------
class CompressionRatioController:
    """Adaptive choice of the pre-exchange top-``h`` count of B-SAG.

    Implements Algorithm 2 of the paper, which is modelled on TCP congestion
    window adjustment: the step size keeps its sign while the observed
    non-zero count stays on the same side of the target ``L``, doubling after
    two consecutive moves in the same direction, and is halved and reversed
    when the count crosses the target.

    Parameters
    ----------
    k:
        Total number of selected gradients per worker (the paper's ``k``).
    num_workers:
        Cluster size ``P``.
    num_teams:
        Team count ``d``.
    """

    def __init__(self, k: int, num_workers: int, num_teams: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if num_workers <= 0 or num_teams <= 0:
            raise ValueError("num_workers and num_teams must be positive")
        if num_teams > num_workers:
            raise ValueError("cannot have more teams than workers")
        self.k = int(k)
        self.num_workers = int(num_workers)
        self.num_teams = int(num_teams)
        #: Target non-zero count after the exchange: ``L(k, d, P) = d*k/P``.
        self.target = max(1.0, self.num_teams * self.k / self.num_workers)
        #: Lower / upper bounds for ``h``: entirely non-overlapping vs
        #: entirely overlapping index sets between teams.
        self.h_min = max(1.0, self.k / self.num_workers)
        self.h_max = max(self.h_min, self.num_teams * self.k / self.num_workers)
        self._h = self.h_min
        initial = 0.01 * self.k * max(self.num_teams - 1, 1) / self.num_workers
        self._step = max(initial, 1e-9)
        self._flag = False
        self.history: List[float] = []

    @property
    def h(self) -> int:
        """Current top-``h`` count (integer, clamped to ``[h_min, h_max]``)."""
        return int(max(1, round(min(max(self._h, self.h_min), self.h_max))))

    @property
    def step(self) -> float:
        return self._step

    def update(self, observed_nnz: float) -> int:
        """Adjust ``h`` given the non-zero count observed after the exchange.

        Returns the new integer ``h`` to use at the next iteration.
        """
        same_direction = (observed_nnz > self.target) ^ (self._step > 0)
        if same_direction:
            if self._flag:
                self._step *= 2.0
                self._flag = False
            else:
                self._flag = True
        else:
            self._step = -self._step * 0.5
            self._flag = False
        self._h += self._step
        self._h = min(max(self._h, self.h_min), self.h_max)
        self.history.append(self._h)
        return self.h


# ---------------------------------------------------------------------------
# R-SAG: recursive doubling between teams (d a power of two)
# ---------------------------------------------------------------------------
def r_sag(
    cluster: Transport,
    teams: Sequence[Sequence[int]],
    blocks: Dict[int, SparseGradient],
    keep: int,
    residuals: ResidualManager,
) -> SAGOutput:
    """Recursive-doubling Spar-All-Gather.

    Parameters
    ----------
    teams:
        The ``d`` teams used by SRS; ``d`` must be a power of two.
    blocks:
        Per-worker reduced sparse block from SRS.
    keep:
        Non-zeros to keep after each exchange (the paper's ``L = d*k/P``).
    residuals:
        Receives half of every discarded value (both exchange partners drop
        the same values, so each keeps a half share).
    """
    num_teams = len(teams)
    if num_teams < 1:
        raise ValueError("at least one team is required")
    if num_teams & (num_teams - 1):
        raise ValueError("R-SAG requires a power-of-two number of teams")
    if keep <= 0:
        raise ValueError("keep must be positive")

    current = {rank: blocks[rank] for team in teams for rank in team}
    if num_teams == 1:
        return SAGOutput(blocks=current, num_steps=0,
                         merged_nnz_max=max((b.nnz for b in current.values()), default=0),
                         merged_nnz_mean=_mean_nnz(current))

    groups = cross_team_groups(teams)
    num_steps = int(math.log2(num_teams))
    merged_max = 0
    merged_sum = 0.0
    merged_count = 0

    for step in range(num_steps):
        distance = 1 << step
        messages: List[Message] = []
        for group in groups:
            for team_index, rank in enumerate(group):
                partner = group[team_index ^ distance]
                messages.append(Message(src=rank, dst=partner,
                                        payload=PackedBags.pack([current[rank]]),
                                        tag=f"rsag-{step}"))
        inboxes = cluster.exchange(messages)
        # After step ``t`` the 2^(t+1) teams of a recursive-doubling cohort all
        # hold identical merged data and drop identical values, so each worker
        # keeps a 1/2^(t+1) share of the discard (the paper states "half" for
        # its d=2 setting; the general share keeps the conservation invariant
        # for larger d).
        share = 1.0 / float(2 << step)
        for group in groups:
            for rank in group:
                for message in inboxes.get(rank, []):
                    current[rank] = current[rank].add(message.payload.bag(0))
                merged_max = max(merged_max, current[rank].nnz)
                merged_sum += current[rank].nnz
                merged_count += 1
                kept, dropped = current[rank].top_k(keep)
                current[rank] = kept
                residuals.collect_procedure(rank, dropped, share=share)

    return SAGOutput(
        blocks=current,
        num_steps=num_steps,
        merged_nnz_max=merged_max,
        merged_nnz_mean=merged_sum / merged_count if merged_count else 0.0,
    )


# ---------------------------------------------------------------------------
# B-SAG: Bruck All-Gather between teams with adaptive top-h (any d)
# ---------------------------------------------------------------------------
def b_sag(
    cluster: Transport,
    teams: Sequence[Sequence[int]],
    blocks: Dict[int, SparseGradient],
    keep: int,
    h: int,
    residuals: ResidualManager,
) -> SAGOutput:
    """Bruck-based Spar-All-Gather.

    Each worker first applies a top-``h`` selection to its block, the
    cross-team groups then run a Bruck All-Gather (no sparsification during
    the exchange, which keeps every group member's result identical), the
    gathered blocks are merge-summed and finally re-sparsified to ``keep``
    non-zeros.  The discarded values of the final selection are identical on
    every member of a group, so each collects a ``1/d`` share.
    """
    num_teams = len(teams)
    if num_teams < 1:
        raise ValueError("at least one team is required")
    if keep <= 0:
        raise ValueError("keep must be positive")
    if h <= 0:
        raise ValueError("h must be positive")

    current = {rank: blocks[rank] for team in teams for rank in team}
    if num_teams == 1:
        return SAGOutput(blocks=current, num_steps=0,
                         merged_nnz_max=max((b.nnz for b in current.values()), default=0),
                         merged_nnz_mean=_mean_nnz(current), h_used=h)

    # Pre-exchange top-h selection.  The dropped values are unique to this
    # worker (different teams hold different team-reduced data), so the full
    # share is collected.
    selected: Dict[int, SparseGradient] = {}
    for rank, block in current.items():
        kept, dropped = block.top_k(h)
        selected[rank] = kept
        residuals.collect_procedure(rank, dropped, share=1.0)

    groups = cross_team_groups(teams)
    gathered = allgather_bruck_grouped(cluster, groups, selected)

    merged_max = 0
    merged_sum = 0.0
    merged_count = 0
    result: Dict[int, SparseGradient] = {}
    for group in groups:
        for rank in group:
            merged = SparseGradient.merge_many(gathered[rank])
            merged_max = max(merged_max, merged.nnz)
            merged_sum += merged.nnz
            merged_count += 1
            kept, dropped = merged.top_k(keep)
            result[rank] = kept
            # Every member of the group discards the same values.
            residuals.collect_procedure(rank, dropped, share=1.0 / num_teams)

    num_steps = max(1, math.ceil(math.log2(num_teams)))
    return SAGOutput(
        blocks=result,
        num_steps=num_steps,
        merged_nnz_max=merged_max,
        merged_nnz_mean=merged_sum / merged_count if merged_count else 0.0,
        h_used=h,
    )


def _mean_nnz(blocks: Dict[int, SparseGradient]) -> float:
    if not blocks:
        return 0.0
    return sum(b.nnz for b in blocks.values()) / len(blocks)
