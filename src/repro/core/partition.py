"""Bag partitioning for Spar-Reduce-Scatter (Section III-B, step 1).

Each worker partitions its ``m`` gradient blocks (``m`` = number of workers
in its team) into one *preservation bag* ``B0`` holding its own block and
``l = ceil(log2 m)`` *sending bags* ``B1 .. Bl``.  Bag ``Bi`` holds the next
``2^(i-1)`` blocks walking circularly from the worker's own block; the last
bag may be partially filled with the remaining ``E = m - 2^(l-1)`` blocks.

During transmission, bags are sent from the last to the first: at step ``i``
(``1 <= i <= l``) the worker sends bag ``B_(l-i+1)`` to the worker at
distance ``2^(l-i)`` ahead and receives the matching bag from the worker at
the same distance behind.  Theorem 1 of the paper guarantees the received
blocks are always a subset of the blocks the receiver still holds; a checker
for that invariant is provided for the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set, Tuple

__all__ = [
    "BagPlan",
    "plan_bags",
    "transmission_distances",
    "held_blocks_before_step",
    "last_bag_capacity_shortfall",
]


@dataclass(frozen=True)
class BagPlan:
    """Bag assignment of one worker's blocks."""

    worker: int
    num_blocks: int
    preserved: int
    sending_bags: Tuple[Tuple[int, ...], ...]

    @property
    def num_steps(self) -> int:
        return len(self.sending_bags)

    def bag_for_step(self, step: int) -> Tuple[int, ...]:
        """Blocks sent at transmission step ``step`` (1-based): bag
        ``B_(l-step+1)``."""
        if not 1 <= step <= self.num_steps:
            raise ValueError(f"step must be in [1, {self.num_steps}]")
        return self.sending_bags[self.num_steps - step]

    def all_blocks(self) -> List[int]:
        blocks = [self.preserved]
        for bag in self.sending_bags:
            blocks.extend(bag)
        return blocks


def plan_bags(worker: int, num_blocks: int) -> BagPlan:
    """Partition ``num_blocks`` circularly-ordered blocks into bags for
    ``worker`` (rank within its team)."""
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    if not 0 <= worker < num_blocks:
        raise ValueError("worker rank must be within [0, num_blocks)")
    preserved = worker
    if num_blocks == 1:
        return BagPlan(worker=worker, num_blocks=1, preserved=preserved, sending_bags=())

    num_steps = math.ceil(math.log2(num_blocks))
    bags: List[Tuple[int, ...]] = []
    next_block = worker + 1
    remaining = num_blocks - 1
    for i in range(num_steps):
        capacity = 1 << i
        take = min(capacity, remaining)
        bag = tuple((next_block + j) % num_blocks for j in range(take))
        bags.append(bag)
        next_block += take
        remaining -= take
    if remaining != 0:
        raise RuntimeError("bag partitioning did not consume every block")  # pragma: no cover
    return BagPlan(worker=worker, num_blocks=num_blocks, preserved=preserved,
                   sending_bags=tuple(bags))


def transmission_distances(num_blocks: int) -> List[int]:
    """Communication distance of each transmission step: step ``i`` uses
    distance ``2^(l-i)`` (paper Example 2)."""
    if num_blocks <= 1:
        return []
    num_steps = math.ceil(math.log2(num_blocks))
    return [1 << (num_steps - step) for step in range(1, num_steps + 1)]


def last_bag_capacity_shortfall(num_blocks: int) -> int:
    """Number of unfilled slots in the last sending bag: ``2^(l-1) - E``
    where ``E = num_blocks - 2^(l-1)``; zero for power-of-two block counts."""
    if num_blocks <= 1:
        return 0
    num_steps = math.ceil(math.log2(num_blocks))
    capacity = 1 << (num_steps - 1)
    filled = num_blocks - capacity
    return capacity - filled


def held_blocks_before_step(worker: int, num_blocks: int, step: int) -> Set[int]:
    """Blocks still held by ``worker`` just before transmission step ``step``
    (1-based).  Used to verify Theorem 1."""
    plan = plan_bags(worker, num_blocks)
    held = set(plan.all_blocks())
    for earlier in range(1, step):
        held.difference_update(plan.bag_for_step(earlier))
    return held
