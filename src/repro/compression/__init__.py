"""Value quantization for combining with sparse communication (Section VI)."""

from .quantization import (
    QuantizedCompressor,
    StochasticQuantizer,
    quantize_sparse,
    quantized_bandwidth,
    quantized_complexity,
    quantized_sparse_cost,
)

__all__ = [
    "QuantizedCompressor",
    "StochasticQuantizer",
    "quantize_sparse",
    "quantized_bandwidth",
    "quantized_complexity",
    "quantized_sparse_cost",
]
