"""Value quantization for combining with sparse communication (Section VI)."""

from .quantization import (
    StochasticQuantizer,
    quantize_sparse,
    quantized_bandwidth,
    quantized_complexity,
)

__all__ = [
    "StochasticQuantizer",
    "quantize_sparse",
    "quantized_bandwidth",
    "quantized_complexity",
]
