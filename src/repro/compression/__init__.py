"""Compression layer: quantization (Section VI) and the composable stack.

The :class:`~repro.compression.stack.CompressorStack` is the single object a
synchroniser owns for everything compression-related — ordered stages
(momentum-correction -> sparsify -> quantize) with a uniform
``(payload, error)`` contract feeding the conservation-gated residual path.
"""

from .quantization import (
    QuantizedCompressor,
    StochasticQuantizer,
    quantize_sparse,
    quantized_bandwidth,
    quantized_complexity,
    quantized_sparse_cost,
)
from .stack import (
    CompressorStack,
    CompressorStage,
    MomentumCorrection,
    QuantizeStage,
    TopKSparsifier,
)

__all__ = [
    "CompressorStack",
    "CompressorStage",
    "MomentumCorrection",
    "QuantizeStage",
    "TopKSparsifier",
    "QuantizedCompressor",
    "StochasticQuantizer",
    "quantize_sparse",
    "quantized_bandwidth",
    "quantized_complexity",
    "quantized_sparse_cost",
]
