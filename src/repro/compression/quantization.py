"""Gradient value quantization (the paper's "future work" extension).

Section VI of the paper lists combining SparDL's sparsification with
quantization as future work: after top-k selection, the transmitted COO pairs
still carry full-precision values, so quantizing the value half of each pair
multiplies the bandwidth term by ``(1 + b/32) / 2`` for ``b``-bit values.

This module provides that combination:

* :class:`StochasticQuantizer` — unbiased QSGD-style uniform quantization of
  a value vector to ``b`` bits (plus one full-precision scale per message).
  :meth:`StochasticQuantizer.quantize_with_error` performs **one** stochastic
  draw and returns both the dequantized message and the exact quantization
  error ``values - quantized`` of that same draw, so error feedback always
  collects the error of the message actually sent;
* :func:`quantize_sparse` — quantize the values of a
  :class:`~repro.sparse.vector.SparseGradient` and report the compressed
  transmission size in 32-bit elements (:func:`quantized_sparse_cost`);
* :class:`QuantizedCompressor` — the pipeline's ``compress``-stage
  implementation: per-worker independent random streams
  (``np.random.SeedSequence.spawn``, so results do not depend on worker
  iteration order), ``(quantized, error)`` splitting for sparse and dense
  payloads, and the message pricer that bills every wire payload at the
  quantized accounting (:meth:`QuantizedCompressor.price`);
* :func:`quantized_bandwidth` / :func:`quantized_complexity` — re-exported
  from :mod:`repro.analysis.complexity`, which adjusts a Table I
  :class:`~repro.analysis.complexity.ComplexityBound` for quantized values so
  the combined scheme can be analysed next to the pure-sparse methods.

The quantizer is unbiased, so the usual error-feedback argument for
convergence applies unchanged; the quantization error of each message is
folded into the residual store exactly like a sparsification discard.

Modelling convention for multi-hop procedures: each selected value is
quantized **once**, when it is first placed on the wire, and its exact error
enters error feedback.  Later hops forward merge-sums of quantized values;
those messages are *priced* at ``num_bits`` bits per value (the wire carries
``b``-bit codes end to end) but the re-encoding error of the merged sums is
not modelled — it is second-order in the level width and has no analogue in
the paper's accounting.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

# Re-exported for backward compatibility: the Table I adjustment lives in the
# analysis layer (so ``analysis.complexity.table1`` can render quantized rows
# without importing this module), but has always been part of this module's
# public interface.
from ..analysis.complexity import quantized_bandwidth, quantized_complexity
from ..sparse.vector import SparseGradient

__all__ = [
    "StochasticQuantizer",
    "QuantizedCompressor",
    "quantize_sparse",
    "quantized_sparse_cost",
    "quantized_bandwidth",
    "quantized_complexity",
]

#: Number of bits of one uncompressed element (index or value) in the paper's
#: COO accounting.
_ELEMENT_BITS = 32


def quantized_sparse_cost(nnz: int, num_bits: int) -> float:
    """Wire size, in 32-bit elements, of one quantized sparse message.

    One full element per index, ``num_bits`` bits per value, and one
    full-precision scale element for the whole message (omitted when the
    message is empty — nothing travels at all).  This is exactly
    ``2 * nnz * (1 + num_bits/32) / 2 + 1``: the paper's COO volume scaled by
    the quantization factor, plus the scale.
    """
    if not 1 <= num_bits <= 32:
        raise ValueError("num_bits must be between 1 and 32")
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    if nnz == 0:
        return 0.0
    return nnz * (1.0 + num_bits / _ELEMENT_BITS) + 1.0


class StochasticQuantizer:
    """Unbiased uniform quantization of gradient values to ``num_bits`` bits.

    Values are mapped onto ``2**num_bits - 1`` uniform levels spanning
    ``[-scale, +scale]`` where ``scale`` is the maximum magnitude of the
    message; each value is rounded stochastically to one of its two
    neighbouring levels so that the expectation equals the input
    (QSGD-style).  The per-message ``scale`` travels at full precision and is
    accounted for by :func:`quantize_sparse` / :func:`quantized_sparse_cost`.
    """

    def __init__(self, num_bits: int = 8, seed: int = 0) -> None:
        if not 1 <= num_bits <= 32:
            raise ValueError("num_bits must be between 1 and 32")
        self.num_bits = int(num_bits)
        self.num_levels = (1 << self.num_bits) - 1
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def element_cost(self) -> float:
        """Cost of one quantized value in 32-bit elements."""
        return self.num_bits / _ELEMENT_BITS

    def quantize_with_error(self, values: np.ndarray,
                            rng: Optional[np.random.Generator] = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize ``values`` with ONE stochastic draw; return
        ``(quantized, error)`` with ``error == values - quantized`` exactly.

        This is the error-feedback entry point: because the error is computed
        from the same draw as the message, ``quantized + error`` reconstructs
        the input bit for bit, so folding ``error`` into a residual store
        keeps the conservation invariant ``sent + error == input``.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy(), values.copy()
        scale = float(np.abs(values).max())
        if scale == 0.0:
            return np.zeros_like(values), np.zeros_like(values)
        rng = rng or self._rng
        normalised = values / scale  # in [-1, 1]
        scaled = (normalised + 1.0) / 2.0 * self.num_levels  # in [0, levels]
        lower = np.floor(scaled)
        probability_up = scaled - lower
        level = lower + (rng.random(values.shape) < probability_up)
        level = np.clip(level, 0, self.num_levels)
        quantized = (level / self.num_levels * 2.0 - 1.0) * scale
        return quantized, values - quantized

    def quantize(self, values: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return the dequantized representation of ``values``.

        The result only takes ``2**num_bits - 1`` distinct levels (scaled by
        the message's maximum magnitude) but is returned as float64 so it can
        flow through the rest of the library unchanged.  When the error of
        the same draw is also needed, use :meth:`quantize_with_error`.
        """
        return self.quantize_with_error(values, rng=rng)[0]


def quantize_sparse(sparse: SparseGradient, quantizer: StochasticQuantizer,
                    rng: Optional[np.random.Generator] = None
                    ) -> Tuple[SparseGradient, float]:
    """Quantize the values of a sparse gradient.

    Returns ``(quantized, comm_size)`` where ``comm_size`` is the compressed
    transmission size in 32-bit elements (:func:`quantized_sparse_cost`):
    one full element per index, a ``num_bits``-bit value per entry and one
    full-precision scale for the whole message.
    """
    quantized_values = quantizer.quantize(sparse.values, rng=rng)
    quantized = SparseGradient(sparse.indices, quantized_values, sparse.length)
    return quantized, quantized_sparse_cost(sparse.nnz, quantizer.num_bits)


class QuantizedCompressor:
    """The ``compress`` stage: quantize wire values, feed back exact errors,
    and price every message at the quantized accounting.

    One compressor serves one synchroniser.  It owns an independent random
    stream per worker (spawned from one ``np.random.SeedSequence``), so the
    quantized run is reproducible **and** independent of the order in which
    the workers of a simulated step happen to be iterated — a shared stream
    would make worker 3's draw depend on whether worker 2 was processed
    first.

    Responsibilities:

    * :meth:`compress_sparse` / :meth:`compress_dense` — quantize one
      worker's payload with that worker's stream and return
      ``(quantized, error)`` from a single draw, ready for the caller to
      fold ``error`` into its :class:`~repro.core.residuals.ResidualManager`;
    * :meth:`price` / :meth:`price_message` — the wire pricer installed on
      the :class:`~repro.comm.cluster.SimulatedCluster` for the duration of
      a quantized step.  Sparse payloads bill
      :func:`quantized_sparse_cost` per message unit (scale element
      included); dense float arrays bill ``num_bits/32`` per value (the
      dense-fallback convention); routing integers (block ids, group
      positions) and ``None`` stay zero-cost metadata; bare scalars remain
      one element of control traffic, unquantized.
    """

    def __init__(self, num_bits: int, num_workers: int, seed: int = 0) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.quantizer = StochasticQuantizer(num_bits)
        self.num_bits = self.quantizer.num_bits
        self.num_workers = int(num_workers)
        self.seed = int(seed)
        streams = np.random.SeedSequence(seed).spawn(self.num_workers)
        self._rngs: Dict[int, np.random.Generator] = {
            worker: np.random.default_rng(stream)
            for worker, stream in enumerate(streams)
        }

    # ------------------------------------------------------------------
    # value transformation (error feedback)
    # ------------------------------------------------------------------
    def rng(self, worker: int) -> np.random.Generator:
        """The independent random stream of ``worker``."""
        return self._rngs[worker]

    def compress_sparse(self, worker: int, sparse: SparseGradient
                        ) -> Tuple[SparseGradient, SparseGradient]:
        """Quantize a sparse selection; return ``(quantized, error)``.

        Both outputs share the input's index array (quantization never moves
        support), and ``quantized.values + error.values == sparse.values``
        exactly — the error is what the caller hands to
        ``ResidualManager.collect_local_sparse``.
        """
        if sparse.nnz == 0:
            return sparse, SparseGradient.empty(sparse.length)
        quantized, error = self.quantizer.quantize_with_error(
            sparse.values, rng=self._rngs[worker])
        return (
            SparseGradient.from_sorted_unique(sparse.indices, quantized, sparse.length),
            SparseGradient.from_sorted_unique(sparse.indices, error, sparse.length),
        )

    def compress_dense(self, worker: int, dense: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize a dense gradient; return ``(quantized, error)``."""
        return self.quantizer.quantize_with_error(dense, rng=self._rngs[worker])

    # ------------------------------------------------------------------
    # wire pricing
    # ------------------------------------------------------------------
    def sparse_cost(self, nnz: int) -> float:
        """:func:`quantized_sparse_cost` at this compressor's bit width."""
        return quantized_sparse_cost(nnz, self.num_bits)

    def dense_cost(self, num_values: float) -> float:
        """Quantized cost of ``num_values`` dense values (no indices travel,
        so the only cost is ``num_bits`` bits per value; the dense-fallback
        convention bills no scale element)."""
        return float(num_values) * self.num_bits / _ELEMENT_BITS

    def price(self, payload: Any) -> float:
        """Quantized wire size of ``payload``, by structural decomposition.

        Mirrors :func:`repro.comm.cluster.payload_size` unit by unit, with
        the quantized accounting substituted for every value-bearing unit.
        Integers inside containers follow the repository's accounting
        convention (block ids, group positions and slice offsets are header
        metadata, never billed); a bare numeric payload is one element of
        control traffic either way.
        """
        if isinstance(payload, (int, float, np.integer, np.floating)):
            return 1.0
        return self._price(payload)

    def _price(self, payload: Any) -> float:
        if payload is None:
            return 0.0
        if isinstance(payload, np.ndarray):
            return self.dense_cost(payload.size)
        if isinstance(payload, SparseGradient):
            return self.sparse_cost(payload.nnz)
        if isinstance(payload, (list, tuple)):
            return float(sum(self._price(item) for item in payload))
        if isinstance(payload, (int, np.integer)):
            return 0.0  # routing metadata inside a container
        if isinstance(payload, (float, np.floating)):
            return 1.0  # control scalar (e.g. a transmitted size)
        # PackedBags (duck-typed to avoid importing the comm layer here):
        # one scale per non-empty bag, indices at full precision, values at
        # num_bits bits.
        offsets = getattr(payload, "offsets", None)
        if offsets is not None and hasattr(payload, "indices"):
            nnz = int(payload.indices.shape[0])
            nonempty = int(np.count_nonzero(np.diff(offsets)))
            if nnz == 0:
                return 0.0
            return nnz * (1.0 + self.num_bits / _ELEMENT_BITS) + float(nonempty)
        raise TypeError(
            f"cannot determine quantized wire size of {type(payload)!r}")

    def price_message(self, message) -> float:
        """Pricer hook for :meth:`repro.comm.cluster.SimulatedCluster.exchange`."""
        return self.price(message.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QuantizedCompressor(num_bits={self.num_bits}, "
                f"num_workers={self.num_workers}, seed={self.seed})")
