"""Gradient value quantization (the paper's "future work" extension).

Section VI of the paper lists combining SparDL's sparsification with
quantization as future work: after top-k selection, the transmitted COO pairs
still carry full-precision values, so quantizing the value half of each pair
multiplies the bandwidth term by ``(1 + b/32) / 2`` for ``b``-bit values.

This module provides the building blocks for that combination:

* :class:`StochasticQuantizer` — unbiased QSGD-style uniform quantization of
  a value vector to ``b`` bits (plus one full-precision scale per message);
* :func:`quantize_sparse` — quantize the values of a
  :class:`~repro.sparse.vector.SparseGradient` and report the compressed
  transmission size in 32-bit elements;
* :func:`quantized_bandwidth` / :func:`quantized_complexity` — adjust a
  Table I :class:`~repro.analysis.complexity.ComplexityBound` for quantized
  values, so the combined scheme can be analysed next to the pure-sparse
  methods.

The quantizer is unbiased, so the usual error-feedback argument for
convergence applies unchanged; the quantization error of each message can
additionally be folded into the residual store exactly like a sparsification
discard.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..analysis.complexity import ComplexityBound
from ..sparse.vector import SparseGradient

__all__ = [
    "StochasticQuantizer",
    "quantize_sparse",
    "quantized_bandwidth",
    "quantized_complexity",
]

#: Number of bits of one uncompressed element (index or value) in the paper's
#: COO accounting.
_ELEMENT_BITS = 32


class StochasticQuantizer:
    """Unbiased uniform quantization of gradient values to ``num_bits`` bits.

    Values are mapped onto ``2**num_bits - 1`` uniform levels spanning
    ``[-scale, +scale]`` where ``scale`` is the maximum magnitude of the
    message; each value is rounded stochastically to one of its two
    neighbouring levels so that the expectation equals the input
    (QSGD-style).  The per-message ``scale`` travels at full precision and is
    accounted for by :func:`quantize_sparse`.
    """

    def __init__(self, num_bits: int = 8, seed: int = 0) -> None:
        if not 1 <= num_bits <= 32:
            raise ValueError("num_bits must be between 1 and 32")
        self.num_bits = int(num_bits)
        self.num_levels = (1 << self.num_bits) - 1
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def element_cost(self) -> float:
        """Cost of one quantized value in 32-bit elements."""
        return self.num_bits / _ELEMENT_BITS

    def quantize(self, values: np.ndarray,
                 rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return the dequantized representation of ``values``.

        The result only takes ``2**num_bits - 1`` distinct levels (scaled by
        the message's maximum magnitude) but is returned as float64 so it can
        flow through the rest of the library unchanged.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return values.copy()
        scale = float(np.abs(values).max())
        if scale == 0.0:
            return np.zeros_like(values)
        rng = rng or self._rng
        normalised = values / scale  # in [-1, 1]
        scaled = (normalised + 1.0) / 2.0 * self.num_levels  # in [0, levels]
        lower = np.floor(scaled)
        probability_up = scaled - lower
        level = lower + (rng.random(values.shape) < probability_up)
        level = np.clip(level, 0, self.num_levels)
        return (level / self.num_levels * 2.0 - 1.0) * scale

    def quantization_error(self, values: np.ndarray,
                           rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """``values - quantize(values)`` (what error feedback would collect)."""
        return np.asarray(values, dtype=np.float64) - self.quantize(values, rng=rng)


def quantize_sparse(sparse: SparseGradient, quantizer: StochasticQuantizer,
                    rng: Optional[np.random.Generator] = None
                    ) -> Tuple[SparseGradient, float]:
    """Quantize the values of a sparse gradient.

    Returns ``(quantized, comm_size)`` where ``comm_size`` is the compressed
    transmission size in 32-bit elements: one full element per index, a
    ``num_bits``-bit value per entry and one full-precision scale for the
    whole message.
    """
    quantized_values = quantizer.quantize(sparse.values, rng=rng)
    quantized = SparseGradient(sparse.indices, quantized_values, sparse.length)
    comm_size = sparse.nnz * (1.0 + quantizer.element_cost) + (1.0 if sparse.nnz else 0.0)
    return quantized, comm_size


def quantized_bandwidth(bandwidth_elements: float, num_bits: int) -> float:
    """Bandwidth of a sparse transfer after quantizing its values.

    ``bandwidth_elements`` follows the paper's COO accounting (two elements
    per non-zero: one index, one value); quantizing the values to
    ``num_bits`` bits turns this into ``(1 + num_bits/32) / 2`` of the
    original volume.
    """
    if not 1 <= num_bits <= 32:
        raise ValueError("num_bits must be between 1 and 32")
    return bandwidth_elements * (1.0 + num_bits / _ELEMENT_BITS) / 2.0


def quantized_complexity(bound: ComplexityBound, num_bits: int) -> ComplexityBound:
    """A Table I row with its bandwidth term adjusted for quantized values.

    Latency is unchanged (the number of rounds does not depend on message
    encoding); both bandwidth bounds are scaled by the quantization factor.
    """
    return ComplexityBound(
        method=f"{bound.method}+{num_bits}bit",
        latency_rounds=bound.latency_rounds,
        bandwidth_low=quantized_bandwidth(bound.bandwidth_low, num_bits),
        bandwidth_high=quantized_bandwidth(bound.bandwidth_high, num_bits),
    )
