"""Composable compressor stack: momentum-correction -> sparsify -> quantize.

Before this module, compression logic was smeared across three places: the
:class:`~repro.compression.quantization.QuantizedCompressor` hooked
quantization into the exchange path, the
:class:`~repro.core.residuals.ResidualManager` owned error-feedback policy,
and the dense-fallback / bucket decisions lived in the synchronisers.  The
:class:`CompressorStack` makes the composition explicit: an ordered list of
:class:`CompressorStage` objects, each honouring one uniform contract —
``compress_*`` returns ``(payload, error)`` where ``payload + error``
reconstructs the input exactly — feeding the conservation-gated residual
path unchanged.

The canonical stage order is fixed by the mathematics, mirroring DGC
(Lin et al., ICLR'18):

1. :class:`MomentumCorrection` — *declarative*: momentum must act on the
   error-feedback accumulator itself (velocity accumulates in the residual
   store between rounds), so the stage binds a momentum factor onto the
   synchroniser's :class:`~repro.core.residuals.ResidualManager` rather than
   transforming payloads.  See :meth:`ResidualManager.apply`.
2. :class:`TopKSparsifier` — *structural*: top-k selection is interleaved
   with the communication procedure (block-wise top-k between SRS
   transmissions), so the stage marks where sparsification sits in the
   stack; the selection itself stays in the synchronisers' ``select`` /
   ``exchange`` stages.
3. :class:`QuantizeStage` — *wire-transforming*: quantizes every payload the
   moment it first reaches the wire and returns the exact error of the draw.

Stages that merely *declare* behaviour return their input with a ``None``
error, so a stack is exactly as lossy as its wire-transforming stages.  A
stack whose only stages are declarative prices nothing and transforms
nothing — the synchronisers then keep their pre-stack code paths bit for
bit.
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

import numpy as np

from ..sparse.vector import SparseGradient
from .quantization import QuantizedCompressor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.residuals import ResidualManager

__all__ = [
    "CompressorStage",
    "MomentumCorrection",
    "TopKSparsifier",
    "QuantizeStage",
    "CompressorStack",
]

#: Canonical stage order: momentum correction happens in gradient space,
#: sparsification selects in corrected-gradient space, quantization encodes
#: the selected values for the wire.  Any other order is mathematically
#: wrong (e.g. quantizing before selecting would feed quantization error
#: into the top-k ranking).
_STAGE_ORDER = {"momentum": 0, "sparsify": 1, "quantize": 2}


class CompressorStage(ABC):
    """One stage of a :class:`CompressorStack`.

    The uniform contract: :meth:`compress_sparse` / :meth:`compress_dense`
    return ``(payload, error)`` with ``payload + error == input`` exactly;
    declarative stages return ``(input, None)``.  :meth:`bind_residuals`
    lets a stage configure the synchroniser's residual manager (momentum
    correction uses this; wire stages do not).
    """

    #: One of ``"momentum"`` / ``"sparsify"`` / ``"quantize"``.
    kind: str = ""

    #: True when the stage changes payload values on the wire (and therefore
    #: produces errors and requires compressed pricing).
    transforms_wire: bool = False

    def bind_residuals(self, residuals: "ResidualManager") -> None:
        """Configure the residual manager this stack feeds (default no-op)."""

    def compress_sparse(self, worker: int, sparse: SparseGradient
                        ) -> Tuple[SparseGradient, Optional[SparseGradient]]:
        return sparse, None

    def compress_dense(self, worker: int, dense: np.ndarray
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        return dense, None

    def describe(self) -> str:
        return self.kind


class MomentumCorrection(CompressorStage):
    """DGC momentum correction (declarative stage).

    Holds the momentum factor ``m`` and installs it on the synchroniser's
    :class:`~repro.core.residuals.ResidualManager` via :meth:`bind_residuals`
    — the correction itself runs inside
    :meth:`~repro.core.residuals.ResidualManager.apply` (velocity
    ``u = m*u + g`` replaces the raw gradient) and
    :meth:`~repro.core.residuals.ResidualManager.finalize` (momentum factor
    masking at the final global indices).  Payloads pass through unchanged.
    """

    kind = "momentum"

    def __init__(self, factor: float) -> None:
        factor = float(factor)
        if not 0.0 < factor < 1.0:
            raise ValueError("momentum factor must be in (0, 1)")
        self.factor = factor

    def bind_residuals(self, residuals: "ResidualManager") -> None:
        residuals.set_momentum(self.factor)

    def describe(self) -> str:
        return f"momentum({self.factor:g})"


class TopKSparsifier(CompressorStage):
    """Top-k sparsification (structural stage).

    Selection is interleaved with the communication procedure (block-wise
    top-k between SRS transmission steps; local top-k in the baselines), so
    this stage records *where* sparsification sits in the stack rather than
    performing it; the synchronisers keep driving the selection.  Its
    discards flow into the residual manager through the existing
    ``collect_local`` / ``collect_procedure`` hooks.
    """

    kind = "sparsify"

    def describe(self) -> str:
        return "topk"


class QuantizeStage(CompressorStage):
    """Stochastic value quantization (wire-transforming stage).

    Wraps a :class:`~repro.compression.quantization.QuantizedCompressor`
    (per-worker independent random streams) and forwards its
    ``(quantized, error)`` contract.
    """

    kind = "quantize"
    transforms_wire = True

    def __init__(self, compressor: QuantizedCompressor) -> None:
        self.compressor = compressor

    @property
    def num_bits(self) -> int:
        return self.compressor.num_bits

    def compress_sparse(self, worker: int, sparse: SparseGradient
                        ) -> Tuple[SparseGradient, Optional[SparseGradient]]:
        return self.compressor.compress_sparse(worker, sparse)

    def compress_dense(self, worker: int, dense: np.ndarray
                       ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        return self.compressor.compress_dense(worker, dense)

    def describe(self) -> str:
        return f"quantize({self.num_bits})"


class CompressorStack:
    """An ordered, validated composition of :class:`CompressorStage` objects.

    The stack is the single object a synchroniser owns for everything
    compression-related: it binds declarative stages onto the residual
    manager (:meth:`bind_residuals`), folds payloads through the
    wire-transforming stages with one accumulated error
    (:meth:`compress_sparse` / :meth:`compress_dense`), and prices wire
    messages (:meth:`price_message`) — at the quantized accounting when a
    quantize stage is present, otherwise it does not price at all
    (:attr:`prices` is False and the cluster's full-precision accounting
    stays installed).

    Stage order is validated against the canonical
    momentum -> sparsify -> quantize order; at most one stage per kind.
    """

    def __init__(self, stages: Sequence[CompressorStage]) -> None:
        stages = tuple(stages)
        if not stages:
            raise ValueError("a CompressorStack needs at least one stage")
        seen: List[str] = []
        for stage in stages:
            if stage.kind not in _STAGE_ORDER:
                raise ValueError(f"unknown stage kind {stage.kind!r}")
            if stage.kind in seen:
                raise ValueError(f"duplicate stage kind {stage.kind!r}")
            if seen and _STAGE_ORDER[stage.kind] < _STAGE_ORDER[seen[-1]]:
                raise ValueError(
                    f"stage order must follow momentum -> sparsify -> "
                    f"quantize; got {stage.kind!r} after {seen[-1]!r}")
            seen.append(stage.kind)
        self.stages = stages

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, num_workers: int, *, momentum: Optional[float] = None,
                    num_bits: Optional[int] = None, sparsify: bool = False,
                    seed: int = 0) -> Optional["CompressorStack"]:
        """Build the stack a synchroniser's configuration implies.

        Returns ``None`` when neither momentum correction nor quantization
        is requested — a sparsify-only stack would change nothing, and the
        ``None`` keeps the synchronisers' pre-stack code paths (and their
        bit-exact outputs) trivially intact.
        """
        if momentum is None and num_bits is None:
            return None
        stages: List[CompressorStage] = []
        if momentum is not None:
            stages.append(MomentumCorrection(momentum))
        if sparsify:
            stages.append(TopKSparsifier())
        if num_bits is not None:
            stages.append(QuantizeStage(
                QuantizedCompressor(num_bits, num_workers, seed=seed)))
        return cls(stages)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stage(self, kind: str) -> Optional[CompressorStage]:
        """The stage of ``kind``, or ``None``."""
        for stage in self.stages:
            if stage.kind == kind:
                return stage
        return None

    @property
    def momentum(self) -> Optional[float]:
        """The momentum-correction factor, or ``None``."""
        stage = self.stage("momentum")
        return stage.factor if stage is not None else None

    @property
    def quantize(self) -> Optional[QuantizedCompressor]:
        """The quantize stage's compressor, or ``None`` (full precision)."""
        stage = self.stage("quantize")
        return stage.compressor if stage is not None else None

    @property
    def num_bits(self) -> Optional[int]:
        compressor = self.quantize
        return compressor.num_bits if compressor is not None else None

    @property
    def transforms_wire(self) -> bool:
        """True when some stage changes wire values (errors are produced)."""
        return any(stage.transforms_wire for stage in self.stages)

    @property
    def prices(self) -> bool:
        """True when the stack must re-price wire messages (quantization)."""
        return self.quantize is not None

    def describe(self) -> str:
        """Human-readable stage chain, e.g. ``momentum(0.9) -> quantize(8)``."""
        return " -> ".join(stage.describe() for stage in self.stages)

    # ------------------------------------------------------------------
    # residual binding
    # ------------------------------------------------------------------
    def bind_residuals(self, residuals: "ResidualManager") -> None:
        """Let every declarative stage configure the residual manager."""
        for stage in self.stages:
            stage.bind_residuals(residuals)

    # ------------------------------------------------------------------
    # the (payload, error) contract
    # ------------------------------------------------------------------
    def compress_sparse(self, worker: int, sparse: SparseGradient
                        ) -> Tuple[SparseGradient, SparseGradient]:
        """Fold a sparse payload through the wire-transforming stages.

        Returns ``(payload, error)`` with
        ``payload.values + error.values == sparse.values`` exactly; the
        error is an empty sparse gradient when no stage transforms the wire.
        """
        error: Optional[SparseGradient] = None
        for stage in self.stages:
            sparse, stage_error = stage.compress_sparse(worker, sparse)
            if stage_error is not None and stage_error.nnz:
                error = (stage_error if error is None
                         else SparseGradient.merge_many([error, stage_error]))
        if error is None:
            error = SparseGradient.empty(sparse.length)
        return sparse, error

    def compress_dense(self, worker: int, dense: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense variant of :meth:`compress_sparse`; the error is a zero
        array when no stage transforms the wire."""
        dense = np.asarray(dense, dtype=np.float64)
        error: Optional[np.ndarray] = None
        for stage in self.stages:
            dense, stage_error = stage.compress_dense(worker, dense)
            if stage_error is not None:
                error = stage_error if error is None else error + stage_error
        if error is None:
            error = np.zeros_like(dense)
        return dense, error

    # ------------------------------------------------------------------
    # wire pricing (delegates to the quantize stage; full precision else)
    # ------------------------------------------------------------------
    def sparse_cost(self, nnz: int) -> float:
        """Billed size of one sparse message of ``nnz`` entries."""
        compressor = self.quantize
        if compressor is not None:
            return compressor.sparse_cost(nnz)
        return 2.0 * max(0, int(nnz))

    def dense_cost(self, num_values: float) -> float:
        """Billed size of ``num_values`` dense values."""
        compressor = self.quantize
        if compressor is not None:
            return compressor.dense_cost(num_values)
        return float(num_values)

    def price(self, payload: Any) -> float:
        """Billed wire size of ``payload`` under the stack's accounting."""
        compressor = self.quantize
        if compressor is None:
            raise RuntimeError(
                "a stack without a quantize stage does not price payloads; "
                "check `stack.prices` before installing the pricer")
        return compressor.price(payload)

    def price_message(self, message) -> float:
        """Pricer hook for the simulated cluster (quantize stage required)."""
        compressor = self.quantize
        if compressor is None:
            raise RuntimeError(
                "a stack without a quantize stage does not price messages; "
                "check `stack.prices` before installing the pricer")
        return compressor.price_message(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompressorStack({self.describe()})"
