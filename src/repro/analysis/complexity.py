"""Closed-form communication complexity of every method (Table I).

The paper summarises each sparse All-Reduce method in the alpha-beta cost
model as a latency term (number of rounds multiplied by ``alpha``) and a
bandwidth term (elements received by a worker multiplied by ``beta``).  This
module reproduces those formulas so the simulator's measured rounds and
volumes can be cross-checked against the theory, and so the Table I benchmark
can print the analytical and measured numbers side by side.

All functions take the same parameters as the table:

* ``P`` — number of workers,
* ``n`` — number of dense gradients,
* ``k`` — number of sparse gradients selected per worker (``k << n``),
* ``d`` — number of teams (SparDL with Spar-All-Gather only).

Bandwidth values are in *elements* (the ``k beta`` convention of the paper,
where a COO entry costs two elements is already folded into the constants of
each formula, exactly as printed in Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "ComplexityBound",
    "topk_a_complexity",
    "topk_dsa_complexity",
    "gtopk_complexity",
    "ok_topk_complexity",
    "spardl_complexity",
    "spardl_rsag_complexity",
    "spardl_bsag_complexity",
    "dense_allreduce_complexity",
    "quantized_bandwidth",
    "quantized_complexity",
    "table1",
    "predicted_time",
]

#: Number of bits of one uncompressed element (index or value) in the paper's
#: COO accounting.
_ELEMENT_BITS = 32


@dataclass(frozen=True)
class ComplexityBound:
    """Latency rounds and bandwidth bounds of one method.

    ``bandwidth_low`` and ``bandwidth_high`` coincide for methods whose cost
    is a single expression rather than a range.
    """

    method: str
    latency_rounds: float
    bandwidth_low: float
    bandwidth_high: float

    @property
    def has_range(self) -> bool:
        return not math.isclose(self.bandwidth_low, self.bandwidth_high)

    def time(self, alpha: float, beta: float, *, upper: bool = True) -> float:
        """Predicted time under an alpha-beta network."""
        bandwidth = self.bandwidth_high if upper else self.bandwidth_low
        return alpha * self.latency_rounds + beta * bandwidth

    def describe(self) -> str:
        if self.has_range:
            return (f"{self.method}: {self.latency_rounds:.1f} alpha + "
                    f"[{self.bandwidth_low:.1f}, {self.bandwidth_high:.1f}] beta")
        return f"{self.method}: {self.latency_rounds:.1f} alpha + {self.bandwidth_low:.1f} beta"


def _check(P: int, n: int, k: int) -> None:
    if P <= 0:
        raise ValueError("P must be positive")
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < k <= n:
        raise ValueError("k must be in (0, n]")


# ---------------------------------------------------------------------------
# Table I rows
# ---------------------------------------------------------------------------
def topk_a_complexity(P: int, n: int, k: int) -> ComplexityBound:
    """TopkA: ``log2 P`` rounds, ``2 (P-1) k`` elements."""
    _check(P, n, k)
    latency = math.ceil(math.log2(P)) if P > 1 else 0
    bandwidth = 2.0 * (P - 1) * k
    return ComplexityBound("TopkA", latency, bandwidth, bandwidth)


def topk_dsa_complexity(P: int, n: int, k: int) -> ComplexityBound:
    """TopkDSA: ``(P + 2 log2 P)`` rounds, ``[4k(P-1)/P, (2k + n)(P-1)/P]``."""
    _check(P, n, k)
    log_p = math.ceil(math.log2(P)) if P > 1 else 0
    latency = P + 2 * log_p
    low = 4.0 * k * (P - 1) / P
    high = (2.0 * k + n) * (P - 1) / P
    return ComplexityBound("TopkDSA", latency, low, max(low, high))


def gtopk_complexity(P: int, n: int, k: int) -> ComplexityBound:
    """gTopk: ``2 log2 P`` rounds, ``4 log2 P k`` elements."""
    _check(P, n, k)
    log_p = math.ceil(math.log2(P)) if P > 1 else 0
    latency = 2 * log_p
    bandwidth = 4.0 * log_p * k
    return ComplexityBound("gTopk", latency, bandwidth, bandwidth)


def ok_topk_complexity(P: int, n: int, k: int) -> ComplexityBound:
    """Ok-Topk: ``2 (P + log2 P)`` rounds, ``[2k(P-1)/P, 6k(P-1)/P]``."""
    _check(P, n, k)
    log_p = math.ceil(math.log2(P)) if P > 1 else 0
    latency = 2 * (P + log_p)
    low = 2.0 * k * (P - 1) / P
    high = 6.0 * k * (P - 1) / P
    return ComplexityBound("Ok-Topk", latency, low, high)


def spardl_complexity(P: int, n: int, k: int) -> ComplexityBound:
    """SparDL without SAG (``d = 1``): ``2 ceil(log2 P)`` rounds,
    ``4 k (P-1)/P`` elements (Equation 4)."""
    _check(P, n, k)
    latency = 2 * (math.ceil(math.log2(P)) if P > 1 else 0)
    bandwidth = 4.0 * k * (P - 1) / P
    return ComplexityBound("SparDL", latency, bandwidth, bandwidth)


def spardl_rsag_complexity(P: int, n: int, k: int, d: int) -> ComplexityBound:
    """SparDL with R-SAG (Equation 7): ``2 ceil(log2 (P/d)) + log2 d`` rounds
    and ``2k((2P - 2d)/P + (d/P) log2 d)`` elements.  ``d`` must be a power of
    two dividing ``P``."""
    _check(P, n, k)
    if d <= 0 or P % d != 0:
        raise ValueError("d must divide P")
    if d & (d - 1):
        raise ValueError("R-SAG requires a power-of-two d")
    team = P // d
    latency = 2 * (math.ceil(math.log2(team)) if team > 1 else 0)
    latency += int(math.log2(d)) if d > 1 else 0
    bandwidth = 2.0 * k * ((2 * P - 2 * d) / P + (d / P) * (math.log2(d) if d > 1 else 0))
    return ComplexityBound(f"SparDL(R-SAG,d={d})", latency, bandwidth, bandwidth)


def spardl_bsag_complexity(P: int, n: int, k: int, d: int) -> ComplexityBound:
    """SparDL with B-SAG (Equation 10): ``2 ceil(log2 (P/d)) + ceil(log2 d)``
    rounds and bandwidth in ``[2k (d^2 + P - 2d)/(P d), 2k (d^2 + 2P - 3d)/P]``."""
    _check(P, n, k)
    if d <= 0 or P % d != 0:
        raise ValueError("d must divide P")
    team = P // d
    latency = 2 * (math.ceil(math.log2(team)) if team > 1 else 0)
    latency += math.ceil(math.log2(d)) if d > 1 else 0
    low = 2.0 * k * (d * d + P - 2 * d) / (P * d)
    high = 2.0 * k * (d * d + 2 * P - 3 * d) / P
    return ComplexityBound(f"SparDL(B-SAG,d={d})", latency, low, max(low, high))


def dense_allreduce_complexity(P: int, n: int) -> ComplexityBound:
    """Bandwidth-optimal dense All-Reduce: ``2 (P-1)`` ring rounds (or
    ``2 log2 P`` for Rabenseifner) and ``2 n (P-1)/P`` elements."""
    if P <= 0 or n <= 0:
        raise ValueError("P and n must be positive")
    if P > 1 and (P & (P - 1)) == 0:
        latency = 2 * int(math.log2(P))
    else:
        latency = 2 * (P - 1)
    bandwidth = 2.0 * n * (P - 1) / P
    return ComplexityBound("Dense", latency, bandwidth, bandwidth)


# ---------------------------------------------------------------------------
# quantized values (Section VI extension)
# ---------------------------------------------------------------------------
def quantized_bandwidth(bandwidth_elements: float, num_bits: int) -> float:
    """Bandwidth of a sparse transfer after quantizing its values.

    ``bandwidth_elements`` follows the paper's COO accounting (two elements
    per non-zero: one index, one value); quantizing the values to
    ``num_bits`` bits turns this into ``(1 + num_bits/32) / 2`` of the
    original volume.
    """
    if not 1 <= num_bits <= 32:
        raise ValueError("num_bits must be between 1 and 32")
    return bandwidth_elements * (1.0 + num_bits / _ELEMENT_BITS) / 2.0


def quantized_complexity(bound: ComplexityBound, num_bits: int) -> ComplexityBound:
    """A Table I row with its bandwidth term adjusted for quantized values.

    Latency is unchanged (the number of rounds does not depend on message
    encoding); both bandwidth bounds are scaled by the quantization factor.
    """
    return ComplexityBound(
        method=f"{bound.method}+{num_bits}bit",
        latency_rounds=bound.latency_rounds,
        bandwidth_low=quantized_bandwidth(bound.bandwidth_low, num_bits),
        bandwidth_high=quantized_bandwidth(bound.bandwidth_high, num_bits),
    )


# ---------------------------------------------------------------------------
# convenience
# ---------------------------------------------------------------------------
def table1(P: int, n: int, k: int, d: Optional[int] = None,
           num_bits: Optional[int] = None) -> Dict[str, ComplexityBound]:
    """All rows of Table I for the given parameters.

    When ``d`` is given (and valid) the SparDL (R-SAG) and/or (B-SAG) rows are
    included as well.  When ``num_bits`` is given, every sparse row is
    additionally rendered with its :func:`quantized_complexity` counterpart
    (keyed ``"<method>+<bits>bit"``), so the table can be printed with and
    without value quantization side by side.
    """
    rows = {
        "TopkA": topk_a_complexity(P, n, k),
        "TopkDSA": topk_dsa_complexity(P, n, k),
        "gTopk": gtopk_complexity(P, n, k),
        "Ok-Topk": ok_topk_complexity(P, n, k),
        "SparDL": spardl_complexity(P, n, k),
    }
    if d is not None and d > 1 and P % d == 0:
        if (d & (d - 1)) == 0:
            rows[f"SparDL(R-SAG,d={d})"] = spardl_rsag_complexity(P, n, k, d)
        rows[f"SparDL(B-SAG,d={d})"] = spardl_bsag_complexity(P, n, k, d)
    if num_bits is not None:
        for bound in list(rows.values()):
            combined = quantized_complexity(bound, num_bits)
            rows[combined.method] = combined
    return rows


def predicted_time(bound: ComplexityBound, alpha: float, beta: float) -> Tuple[float, float]:
    """Lower and upper predicted times for a bound under ``alpha``/``beta``."""
    return bound.time(alpha, beta, upper=False), bound.time(alpha, beta, upper=True)
