"""Plain-text reporting helpers used by the benchmarks and EXPERIMENTS.md.

Every benchmark regenerates a table or figure of the paper; these helpers
format the measured rows/series consistently so the benchmark output can be
pasted into EXPERIMENTS.md or compared against the paper by eye.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "format_table",
    "format_series",
    "speedup_table",
    "session_table",
    "Series",
    "ExperimentReport",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.4g}") -> str:
    """Render an ASCII table with aligned columns.

    Floats are formatted with ``float_format``; everything else with ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


@dataclass
class Series:
    """A named (x, y) series, e.g. accuracy over training time."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def final(self) -> Tuple[float, float]:
        if not self.x:
            raise ValueError(f"series {self.name!r} is empty")
        return self.x[-1], self.y[-1]

    def __len__(self) -> int:
        return len(self.x)


def format_series(series: Iterable[Series], x_label: str = "x", y_label: str = "y",
                  max_points: int = 12, title: Optional[str] = None) -> str:
    """Render several series as a compact table sampling at most
    ``max_points`` evenly spaced points per series."""
    blocks = []
    if title:
        blocks.append(title)
    for s in series:
        n = len(s)
        if n == 0:
            blocks.append(f"{s.name}: (empty)")
            continue
        if n <= max_points:
            picks = range(n)
        else:
            picks = [round(i * (n - 1) / (max_points - 1)) for i in range(max_points)]
        rows = [(f"{s.x[i]:.4g}", f"{s.y[i]:.4g}") for i in picks]
        blocks.append(format_table([x_label, y_label], rows, title=s.name))
    return "\n\n".join(blocks)


def session_table(sessions: Mapping[str, object],
                  title: Optional[str] = None) -> str:
    """Cross-step summary table of labelled sync sessions.

    ``sessions`` maps display labels to
    :class:`~repro.core.pipeline.SyncSession` objects (or anything with a
    compatible ``summary()``); the table shows the step count, cumulative
    rounds/volume and the first/last schedule-resolved ``k`` — the
    quantities the k-schedule and bucketing examples report.
    """
    headers = ["session", "steps", "rounds", "total volume", "k first", "k last"]
    rows = []
    for label, session in sessions.items():
        summary = session.summary()
        rows.append((
            label,
            summary["steps"],
            summary["rounds"],
            float(summary["total_volume"]),
            "-" if summary["k_first"] is None else summary["k_first"],
            "-" if summary["k_last"] is None else summary["k_last"],
        ))
    return format_table(headers, rows, title=title)


def speedup_table(times: Mapping[str, float], reference: str,
                  title: Optional[str] = None) -> str:
    """Table of per-method times and speedups relative to ``reference``
    (speedup > 1 means faster than the reference)."""
    if reference not in times:
        raise ValueError(f"reference method {reference!r} not in the measured times")
    ref_time = times[reference]
    rows = []
    for name, value in times.items():
        speedup = ref_time / value if value > 0 else float("inf")
        rows.append((name, value, speedup))
    rows.sort(key=lambda row: row[1])
    return format_table(["method", "time", f"speedup vs {reference}"], rows, title=title)


@dataclass
class ExperimentReport:
    """A labelled collection of tables and series for one experiment."""

    experiment: str
    description: str = ""
    sections: List[str] = field(default_factory=list)

    def add_table(self, headers: Sequence[str], rows: Sequence[Sequence[object]],
                  title: Optional[str] = None) -> None:
        self.sections.append(format_table(headers, rows, title=title))

    def add_series(self, series: Iterable[Series], x_label: str = "x", y_label: str = "y",
                   title: Optional[str] = None) -> None:
        self.sections.append(format_series(series, x_label=x_label, y_label=y_label,
                                           title=title))

    def add_text(self, text: str) -> None:
        self.sections.append(text)

    def render(self) -> str:
        header = f"== {self.experiment} =="
        if self.description:
            header += f"\n{self.description}"
        return "\n\n".join([header, *self.sections])

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())
