"""Analytical complexity (Table I) and report formatting."""

from .complexity import (
    ComplexityBound,
    dense_allreduce_complexity,
    gtopk_complexity,
    ok_topk_complexity,
    predicted_time,
    quantized_bandwidth,
    quantized_complexity,
    spardl_bsag_complexity,
    spardl_complexity,
    spardl_rsag_complexity,
    table1,
    topk_a_complexity,
    topk_dsa_complexity,
)
from .reporting import (
    ExperimentReport,
    Series,
    format_series,
    format_table,
    session_table,
    speedup_table,
)

__all__ = [
    "ComplexityBound",
    "dense_allreduce_complexity",
    "gtopk_complexity",
    "ok_topk_complexity",
    "predicted_time",
    "quantized_bandwidth",
    "quantized_complexity",
    "spardl_bsag_complexity",
    "spardl_complexity",
    "spardl_rsag_complexity",
    "table1",
    "topk_a_complexity",
    "topk_dsa_complexity",
    "ExperimentReport",
    "Series",
    "format_series",
    "format_table",
    "session_table",
    "speedup_table",
]
