"""Labeled counters, gauges and histograms for the observability layer.

The registry is deliberately small: three instrument kinds, each keyed by
``(name, labels)`` so one logical metric fans out into labeled series
(``messages_total{tag=srs}`` vs ``messages_total{tag=bruck}``), a flat
``snapshot()`` dict for benchmark reports, and a text ``summary_table()``
for humans.  Everything is guarded by one lock, so instruments can be
bumped from stage hooks, transports and (after merging) worker streams
without coordination.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        self.value += amount

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Streaming summary statistics of an observed distribution."""

    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot_value(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe registry of labeled instrument series.

    >>> registry = MetricsRegistry()
    >>> registry.counter("messages_total", tag="srs").inc(3)
    >>> registry.counter("messages_total", tag="bruck").inc()
    >>> registry.gauge("resolved_k").set(10)
    >>> registry.histogram("wire_size").observe(40.0)
    >>> snap = registry.snapshot()
    >>> snap["messages_total{tag=srs}"], snap["resolved_k"]
    (3.0, 10.0)
    >>> snap["wire_size"]["count"]
    1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, Any]) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {registered}, "
                    f"cannot reuse it as a {kind}")
            instrument = self._series.get(key)
            if instrument is None:
                instrument = _KINDS[kind]()
                self._series[key] = instrument
                self._kinds[name] = kind
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    # ------------------------------------------------------------------
    def series(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """Every labeled series registered under ``name``."""
        with self._lock:
            return [(dict(key), instrument)
                    for (series, key), instrument in sorted(self._series.items())
                    if series == name]

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{"name{label=value}": value}`` dict of every series.

        Counter and gauge series snapshot to floats; histograms to a
        ``{count, sum, min, max, mean}`` dict.  The result is
        JSON-serialisable and deterministic (series sorted by name).
        """
        with self._lock:
            return {_series_name(name, key): instrument.snapshot_value()
                    for (name, key), instrument in sorted(self._series.items())}

    def summary_table(self) -> str:
        """Readable fixed-width table of the snapshot, one series per line."""
        lines = ["metric                                             value"]
        lines.append("-" * 60)
        for series, value in self.snapshot().items():
            if isinstance(value, dict):
                rendered = (f"count={value['count']} mean={value['mean']:.6g} "
                            f"max={value['max']:.6g}")
            else:
                rendered = f"{value:.6g}"
            lines.append(f"{series:<50} {rendered}")
        return "\n".join(lines)

    def merge_counts(self, counts: Iterable[Tuple[str, Dict[str, str], float]]) -> None:
        """Fold ``(name, labels, amount)`` counter increments into the
        registry (used when worker-side tallies are drained into the
        driver's registry)."""
        for name, labels, amount in counts:
            self.counter(name, **labels).inc(amount)
