"""Wiring helpers between the tracer and the existing subsystems.

The synchronisers, transports and sessions never import ``repro.obs`` —
they duck-type against whatever ``tracer`` object is attached to them, so
the observability layer stays optional and acyclic.  This module holds
the attach-side glue: installing one tracer across a synchroniser (and
the inner per-bucket sessions of a :class:`BucketedSynchronizer`) plus
its transport, and replaying the simulated
:class:`~repro.training.timing.IterationTiming` into synthetic spans on
the :data:`~repro.obs.trace.SIM_PID` track, so modelled time renders
next to measured wall-clock time in the same Chrome trace.
"""

from __future__ import annotations

from typing import Any, Optional

from .trace import SIM_PID, Tracer

__all__ = ["attach_tracer", "replay_iteration_timing"]

#: Simulated-track thread ids: backward compute vs the shared comm channel.
_SIM_TID_COMPUTE = 0
_SIM_TID_COMM = 1


def attach_tracer(synchronizer: Any, tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Attach ``tracer`` to a synchroniser, its inner per-bucket sessions
    (for :class:`~repro.core.bucketed.BucketedSynchronizer`), and its
    cluster transport.  Passing ``None`` detaches.  Returns the tracer."""
    synchronizer.tracer = tracer
    for index, session in enumerate(getattr(synchronizer, "sessions", []) or []):
        session.tracer = tracer
        session.trace_label = f"b{index}"
    cluster = getattr(synchronizer, "cluster", None)
    if cluster is not None:
        cluster.install_tracer(tracer)
    return tracer


def replay_iteration_timing(tracer: Tracer, timing: Any, iteration: int) -> None:
    """Replay one :class:`~repro.training.timing.IterationTiming` as
    synthetic spans on the simulated-time track (cat ``overlap``).

    Simulated seconds map to trace microseconds one-to-one (1 s → 1 s of
    trace time), appended at ``tracer.sim_cursor_us`` so consecutive
    iterations lay out back to back.  Overlapped timings decompose each
    bucket's exchange into its hidden and exposed slices via
    :meth:`~repro.training.timing.OverlapTimeline.spans`; flat timings
    render as one compute span followed by one (fully exposed) comm span.
    """
    if tracer is None or not tracer.enabled:
        return
    base = tracer.sim_cursor_us
    tracer.set_track_name(SIM_PID, "simulated timeline (overlap model)")
    tracer.instant(f"iteration {iteration}", "overlap", ts_us=base, pid=SIM_PID,
                   args={"iteration": iteration, "total_s": timing.total})
    timeline = timing.timeline
    if timeline is None:
        compute_us = timing.compute_time * 1e6
        comm_us = timing.communication_time * 1e6
        tracer.complete("compute", "overlap", base, compute_us,
                        pid=SIM_PID, tid=_SIM_TID_COMPUTE,
                        args={"iteration": iteration, "kind": "backward"})
        tracer.complete("comm (exposed)", "overlap", base + compute_us, comm_us,
                        pid=SIM_PID, tid=_SIM_TID_COMM,
                        args={"iteration": iteration, "kind": "exposed"})
    else:
        # Forward + optimiser time precedes the overlapped backward pipeline.
        lead_us = max(0.0, timing.compute_time - timeline.backward_total) * 1e6
        if lead_us > 0:
            tracer.complete("forward+optimizer", "overlap", base, lead_us,
                            pid=SIM_PID, tid=_SIM_TID_COMPUTE,
                            args={"iteration": iteration, "kind": "non_overlap"})
        for span in timeline.spans():
            tid = _SIM_TID_COMPUTE if span["track"] == "backward" else _SIM_TID_COMM
            suffix = "" if span["kind"] == "backward" else f" ({span['kind']})"
            tracer.complete(f"{span['name']}{suffix}", "overlap",
                            base + lead_us + span["start_s"] * 1e6,
                            span["dur_s"] * 1e6, pid=SIM_PID, tid=tid,
                            args={"iteration": iteration, "kind": span["kind"]})
    tracer.sim_cursor_us = base + timing.total * 1e6
    tracer.metrics.histogram("sim_iteration_s").observe(timing.total)
    tracer.metrics.counter("sim_hidden_comm_s").inc(timing.hidden_comm_time)
    tracer.metrics.counter("sim_exposed_comm_s").inc(
        max(0.0, timing.communication_time - timing.hidden_comm_time))
