"""Observability: structured tracing, metrics, Chrome trace export.

See :mod:`repro.obs.trace` for the event model, :mod:`repro.obs.metrics`
for the instrument registry, and ``docs/observability.md`` for the user
guide.  The subsystem is strictly opt-in: with ``trace=off`` (the
default) no tracer is constructed and every synchronisation method runs
the exact pre-observability code path.
"""

from .instrument import attach_tracer, replay_iteration_timing
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (DRIVER_PID, SIM_PID, TraceEvent, TraceLevel, Tracer,
                    validate_chrome_trace, worker_pid)

__all__ = [
    "DRIVER_PID",
    "SIM_PID",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "TraceLevel",
    "Tracer",
    "attach_tracer",
    "replay_iteration_timing",
    "validate_chrome_trace",
    "worker_pid",
]
