"""Structured trace events with Chrome trace-event JSON export.

One :class:`Tracer` collects every event of a run — nested wall-clock
spans from the trainer and the staged pipeline, per-message instants from
transport admission, retry/membership markers from the fault layer,
synthetic spans replaying the simulated overlap timeline, and (on the
multiprocess backend) per-rank streams recorded inside the workers and
merged at ``close()``.  The export target is the Chrome trace-event JSON
format (``{"traceEvents": [...]}`` with ``ph="X"`` complete spans and
``ph="i"`` instants, microsecond timestamps), loadable directly in
``chrome://tracing`` or Perfetto.

Tracks are identified by ``pid``: :data:`DRIVER_PID` carries the driver's
wall-clock spans, :data:`SIM_PID` the replayed *simulated* timeline (so
measured and modelled time render side by side), and
:func:`worker_pid` the per-rank streams of the multiprocess backend.

The tracer also owns a :class:`~repro.obs.metrics.MetricsRegistry`
(``tracer.metrics``) so counters and histograms accumulate alongside the
timeline and export through one ``snapshot()``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from .metrics import MetricsRegistry

__all__ = [
    "DRIVER_PID",
    "SIM_PID",
    "TraceEvent",
    "TraceLevel",
    "Tracer",
    "validate_chrome_trace",
    "worker_pid",
]

#: Track of the driver process' wall-clock spans.
DRIVER_PID = 0
#: Track of the replayed *simulated* timeline (overlap model seconds).
SIM_PID = 1
#: Worker tracks start here: rank ``r`` renders as pid ``1000 + r``.
_WORKER_PID_BASE = 1000


def worker_pid(rank: int) -> int:
    """The trace track (Chrome pid) of multiprocess worker ``rank``."""
    return _WORKER_PID_BASE + int(rank)


class TraceLevel(IntEnum):
    """How much a :class:`Tracer` records.

    ``OFF``
        Nothing; callers must not even construct a tracer on hot paths.
    ``STEPS``
        Iteration/epoch spans, per-stage spans, membership markers and
        the replayed overlap timeline.
    ``COMM``
        Everything in ``STEPS`` plus a per-message instant for every
        transport admission and per-attempt fault markers — the full
        communication picture, at a per-message recording cost.
    """

    OFF = 0
    STEPS = 1
    COMM = 2

    @classmethod
    def coerce(cls, value: Union["TraceLevel", str]) -> "TraceLevel":
        """Parse a level from its spec spelling (``off|steps|comm``)."""
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower()
        try:
            return cls[text.upper()]
        except KeyError:
            names = "|".join(level.name.lower() for level in cls)
            raise ValueError(
                f"unknown trace level {value!r}; expected one of {names}") from None


@dataclass
class TraceEvent:
    """One trace event in (nearly) Chrome trace-event shape.

    ``ph`` is the Chrome phase: ``"X"`` for a complete span with a
    duration, ``"i"`` for an instant marker.  Timestamps and durations
    are microseconds on the tracer's clock.
    """

    name: str
    cat: str
    ph: str
    ts: float
    pid: int = DRIVER_PID
    tid: int = 0
    dur: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": round(self.ts, 3), "pid": self.pid, "tid": self.tid,
        }
        if self.ph == "X":
            event["dur"] = round(self.dur, 3)
        else:
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """Thread-safe collector of spans, instants and metrics.

    >>> tracer = Tracer("steps")
    >>> with tracer.span("epoch0", "iteration"):
    ...     with tracer.span("step", "iteration"):
    ...         tracer.instant("marker", "retry", args={"kind": "drop"})
    >>> [event.name for event in tracer.events]
    ['marker', 'step', 'epoch0']
    >>> tracer.events[1].ts >= tracer.events[2].ts
    True
    """

    def __init__(self, level: Union[TraceLevel, str] = TraceLevel.STEPS) -> None:
        self.level = TraceLevel.coerce(level)
        #: Metrics accumulated alongside the timeline.
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []
        self._epoch = time.perf_counter()
        self._track_names: Dict[int, str] = {DRIVER_PID: "driver (wall clock)"}
        self._collectors: List[Callable[[], None]] = []
        self._closed = False
        #: Cursor (µs) of the replayed simulated timeline on :data:`SIM_PID`.
        self.sim_cursor_us = 0.0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.level > TraceLevel.OFF

    @property
    def wants_comm(self) -> bool:
        """True when per-message / per-attempt events should be recorded."""
        return self.level >= TraceLevel.COMM

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def now_us(self) -> float:
        """Microseconds since this tracer was constructed."""
        return (time.perf_counter() - self._epoch) * 1e6

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _emit(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def complete(self, name: str, cat: str, ts_us: float, dur_us: float, *,
                 pid: int = DRIVER_PID, tid: int = 0,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a complete span with explicit start and duration."""
        self._emit(TraceEvent(name=name, cat=cat, ph="X", ts=ts_us,
                              dur=max(0.0, dur_us), pid=pid, tid=tid,
                              args=dict(args or {})))

    def instant(self, name: str, cat: str, *, ts_us: Optional[float] = None,
                pid: int = DRIVER_PID, tid: int = 0,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record an instant marker (``ph="i"``)."""
        self._emit(TraceEvent(name=name, cat=cat, ph="i",
                              ts=self.now_us() if ts_us is None else ts_us,
                              pid=pid, tid=tid, args=dict(args or {})))

    @contextmanager
    def span(self, name: str, cat: str, *, pid: int = DRIVER_PID, tid: int = 0,
             args: Optional[Dict[str, Any]] = None) -> Iterator[None]:
        """Context manager recording a wall-clock span around its body."""
        start = self.now_us()
        try:
            yield
        finally:
            self.complete(name, cat, start, self.now_us() - start,
                          pid=pid, tid=tid, args=args)

    # ------------------------------------------------------------------
    # the seam-specific recorders (duck-typed by the wired-in layers)
    # ------------------------------------------------------------------
    def record_message(self, src: int, dst: int, size: float, tag: str) -> None:
        """One admitted transport message: counters always, a per-message
        instant only at the ``comm`` level (cat ``message``)."""
        self.metrics.counter("messages_total", tag=tag).inc()
        self.metrics.counter("wire_volume", tag=tag).inc(float(size))
        if self.wants_comm:
            self.instant(f"{tag} {src}->{dst}", "message",
                         args={"src": src, "dst": dst, "size": float(size),
                               "tag": tag})

    def record_fault(self, kind: str, **details: Any) -> None:
        """A delivery fault or retry decision (cat ``retry``).  Counted
        always; the instant marker is comm-level like the messages it
        annotates."""
        self.metrics.counter("fault_events_total", kind=kind).inc()
        if self.wants_comm:
            self.instant(kind, "retry", args=details)

    def record_membership(self, kind: str, **details: Any) -> None:
        """An applied elastic-membership event (cat ``membership``)."""
        self.metrics.counter("membership_events_total", kind=kind).inc()
        self.instant(kind, "membership", args=details)

    # ------------------------------------------------------------------
    # multi-stream merging (mp backend)
    # ------------------------------------------------------------------
    def set_track_name(self, pid: int, name: str) -> None:
        with self._lock:
            self._track_names[pid] = name

    def merge_stream(self, pid: int, events: Sequence[Dict[str, Any]],
                     name: Optional[str] = None) -> int:
        """Merge a foreign event stream (already shifted onto this tracer's
        microsecond clock) under track ``pid``.  Each event dict carries
        ``name``/``cat``/``ph``/``ts`` and optionally ``dur``/``tid``/``args``.
        Returns the number of events merged."""
        if name is not None:
            self.set_track_name(pid, name)
        merged = [TraceEvent(name=str(ev["name"]), cat=str(ev.get("cat", "worker")),
                             ph=str(ev.get("ph", "X")), ts=float(ev["ts"]),
                             dur=float(ev.get("dur", 0.0)), pid=pid,
                             tid=int(ev.get("tid", 0)),
                             args=dict(ev.get("args") or {}))
                  for ev in events]
        with self._lock:
            self._events.extend(merged)
        return len(merged)

    # ------------------------------------------------------------------
    # collection & export
    # ------------------------------------------------------------------
    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback that pulls pending remote streams into the
        tracer (the mp backend registers its per-rank drain here).  Runs on
        every export and once at :meth:`close`."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (idempotent by contract)."""
        for collector in list(self._collectors):
            collector()

    def close(self) -> None:
        """Collect outstanding remote streams; further closes are no-ops."""
        if self._closed:
            return
        self.collect()
        self._closed = True

    def chrome_events(self) -> List[Dict[str, Any]]:
        """The Chrome ``traceEvents`` list: track-name metadata followed by
        every recorded event in timestamp order."""
        with self._lock:
            events = sorted(self._events, key=lambda ev: (ev.ts, -ev.dur))
            names = dict(self._track_names)
        meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                 "args": {"name": label}}
                for pid, label in sorted(names.items())]
        return meta + [event.to_chrome() for event in events]

    def export_chrome(self, path: Optional[Any] = None) -> Dict[str, Any]:
        """Export the trace as Chrome trace-event JSON.

        Collects pending remote streams first, then returns the document
        (and writes it to ``path`` when given) — open the file in
        ``chrome://tracing`` or https://ui.perfetto.dev to browse it.
        """
        self.collect()
        document = {"traceEvents": self.chrome_events(),
                    "displayTimeUnit": "ms"}
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
        return document

    def snapshot(self) -> Dict[str, Any]:
        """Flat metrics snapshot (see :meth:`MetricsRegistry.snapshot`)."""
        return self.metrics.snapshot()

    def summary(self) -> str:
        """Readable run summary: span totals by category/name + metrics."""
        totals: Dict[tuple, List[float]] = {}
        instants: Dict[tuple, int] = {}
        for event in self.events:
            key = (event.cat, event.name.split(" ")[0])
            if event.ph == "X":
                bucket = totals.setdefault(key, [0, 0.0])
                bucket[0] += 1
                bucket[1] += event.dur
            else:
                instants[key] = instants.get(key, 0) + 1
        lines = ["category        span                 count     total_ms"]
        lines.append("-" * 58)
        for (cat, name), (count, dur) in sorted(totals.items()):
            lines.append(f"{cat:<15} {name:<20} {count:>5} {dur / 1000.0:>12.3f}")
        for (cat, name), count in sorted(instants.items()):
            lines.append(f"{cat:<15} {name:<20} {count:>5} {'instant':>12}")
        return "\n".join(lines) + "\n\n" + self.metrics.summary_table()


# ---------------------------------------------------------------------------
# validation (used by the bench gate, CI smoke and tests)
# ---------------------------------------------------------------------------
def _iter_tracks(events: List[Dict[str, Any]]) -> Dict[tuple, List[Dict[str, Any]]]:
    tracks: Dict[tuple, List[Dict[str, Any]]] = {}
    for event in events:
        key = (event.get("pid", 0), event.get("tid", 0))
        tracks.setdefault(key, []).append(event)
    return tracks


def validate_chrome_trace(source: Any, *, eps_us: float = 0.5) -> Dict[str, Any]:
    """Validate a Chrome trace document and summarise it.

    ``source`` is a path, a JSON string, or the already-parsed document.
    Checks that the document parses, that every event carries the required
    fields with non-negative monotone timestamps, and that on every
    ``(pid, tid)`` track the complete (``"X"``) spans are **properly
    nested** — any two spans are either disjoint or one contains the other
    (within ``eps_us`` of timer tolerance).  Raises :class:`ValueError`
    on any violation; returns a summary dict with ``events``, ``spans``,
    ``instants``, ``categories`` and ``pids``.
    """
    if isinstance(source, dict):
        document = source
    elif isinstance(source, str) and source.lstrip().startswith("{"):
        document = json.loads(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace document has no traceEvents")

    spans = 0
    instants = 0
    categories = set()
    pids = set()
    payload = []
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            continue
        if "name" not in event or ph not in ("X", "i"):
            raise ValueError(f"malformed trace event: {event!r}")
        ts = float(event.get("ts", -1.0))
        if ts < 0:
            raise ValueError(f"negative timestamp in {event['name']!r}")
        if ph == "X":
            if float(event.get("dur", -1.0)) < 0:
                raise ValueError(f"span {event['name']!r} has no duration")
            spans += 1
        else:
            instants += 1
        categories.add(event.get("cat", ""))
        pids.add(event.get("pid", 0))
        payload.append(event)

    for (pid, tid), track in _iter_tracks(payload).items():
        track_spans = sorted(
            (ev for ev in track if ev["ph"] == "X"),
            key=lambda ev: (float(ev["ts"]), -float(ev["dur"])))
        stack: List[float] = []  # end timestamps of open ancestor spans
        last_ts = 0.0
        for event in track_spans:
            ts = float(event["ts"])
            end = ts + float(event["dur"])
            if ts + eps_us < last_ts:
                raise ValueError(
                    f"track ({pid},{tid}) spans are not time-ordered at "
                    f"{event['name']!r}")
            last_ts = ts
            while stack and ts >= stack[-1] - eps_us:
                stack.pop()
            if stack and end > stack[-1] + eps_us:
                raise ValueError(
                    f"span {event['name']!r} on track ({pid},{tid}) overlaps "
                    f"its parent without nesting ({end:.1f} > {stack[-1]:.1f})")
            stack.append(end)

    return {
        "events": spans + instants,
        "spans": spans,
        "instants": instants,
        "categories": sorted(categories),
        "pids": sorted(pids),
    }
