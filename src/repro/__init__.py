"""Reproduction of SparDL: Distributed Deep Learning Training with Efficient
Sparse Communication (ICDE 2024).

The package is organised as a set of substrates topped by the paper's
contribution:

* :mod:`repro.comm` — the :class:`~repro.comm.transport.Transport` protocol
  with its two execution backends (the deterministic in-process simulator
  and the real-OS-process backend), the alpha-beta cost model and the dense
  collective algorithms (Bruck / recursive doubling / ring / Rabenseifner).
* :mod:`repro.sparse` — COO sparse gradients, top-k selection and block
  layouts.
* :mod:`repro.core` — SparDL itself: Spar-Reduce-Scatter, Spar-All-Gather
  (R-SAG / B-SAG), global residual collection and the
  :class:`~repro.core.spardl.SparDLSynchronizer` framework.
* :mod:`repro.baselines` — TopkA, TopkDSA, gTopk, Ok-Topk and the dense
  All-Reduce baseline behind the same synchroniser interface.
* :mod:`repro.nn` / :mod:`repro.data` — a NumPy deep-learning substrate and
  synthetic datasets standing in for the paper's PyTorch models and
  real-world data.
* :mod:`repro.training` — the data-parallel S-SGD trainer over the simulated
  cluster, per-iteration simulated timing and the seven evaluation cases.
* :mod:`repro.analysis` — the closed-form complexity of Table I and report
  formatting helpers.
* :mod:`repro.obs` — the observability subsystem: structured trace spans
  and instant markers (:class:`~repro.obs.Tracer`), a labelled metrics
  registry, and Chrome trace-event export for every seam above.

Quickstart
----------
>>> import numpy as np
>>> from repro import SimulatedCluster, SparDLConfig, SparDLSynchronizer
>>> cluster = SimulatedCluster(num_workers=4)
>>> sync = SparDLSynchronizer(cluster, num_elements=1000,
...                           config=SparDLConfig(density=0.01))
>>> grads = {w: np.random.default_rng(w).normal(size=1000) for w in range(4)}
>>> result = sync.synchronize(grads)
>>> result.is_consistent
True
"""

from .comm import (
    ETHERNET,
    PERFECT,
    RDMA,
    CommStats,
    FaultPlan,
    HeterogeneousNetwork,
    MembershipEvent,
    MultiprocessCluster,
    NetworkProfile,
    SimulatedCluster,
    Transport,
    TransportCapabilities,
    UnsupportedTransportFeature,
    make_transport,
    transport_spec,
)
from .core import (
    AdaptiveSchedule,
    BucketedSynchronizer,
    ConstantSchedule,
    GradientSynchronizer,
    KSchedule,
    ResidualManager,
    ResidualPolicy,
    RetryPolicy,
    SAGMode,
    SparDLConfig,
    SparDLSynchronizer,
    SyncResult,
    SyncSession,
    SyncStage,
    WarmupSchedule,
)
from .obs import MetricsRegistry, TraceLevel, Tracer
from .sparse import BlockLayout, SparseGradient

__version__ = "1.4.0"

__all__ = [
    "__version__",
    "Transport",
    "TransportCapabilities",
    "UnsupportedTransportFeature",
    "SimulatedCluster",
    "MultiprocessCluster",
    "make_transport",
    "transport_spec",
    "CommStats",
    "FaultPlan",
    "MembershipEvent",
    "RetryPolicy",
    "NetworkProfile",
    "HeterogeneousNetwork",
    "ETHERNET",
    "RDMA",
    "PERFECT",
    "SparseGradient",
    "BlockLayout",
    "GradientSynchronizer",
    "SyncResult",
    "SyncSession",
    "SyncStage",
    "KSchedule",
    "ConstantSchedule",
    "WarmupSchedule",
    "AdaptiveSchedule",
    "BucketedSynchronizer",
    "ResidualManager",
    "ResidualPolicy",
    "SAGMode",
    "SparDLConfig",
    "SparDLSynchronizer",
    "Tracer",
    "TraceLevel",
    "MetricsRegistry",
]
