"""Baseline gradient synchronisation methods compared against SparDL."""

from .base import SparseBaseline, is_power_of_two, power_of_two_split
from .dense import DenseAllReduceSynchronizer
from .gtopk import GTopkSynchronizer
from .ok_topk import OkTopkSynchronizer
from .registry import SYNCHRONIZER_NAMES, available_methods, make_synchronizer
from .topk_a import TopkASynchronizer
from .topk_dsa import TopkDSASynchronizer

__all__ = [
    "SparseBaseline",
    "is_power_of_two",
    "power_of_two_split",
    "DenseAllReduceSynchronizer",
    "GTopkSynchronizer",
    "OkTopkSynchronizer",
    "TopkASynchronizer",
    "TopkDSASynchronizer",
    "SYNCHRONIZER_NAMES",
    "available_methods",
    "make_synchronizer",
]
