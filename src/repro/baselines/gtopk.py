"""gTopk: global top-k sparse All-Reduce with tree-structured exchanges.

gTopk [Shi et al., ICDCS'19] keeps exactly ``k`` global gradients by
re-selecting the top-k after every pairwise merge.  The exchange follows a
recursive-doubling pattern in which *both* partners send their current
selection to each other; because both sides then hold identical data and
apply the same deterministic selection, every cohort of ``2^(t+1)`` workers
stays perfectly consistent, which is what makes the method usable for
synchronous SGD.  The price is bandwidth: each of the ``log2 P`` rounds moves
a full ``k``-entry selection in each direction (the ``4 log2 P k`` term of
Table I counts the equivalent reduction-tree + broadcast-tree realisation).

As in the paper's evaluation, the method is only defined for power-of-two
worker counts (Fig. 12 evaluates gTopk at 8 workers only).
"""

from __future__ import annotations

from typing import Optional

from ..comm.transport import Message, Transport
from ..core.pipeline import StepContext
from ..core.residuals import ResidualPolicy
from ..core.schedules import KSchedule
from .base import SparseBaseline, is_power_of_two

__all__ = ["GTopkSynchronizer"]


class GTopkSynchronizer(SparseBaseline):
    """Global top-k All-Reduce (power-of-two worker counts only)."""

    name = "gTopk"

    def __init__(self, cluster: Transport, num_elements: int, *,
                 k: Optional[int] = None, density: Optional[float] = None,
                 schedule: Optional[KSchedule | str] = None,
                 num_bits: Optional[int] = None,
                 momentum: Optional[float] = None) -> None:
        if not is_power_of_two(cluster.num_workers):
            raise ValueError(
                "gTopk requires a power-of-two number of workers "
                f"(got {cluster.num_workers}); the paper evaluates it at 8 workers only"
            )
        super().__init__(cluster, num_elements, k=k, density=density,
                         schedule=schedule, residual_policy=ResidualPolicy.PARTIAL,
                         num_bits=num_bits, momentum=momentum)

    # ------------------------------------------------------------------
    def stage_select(self, context: StepContext) -> None:
        context.selected = self.local_select(context.gradients)

    def stage_exchange(self, context: StepContext) -> None:
        selected = context.wire
        P = self.num_workers
        current = dict(selected)

        step = 1
        level = 0
        while step < P:
            messages = []
            for rank in range(P):
                partner = rank ^ step
                messages.append(Message(src=rank, dst=partner, payload=current[rank],
                                        tag=f"gtopk-{step}"))
            inboxes = self.cluster.exchange(messages)
            # Every worker of a 2^(level+1) cohort ends up with the same merged
            # set and discards the same values, so each keeps the matching share.
            share = 1.0 / float(2 << level)
            for rank in range(P):
                inbox = inboxes.get(rank, [])
                if inbox:
                    current[rank] = self.merge_sum(
                        [current[rank]] + [message.payload for message in inbox]
                    )
                kept, dropped = current[rank].top_k(self.k)
                current[rank] = kept
                self.residuals.collect_procedure(rank, dropped, share=share)
            step <<= 1
            level += 1

        context.exchanged = current

    def stage_combine(self, context: StepContext) -> None:
        current = context.exchanged
        context.global_sparse = current
        context.reference = current[0]
        context.global_gradients = {rank: sparse.to_dense()
                                    for rank, sparse in current.items()}
        context.info = {"k": self.k, "final_nnz": context.reference.nnz}

    def stage_residual_update(self, context: StepContext) -> None:
        self.finalize_residuals(context.reference)
