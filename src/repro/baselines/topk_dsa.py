"""TopkDSA: direct-send Reduce-Scatter + dense-switching All-Gather.

TopkDSA [Renggli et al., SC'19] splits the sparse All-Reduce into a
Reduce-Scatter and an All-Gather:

* **Reduce-Scatter** — every worker partitions its local top-k selection by
  block owner and sends each partition *directly* to its owner, one peer per
  round (``P - 1`` rounds, the latency-heavy pattern the paper criticises).
  The owner merge-sums what it receives, so the SGA dilemma is confined to
  the owner's block.
* **All-Gather** — the reduced blocks are gathered with recursive doubling.
  No re-sparsification happens, so accumulated blocks keep growing; each
  block is transmitted in COO form until that becomes larger than the dense
  block, at which point the transfer switches to dense representation.  This
  is what produces the ``(P-1)/P (2k + n)`` upper bound of Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..comm.cluster import Message, SimulatedCluster
from ..core.base import SyncResult
from ..core.residuals import ResidualPolicy
from ..sparse.blocks import BlockLayout
from ..sparse.vector import SparseGradient
from .base import SparseBaseline, power_of_two_split

__all__ = ["TopkDSASynchronizer"]


class TopkDSASynchronizer(SparseBaseline):
    """Sparse Reduce-Scatter / All-Gather All-Reduce with dense switching."""

    name = "TopkDSA"

    def __init__(self, cluster: SimulatedCluster, num_elements: int, *,
                 k: Optional[int] = None, density: Optional[float] = None) -> None:
        super().__init__(cluster, num_elements, k=k, density=density,
                         residual_policy=ResidualPolicy.LOCAL)
        self.layout = BlockLayout(num_elements, cluster.num_workers)

    # ------------------------------------------------------------------
    def _synchronize(self, gradients: Dict[int, np.ndarray]) -> SyncResult:
        selected = self.local_select(gradients)
        P = self.num_workers
        if P == 1:
            only = selected[0]
            return SyncResult(global_gradients={0: only.to_dense()}, stats=None,
                              info={"k": self.k, "final_nnz": only.nnz})

        reduced = self._reduce_scatter_direct(selected)
        gathered = self._allgather_dense_switching(reduced)

        global_sparse = {rank: self.merge_sum([piece for _, piece in pieces])
                         for rank, pieces in gathered.items()}
        reference = global_sparse[0]
        self.finalize_residuals(reference)
        return SyncResult(
            global_gradients={rank: sparse.to_dense() for rank, sparse in global_sparse.items()},
            stats=None,
            info={"k": self.k, "final_nnz": reference.nnz},
        )

    # ------------------------------------------------------------------
    def _reduce_scatter_direct(self, selected: Dict[int, SparseGradient]) -> Dict[int, SparseGradient]:
        """Direct-send Reduce-Scatter of the sparse selections (one peer per
        round, ``P - 1`` rounds)."""
        P = self.num_workers
        reduced: Dict[int, SparseGradient] = {
            rank: self.layout.restrict(selected[rank], rank) for rank in range(P)
        }
        for shift in range(1, P):
            messages: List[Message] = []
            for rank in range(P):
                dst = (rank + shift) % P
                part = self.layout.restrict(selected[rank], dst)
                messages.append(Message(src=rank, dst=dst, payload=part,
                                        tag=f"dsa-rs-{shift}"))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    reduced[dst] = reduced[dst].add(message.payload)
        return reduced

    def _allgather_dense_switching(
        self, reduced: Dict[int, SparseGradient]
    ) -> Dict[int, List[Tuple[int, SparseGradient]]]:
        """Recursive-doubling All-Gather of the reduced blocks.

        Accumulated payloads keep every block tagged with its owner so the
        message size can switch from COO (two elements per non-zero) to the
        dense block size, whichever is smaller.
        """
        P = self.num_workers
        gathered: Dict[int, List[Tuple[int, SparseGradient]]] = {
            rank: [(rank, reduced[rank])] for rank in range(P)
        }
        p2, extra = power_of_two_split(P)

        if extra:
            messages = [
                Message(src=p2 + i, dst=i, payload=gathered[p2 + i],
                        size=self._payload_size(gathered[p2 + i]), tag="dsa-fold-in")
                for i in range(extra)
            ]
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].extend(message.payload)

        step = 1
        while step < p2:
            messages = []
            for rank in range(p2):
                partner = rank ^ step
                payload = list(gathered[rank])
                messages.append(Message(src=rank, dst=partner, payload=payload,
                                        size=self._payload_size(payload),
                                        tag=f"dsa-ag-{step}"))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].extend(message.payload)
            step <<= 1

        if extra:
            messages = [
                Message(src=i, dst=p2 + i, payload=list(gathered[i]),
                        size=self._payload_size(gathered[i]), tag="dsa-fold-out")
                for i in range(extra)
            ]
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst] = list(message.payload)
        return gathered

    def _payload_size(self, payload: List[Tuple[int, SparseGradient]]) -> float:
        """COO size per block, capped at the dense block size (TopkDSA's
        switch to dense transmission)."""
        total = 0.0
        for block, sparse in payload:
            dense_size = float(self.layout.block_size(block))
            total += min(2.0 * sparse.nnz, dense_size)
        return total
