"""TopkDSA: direct-send Reduce-Scatter + dense-switching All-Gather.

TopkDSA [Renggli et al., SC'19] splits the sparse All-Reduce into a
Reduce-Scatter and an All-Gather:

* **Reduce-Scatter** — every worker partitions its local top-k selection by
  block owner and sends each partition *directly* to its owner, one peer per
  round (``P - 1`` rounds, the latency-heavy pattern the paper criticises).
  The owner merge-sums what it receives, so the SGA dilemma is confined to
  the owner's block.
* **All-Gather** — the reduced blocks are gathered with recursive doubling.
  No re-sparsification happens, so accumulated blocks keep growing; each
  block is transmitted in COO form until that becomes larger than the dense
  block, at which point the transfer switches to dense representation.  This
  is what produces the ``(P-1)/P (2k + n)`` upper bound of Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..comm.transport import Message, Transport
from ..core.pipeline import StepContext
from ..core.residuals import ResidualPolicy
from ..core.schedules import KSchedule
from ..sparse.blocks import BlockLayout
from ..sparse.vector import SparseGradient
from .base import SparseBaseline, power_of_two_split

__all__ = ["TopkDSASynchronizer"]


class TopkDSASynchronizer(SparseBaseline):
    """Sparse Reduce-Scatter / All-Gather All-Reduce with dense switching."""

    name = "TopkDSA"

    def __init__(self, cluster: Transport, num_elements: int, *,
                 k: Optional[int] = None, density: Optional[float] = None,
                 schedule: Optional[KSchedule | str] = None,
                 num_bits: Optional[int] = None,
                 momentum: Optional[float] = None) -> None:
        super().__init__(cluster, num_elements, k=k, density=density,
                         schedule=schedule, residual_policy=ResidualPolicy.LOCAL,
                         num_bits=num_bits, momentum=momentum)
        self.layout = BlockLayout(num_elements, cluster.num_workers)

    # ------------------------------------------------------------------
    def stage_select(self, context: StepContext) -> None:
        context.selected = self.local_select(context.gradients)

    def stage_exchange(self, context: StepContext) -> None:
        selected = context.wire
        if self.num_workers == 1:
            context.exchanged = {0: [(0, selected[0])]}
            context.scratch["trivial"] = True
            return
        reduced = self._reduce_scatter_direct(selected)
        context.exchanged = self._allgather_dense_switching(reduced)

    def stage_combine(self, context: StepContext) -> None:
        global_sparse = {rank: self.merge_sum([piece for _, piece in pieces])
                         for rank, pieces in context.exchanged.items()}
        context.global_sparse = global_sparse
        context.reference = global_sparse[0]
        context.global_gradients = {rank: sparse.to_dense()
                                    for rank, sparse in global_sparse.items()}
        context.info = {"k": self.k, "final_nnz": context.reference.nnz}

    def stage_residual_update(self, context: StepContext) -> None:
        if context.scratch.get("trivial"):
            return
        self.finalize_residuals(context.reference)

    # ------------------------------------------------------------------
    def _reduce_scatter_direct(self, selected: Dict[int, SparseGradient]) -> Dict[int, SparseGradient]:
        """Direct-send Reduce-Scatter of the sparse selections (one peer per
        round, ``P - 1`` rounds)."""
        P = self.num_workers
        reduced: Dict[int, SparseGradient] = {
            rank: self.layout.restrict(selected[rank], rank) for rank in range(P)
        }
        for shift in range(1, P):
            messages: List[Message] = []
            for rank in range(P):
                dst = (rank + shift) % P
                part = self.layout.restrict(selected[rank], dst)
                messages.append(Message(src=rank, dst=dst, payload=part,
                                        tag=f"dsa-rs-{shift}"))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    reduced[dst] = reduced[dst].add(message.payload)
        return reduced

    def _allgather_dense_switching(
        self, reduced: Dict[int, SparseGradient]
    ) -> Dict[int, List[Tuple[int, SparseGradient]]]:
        """Recursive-doubling All-Gather of the reduced blocks.

        Accumulated payloads keep every block tagged with its owner so the
        message size can switch from COO (two elements per non-zero) to the
        dense block size, whichever is smaller.
        """
        P = self.num_workers
        gathered: Dict[int, List[Tuple[int, SparseGradient]]] = {
            rank: [(rank, reduced[rank])] for rank in range(P)
        }
        p2, extra = power_of_two_split(P)

        if extra:
            messages = [
                Message(src=p2 + i, dst=i, payload=gathered[p2 + i],
                        size=self._payload_size(gathered[p2 + i]),
                        tag="dsa-fold-in", size_final=True)
                for i in range(extra)
            ]
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].extend(message.payload)

        step = 1
        while step < p2:
            messages = []
            for rank in range(p2):
                partner = rank ^ step
                payload = list(gathered[rank])
                messages.append(Message(src=rank, dst=partner, payload=payload,
                                        size=self._payload_size(payload),
                                        tag=f"dsa-ag-{step}", size_final=True))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].extend(message.payload)
            step <<= 1

        if extra:
            messages = [
                Message(src=i, dst=p2 + i, payload=list(gathered[i]),
                        size=self._payload_size(gathered[i]),
                        tag="dsa-fold-out", size_final=True)
                for i in range(extra)
            ]
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst] = list(message.payload)
        return gathered

    def _payload_size(self, payload: List[Tuple[int, SparseGradient]]) -> float:
        """COO size per block, capped at the dense block size (TopkDSA's
        switch to dense transmission).

        Under quantization both representations carry ``num_bits``-bit
        values, so the switch compares the quantized COO cost (scale element
        included) against the quantized dense block.  The messages carrying
        these payloads are ``size_final``: the per-block min cannot be
        reconstructed from the payload alone.
        """
        total = 0.0
        compressor = self.compressor
        for block, sparse in payload:
            dense_size = float(self.layout.block_size(block))
            if compressor is None:
                total += min(2.0 * sparse.nnz, dense_size)
            else:
                total += min(compressor.sparse_cost(sparse.nnz),
                             compressor.dense_cost(dense_size))
        return total
