"""Shared plumbing for the baseline sparse All-Reduce methods.

Every baseline follows the same outline the paper describes for the
competitors (TopkA, TopkDSA, gTopk, Ok-Topk): add the stored residual to the
new local gradient, sparsify, run a method-specific exchange, and keep the
values the sparsifications dropped according to the method's residual
policy.  :class:`SparseBaseline` owns the shared state (resolved ``k`` and a
:class:`~repro.core.residuals.ResidualManager`); subclasses implement only
the exchange itself.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..comm.transport import Transport
from ..compression.stack import CompressorStack
from ..core.base import GradientSynchronizer
from ..core.pipeline import StepContext
from ..core.residuals import ResidualManager, ResidualPolicy
from ..core.schedules import KSchedule, coerce_schedule
from ..sparse.vector import SparseGradient

__all__ = ["SparseBaseline", "power_of_two_split", "is_power_of_two"]


def is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def power_of_two_split(num_workers: int) -> Tuple[int, int]:
    """Split ``P`` into ``(p2, r)`` with ``p2`` the largest power of two not
    exceeding ``P`` and ``r = P - p2`` the number of "extra" workers folded
    in and out of a recursive-doubling exchange (the standard MPI trick for
    non-power-of-two worker counts)."""
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    p2 = 1 << (num_workers.bit_length() - 1)
    return p2, num_workers - p2


class SparseBaseline(GradientSynchronizer):
    """Base class for the baseline sparse synchronisation methods.

    Parameters
    ----------
    cluster, num_elements:
        As for :class:`~repro.core.base.GradientSynchronizer`.
    k, density:
        Sparsity of the local selection; exactly one must be given (unless a
        ``schedule`` object carrying its own target is passed instead).
    schedule:
        Optional :class:`~repro.core.schedules.KSchedule` (or spec string
        such as ``"warmup:5"``) resolving the per-step ``k``.  ``None``
        keeps the constant ``k``/``density``, bit for bit.
    residual_policy:
        Error-feedback policy used by the method (the paper's competitors use
        local or partial residual collection).
    num_bits:
        Optional value quantization of the wire: ``None`` (default) keeps
        full-precision values — the pre-quantization behaviour bit for bit —
        while an integer in ``[1, 32]`` installs a quantize stage on the
        method's :class:`~repro.compression.stack.CompressorStack` whose
        ``compress`` stage quantizes every worker's selection (independent
        per-worker random streams) and folds the exact quantization error
        into the method's residual store.
    momentum:
        Optional DGC momentum-correction factor in ``(0, 1)``: the residual
        manager accumulates velocity instead of raw gradient, with momentum
        factor masking at the final global indices (``None`` keeps plain
        error feedback, bit for bit).  Coordinate with the trainer so
        momentum is not applied twice (``TrainerConfig.momentum_correction``).
    """

    def __init__(self, cluster: Transport, num_elements: int, *,
                 k: Optional[int] = None, density: Optional[float] = None,
                 schedule: Optional[KSchedule | str] = None,
                 residual_policy: ResidualPolicy | str = ResidualPolicy.LOCAL,
                 num_bits: Optional[int] = None,
                 momentum: Optional[float] = None) -> None:
        super().__init__(cluster, num_elements,
                         schedule=coerce_schedule(schedule, k=k, density=density))
        self.k = self.schedule.resolve(0, num_elements)
        self.residuals = ResidualManager(cluster.num_workers, num_elements, residual_policy)
        self.adopt_stack(CompressorStack.from_config(
            cluster.num_workers, momentum=momentum, num_bits=num_bits,
            sparsify=True))

    def set_sparsity(self, k: int) -> None:
        """Adopt a per-step ``k`` (schedule resolution)."""
        self.k = max(1, min(self.num_elements, int(k)))

    # ------------------------------------------------------------------
    def stage_compress(self, context: StepContext) -> None:
        """Wire encoding of the per-worker selections.

        Identity without a wire-transforming stack stage.  With a quantize
        stage, every worker's sparse selection is folded through the stack
        using that worker's independent random stream — so results do not
        depend on iteration order — and the exact error of the draw is
        collected as that worker's local residual (error feedback over the
        message actually sent).  Declarative stages (momentum correction)
        act through the residual manager and leave the wire untouched.
        """
        if self.stack is None or not self.stack.transforms_wire:
            context.wire = context.selected
            return
        wire: Dict[int, SparseGradient] = {}
        for rank, sparse in context.selected.items():
            quantized, compression_error = self.stack.compress_sparse(rank, sparse)
            self.residuals.collect_local_sparse(rank, compression_error)
            wire[rank] = quantized
        context.wire = wire

    # ------------------------------------------------------------------
    def local_select(self, gradients: Dict[int, np.ndarray]) -> Dict[int, SparseGradient]:
        """Residual-corrected local top-k selection for every worker.

        The dropped values are collected as local residuals.  Returns the
        per-worker sparse selection in global coordinates.
        """
        corrected = self.residuals.apply(gradients)
        selected: Dict[int, SparseGradient] = {}
        for rank, dense in corrected.items():
            sparse, residual = SparseGradient.top_k_of_dense(dense, self.k,
                                                             length=self.num_elements)
            self.residuals.collect_local(rank, residual)
            selected[rank] = sparse
        return selected

    def finalize_residuals(self, final: SparseGradient) -> None:
        """Resolve deferred (PRES) procedure discards against the final
        global index set."""
        self.residuals.finalize(final.indices)

    @staticmethod
    def merge_sum(pieces: Sequence[SparseGradient]) -> SparseGradient:
        """Merge-sum a non-empty sequence of sparse gradients (one k-way
        gather merge rather than sequential pairwise adds)."""
        if not pieces:
            raise ValueError("merge_sum needs at least one sparse gradient")
        return SparseGradient.merge_many(pieces)

    @staticmethod
    def num_doubling_steps(size: int) -> int:
        return int(math.log2(size)) if size > 1 else 0
