"""TopkA: sparse All-Gather All-Reduce (SparCML's allgather variant).

TopkA [Renggli et al., SC'19] handles the SGA dilemma by never re-reducing
during the exchange: every worker's local top-k selection is *gathered* on
every worker with a recursive-doubling All-Gather and only summed at the end.
Messages therefore grow with the number of accumulated contributions, giving
the ``2(P-1)k`` bandwidth bound of Table I, but the number of rounds stays at
``log2 P`` (plus the usual fold-in/fold-out rounds when ``P`` is not a power
of two).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..comm.transport import Message, Transport
from ..core.pipeline import StepContext
from ..core.residuals import ResidualPolicy
from ..core.schedules import KSchedule
from ..sparse.vector import SparseGradient
from .base import SparseBaseline, power_of_two_split

__all__ = ["TopkASynchronizer"]


class TopkASynchronizer(SparseBaseline):
    """Sparse All-Gather All-Reduce with recursive doubling."""

    name = "TopkA"

    def __init__(self, cluster: Transport, num_elements: int, *,
                 k: Optional[int] = None, density: Optional[float] = None,
                 schedule: Optional[KSchedule | str] = None,
                 num_bits: Optional[int] = None,
                 momentum: Optional[float] = None) -> None:
        super().__init__(cluster, num_elements, k=k, density=density,
                         schedule=schedule, residual_policy=ResidualPolicy.LOCAL,
                         num_bits=num_bits, momentum=momentum)

    # ------------------------------------------------------------------
    def stage_select(self, context: StepContext) -> None:
        context.selected = self.local_select(context.gradients)

    def stage_exchange(self, context: StepContext) -> None:
        selected = context.wire
        P = self.num_workers

        # Per-worker accumulation of gathered contributions.  The exchange
        # only concatenates; summation happens once at the end so that the
        # SGA dilemma manifests purely as growing message sizes.
        gathered: Dict[int, List[SparseGradient]] = {rank: [selected[rank]] for rank in range(P)}
        if P == 1:
            context.exchanged = gathered
            context.scratch["trivial"] = True
            return

        p2, extra = power_of_two_split(P)

        # Fold-in: the last ``extra`` workers hand their contribution to a
        # partner inside the power-of-two core.
        if extra:
            messages = [Message(src=p2 + i, dst=i, payload=gathered[p2 + i],
                                tag="topka-fold-in") for i in range(extra)]
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].extend(message.payload)

        # Recursive doubling over the power-of-two core.
        step = 1
        while step < p2:
            messages = []
            for rank in range(p2):
                partner = rank ^ step
                messages.append(Message(src=rank, dst=partner, payload=list(gathered[rank]),
                                        tag=f"topka-rd-{step}"))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].extend(message.payload)
            step <<= 1

        # Fold-out: send the gathered set back to the extra workers.  The
        # receiver already holds its own contribution, so that part of the
        # payload costs no bandwidth (keeping the total at 2(P-1)k as in
        # Table I).
        if extra:
            messages = []
            for i in range(extra):
                payload = list(gathered[i])
                # The receiver already holds its own contribution, so that
                # part of the payload costs no bandwidth (keeping the total
                # at 2(P-1)k as in Table I).  wire_size applies the active
                # compression, and the subtraction makes the size final —
                # a payload-derived pricer could not reconstruct it.
                size = self.wire_size(payload) - self.wire_size(selected[p2 + i])
                messages.append(Message(src=i, dst=p2 + i, payload=payload,
                                        size=max(size, 0.0), tag="topka-fold-out",
                                        size_final=True))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst] = list(message.payload)

        context.exchanged = gathered

    def stage_combine(self, context: StepContext) -> None:
        global_sparse = {rank: self.merge_sum(pieces)
                         for rank, pieces in context.exchanged.items()}
        context.global_sparse = global_sparse
        context.reference = global_sparse[0]
        context.global_gradients = {rank: sparse.to_dense()
                                    for rank, sparse in global_sparse.items()}
        context.info = {"k": self.k, "final_nnz": context.reference.nnz}

    def stage_residual_update(self, context: StepContext) -> None:
        if context.scratch.get("trivial"):
            return
        self.finalize_residuals(context.reference)
