"""Ok-Topk: near-optimal sparse All-Reduce with threshold pruning.

Ok-Topk [Li & Hoefler, PPoPP'22] is the strongest baseline in the paper.  It
is re-implemented here from its description in the SparDL paper and the
PPoPP abstract:

* local selection uses **threshold pruning** calibrated from the previous
  iteration instead of an exact top-k, so the number of selected gradients
  fluctuates around ``k`` (and sometimes exceeds it — one of the two reasons
  the paper gives for Ok-Topk's cost exceeding its bound);
* the gradient space is split into ``P`` owner regions that are
  **re-balanced every 64 iterations** from the observed index distribution,
  so regions drift out of balance between re-balancing points (the paper's
  other reason);
* the **Reduce-Scatter** phase sends each region's contribution directly to
  its owner (one peer per round);
* the owner prunes its summed region towards the global budget and the
  **All-Gather** phase distributes the uneven regions with direct sends,
  preceded by a small recursive-doubling exchange of region sizes and
  threshold statistics (the "extra communication operations to balance the
  uneven distribution" the paper refers to).

The structure reproduces Ok-Topk's cost profile of Table I — roughly
``2(P + log P)`` latency and a bandwidth bound several times ``k`` — while
remaining a faithful synchronous-SGD synchroniser (all workers finish with
identical gradients).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..comm.transport import Message, Transport
from ..core.pipeline import StepContext
from ..core.residuals import ResidualPolicy
from ..core.schedules import KSchedule
from ..sparse.topk import kth_largest_magnitude
from ..sparse.vector import SparseGradient
from .base import SparseBaseline

__all__ = ["OkTopkSynchronizer"]


class OkTopkSynchronizer(SparseBaseline):
    """Threshold-pruning sparse All-Reduce with periodic region re-balancing."""

    name = "Ok-Topk"

    #: Iterations between two region re-balancing passes (as in Ok-Topk).
    REBALANCE_PERIOD = 64

    def __init__(self, cluster: Transport, num_elements: int, *,
                 k: Optional[int] = None, density: Optional[float] = None,
                 schedule: Optional[KSchedule | str] = None,
                 rebalance_period: Optional[int] = None,
                 num_bits: Optional[int] = None,
                 momentum: Optional[float] = None) -> None:
        super().__init__(cluster, num_elements, k=k, density=density,
                         schedule=schedule, residual_policy=ResidualPolicy.PARTIAL,
                         num_bits=num_bits, momentum=momentum)
        self.rebalance_period = rebalance_period or self.REBALANCE_PERIOD
        #: Current owner-region boundaries (P + 1 cut points over [0, n]).
        self.boundaries = self._even_boundaries()
        #: Per-worker local pruning threshold, calibrated each iteration.
        self.thresholds: Dict[int, float] = {rank: 0.0 for rank in cluster.ranks}
        #: Number of locally selected gradients at the last iteration.
        self.last_selected: Dict[int, int] = {rank: self.k for rank in cluster.ranks}

    # ------------------------------------------------------------------
    def stage_select(self, context: StepContext) -> None:
        corrected = self.residuals.apply(context.gradients)
        context.selected = self._threshold_select(corrected)

    def stage_exchange(self, context: StepContext) -> None:
        selected = context.wire
        if self.num_workers == 1:
            context.exchanged = {0: [selected[0]]}
            context.scratch["trivial"] = True
            return

        if self.iteration % self.rebalance_period == 0:
            self._rebalance_regions(selected)

        reduced = self._reduce_scatter_direct(selected)
        pruned = self._prune_regions(reduced)
        self._exchange_sizes(pruned)
        context.exchanged = self._allgather_direct(pruned)

    def stage_combine(self, context: StepContext) -> None:
        global_sparse = {rank: self.merge_sum(pieces)
                         for rank, pieces in context.exchanged.items()}
        context.global_sparse = global_sparse
        context.reference = global_sparse[0]
        context.global_gradients = {rank: sparse.to_dense()
                                    for rank, sparse in global_sparse.items()}
        if context.scratch.get("trivial"):
            context.info = {"k": self.k, "final_nnz": context.reference.nnz}
            return
        context.info = {
            "k": self.k,
            "final_nnz": context.reference.nnz,
            "selected_per_worker": dict(self.last_selected),
            "thresholds": dict(self.thresholds),
        }

    def stage_residual_update(self, context: StepContext) -> None:
        self.finalize_residuals(context.reference)

    # ------------------------------------------------------------------
    # local threshold pruning
    # ------------------------------------------------------------------
    def _threshold_select(self, corrected: Dict[int, np.ndarray]) -> Dict[int, SparseGradient]:
        selected: Dict[int, SparseGradient] = {}
        for rank, dense in corrected.items():
            threshold = self.thresholds[rank]
            if threshold <= 0.0:
                # First iteration: bootstrap from the exact k-th magnitude.
                threshold = kth_largest_magnitude(dense, self.k)
            mask = np.abs(dense) >= threshold
            count = int(mask.sum())
            if count == 0:
                # Degenerate threshold (e.g. all-zero gradient); fall back to
                # the single largest entry so progress is never lost.
                sparse, residual = SparseGradient.top_k_of_dense(dense, 1,
                                                                 length=self.num_elements)
            else:
                indices = np.flatnonzero(mask)
                sparse = SparseGradient(indices, dense[indices], self.num_elements)
                residual = dense.copy()
                residual[indices] = 0.0
            self.residuals.collect_local(rank, residual)
            selected[rank] = sparse
            self.last_selected[rank] = sparse.nnz
            # Multiplicative calibration towards k selections next iteration.
            ratio = max(sparse.nnz, 1) / float(self.k)
            self.thresholds[rank] = max(threshold, 1e-30) * math.sqrt(max(ratio, 1e-6))
        return selected

    # ------------------------------------------------------------------
    # region handling
    # ------------------------------------------------------------------
    def _even_boundaries(self) -> List[int]:
        P = self.num_workers
        return [round(i * self.num_elements / P) for i in range(P + 1)]

    def _rebalance_regions(self, selected: Dict[int, SparseGradient]) -> None:
        """Recompute owner regions so each holds roughly the same number of
        selected indices.  The exchange of index histograms is modelled as a
        recursive-doubling reduction of a ``P``-bucket histogram."""
        P = self.num_workers
        histogram = np.zeros(self.num_elements, dtype=np.int64)
        for sparse in selected.values():
            histogram[sparse.indices] += 1

        # Communication of the bucketised histogram (P buckets, log P rounds).
        bucket_payload = np.zeros(P, dtype=np.float64)
        step = 1
        while step < P:
            messages = []
            for rank in range(P):
                partner = rank ^ step
                if partner < P:
                    # Index-count statistics, not gradient values: billed at
                    # full precision even under value quantization, hence the
                    # final explicit size.
                    messages.append(Message(src=rank, dst=partner, payload=bucket_payload,
                                            size=float(bucket_payload.size),
                                            tag="oktopk-rebalance", size_final=True))
            if messages:
                self.cluster.exchange(messages)
            step <<= 1

        total = int(histogram.sum())
        if total == 0:
            self.boundaries = self._even_boundaries()
            return
        target = total / P
        cumulative = np.cumsum(histogram)
        boundaries = [0]
        for i in range(1, P):
            cut = int(np.searchsorted(cumulative, i * target))
            cut = min(max(cut, boundaries[-1] + 1), self.num_elements - (P - i))
            boundaries.append(cut)
        boundaries.append(self.num_elements)
        self.boundaries = boundaries

    def _region(self, rank: int) -> tuple[int, int]:
        return self.boundaries[rank], self.boundaries[rank + 1]

    # ------------------------------------------------------------------
    # communication phases
    # ------------------------------------------------------------------
    def _reduce_scatter_direct(self, selected: Dict[int, SparseGradient]) -> Dict[int, SparseGradient]:
        P = self.num_workers
        reduced: Dict[int, SparseGradient] = {}
        for rank in range(P):
            lo, hi = self._region(rank)
            reduced[rank] = selected[rank].restrict(lo, hi)
        for shift in range(1, P):
            messages = []
            for rank in range(P):
                dst = (rank + shift) % P
                lo, hi = self._region(dst)
                messages.append(Message(src=rank, dst=dst,
                                        payload=selected[rank].restrict(lo, hi),
                                        tag=f"oktopk-rs-{shift}"))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    reduced[dst] = reduced[dst].add(message.payload)
        return reduced

    def _prune_regions(self, reduced: Dict[int, SparseGradient]) -> Dict[int, SparseGradient]:
        """Prune every owner's summed region towards its share of the global
        ``k`` budget (threshold pruning, so the result may exceed the share)."""
        pruned: Dict[int, SparseGradient] = {}
        for rank, region in reduced.items():
            lo, hi = self._region(rank)
            share = max(1, int(round(self.k * (hi - lo) / self.num_elements)))
            if region.nnz <= share:
                pruned[rank] = region
                continue
            # Threshold taken slightly below the exact cut so that, like the
            # real Ok-Topk, the kept count can exceed the share.
            cut = kth_largest_magnitude(region.values, share)
            kept, dropped = region.threshold(cut * 0.999)
            pruned[rank] = kept
            self.residuals.collect_procedure(rank, dropped)
        return pruned

    def _exchange_sizes(self, pruned: Dict[int, SparseGradient]) -> None:
        """Recursive-doubling exchange of the per-region sizes (the extra
        balancing traffic before the uneven All-Gather)."""
        P = self.num_workers
        step = 1
        while step < P:
            messages = []
            for rank in range(P):
                partner = rank ^ step
                if partner < P:
                    messages.append(Message(src=rank, dst=partner,
                                            payload=float(pruned[rank].nnz),
                                            tag="oktopk-sizes"))
            if messages:
                self.cluster.exchange(messages)
            step <<= 1

    def _allgather_direct(self, pruned: Dict[int, SparseGradient]) -> Dict[int, List[SparseGradient]]:
        """Direct-send All-Gather of the uneven regions (one peer per round)."""
        P = self.num_workers
        gathered: Dict[int, List[SparseGradient]] = {rank: [pruned[rank]] for rank in range(P)}
        for shift in range(1, P):
            messages = []
            for rank in range(P):
                dst = (rank + shift) % P
                messages.append(Message(src=rank, dst=dst, payload=pruned[rank],
                                        tag=f"oktopk-ag-{shift}"))
            inboxes = self.cluster.exchange(messages)
            for dst, inbox in inboxes.items():
                for message in inbox:
                    gathered[dst].append(message.payload)
        return gathered
