"""Factory for building any synchroniser (SparDL or baseline) by name.

This module is now a thin compatibility shim over :mod:`repro.api`, which
owns the method registry, the alias table and the spec-string grammar
(``"spardl?density=0.01&schedule=warmup:5"``).  The historical interface —
``SYNCHRONIZER_NAMES``, :func:`available_methods` and
:func:`make_synchronizer` with keyword arguments — is re-exported
unchanged, and :func:`make_synchronizer` additionally accepts full spec
strings, exactly like the facade.

The trainer, the examples and every benchmark select communication methods
by the short names used in the paper's figures ("SparDL", "Ok-Topk",
"TopkA", "TopkDSA", "gTopk", "Dense"), so experiments read like the
paper's method lists.
"""

from __future__ import annotations

from ..api import SYNCHRONIZER_NAMES, available_methods, make_synchronizer

__all__ = ["SYNCHRONIZER_NAMES", "make_synchronizer", "available_methods"]
