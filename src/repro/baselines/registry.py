"""Factory for building any synchroniser (SparDL or baseline) by name.

The trainer, the examples and every benchmark select communication methods by
the short names used in the paper's figures ("SparDL", "Ok-Topk", "TopkA",
"TopkDSA", "gTopk", "Dense"), so experiments read like the paper's method
lists.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..comm.cluster import SimulatedCluster
from ..core.base import GradientSynchronizer
from ..core.config import SAGMode, SparDLConfig
from ..core.residuals import ResidualPolicy
from ..core.spardl import SparDLSynchronizer
from .dense import DenseAllReduceSynchronizer
from .gtopk import GTopkSynchronizer
from .ok_topk import OkTopkSynchronizer
from .topk_a import TopkASynchronizer
from .topk_dsa import TopkDSASynchronizer

__all__ = ["SYNCHRONIZER_NAMES", "make_synchronizer", "available_methods"]

#: Canonical method names (as used in the paper's figures).
SYNCHRONIZER_NAMES = ("SparDL", "Ok-Topk", "TopkA", "TopkDSA", "gTopk", "Dense")

_ALIASES: Dict[str, str] = {
    "spardl": "SparDL",
    "ok-topk": "Ok-Topk",
    "oktopk": "Ok-Topk",
    "ok_topk": "Ok-Topk",
    "topka": "TopkA",
    "topk-a": "TopkA",
    "topk_a": "TopkA",
    "topkdsa": "TopkDSA",
    "topk-dsa": "TopkDSA",
    "topk_dsa": "TopkDSA",
    "gtopk": "gTopk",
    "gtop-k": "gTopk",
    "dense": "Dense",
    "allreduce": "Dense",
}


def available_methods(num_workers: int, include_dense: bool = False) -> List[str]:
    """Method names runnable on a cluster of ``num_workers`` (gTopk requires a
    power-of-two worker count)."""
    methods = ["SparDL", "Ok-Topk", "TopkA", "TopkDSA"]
    if num_workers >= 1 and (num_workers & (num_workers - 1)) == 0:
        methods.append("gTopk")
    if include_dense:
        methods.append("Dense")
    return methods


def make_synchronizer(
    name: str,
    cluster: SimulatedCluster,
    num_elements: int,
    *,
    k: Optional[int] = None,
    density: Optional[float] = None,
    num_teams: int = 1,
    sag_mode: SAGMode | str = SAGMode.AUTO,
    residual_policy: ResidualPolicy | str = ResidualPolicy.GLOBAL,
    sparsify_all_blocks: bool = False,
) -> GradientSynchronizer:
    """Build a synchroniser by (case-insensitive) method name.

    ``num_teams``, ``sag_mode``, ``residual_policy`` and
    ``sparsify_all_blocks`` only affect SparDL; the baselines use the
    residual policies of their original papers.
    """
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise ValueError(
            f"unknown synchroniser {name!r}; expected one of {', '.join(SYNCHRONIZER_NAMES)}"
        )
    if canonical == "Dense":
        return DenseAllReduceSynchronizer(cluster, num_elements)
    if canonical == "SparDL":
        config = SparDLConfig(
            k=k, density=density, num_teams=num_teams, sag_mode=sag_mode,
            residual_policy=residual_policy, sparsify_all_blocks=sparsify_all_blocks,
        )
        return SparDLSynchronizer(cluster, num_elements, config)
    if canonical == "Ok-Topk":
        return OkTopkSynchronizer(cluster, num_elements, k=k, density=density)
    if canonical == "TopkA":
        return TopkASynchronizer(cluster, num_elements, k=k, density=density)
    if canonical == "TopkDSA":
        return TopkDSASynchronizer(cluster, num_elements, k=k, density=density)
    if canonical == "gTopk":
        return GTopkSynchronizer(cluster, num_elements, k=k, density=density)
    raise RuntimeError("unreachable")  # pragma: no cover
