"""Dense All-Reduce baseline (no sparsification).

Classic synchronous data-parallel SGD synchronises full dense gradients with
an efficient All-Reduce; the paper's Section I motivates sparsification by
contrasting against exactly this.  The synchroniser picks Rabenseifner's
algorithm for power-of-two worker counts and the ring algorithm otherwise,
both of which reach the ``2 n (P-1)/P`` bandwidth lower bound.

In staged-pipeline terms the method is the degenerate case: ``select`` and
``compress`` pass the dense gradients through untouched, ``exchange`` is
the dense All-Reduce, ``combine`` adopts its output, and there is no
residual state to update.
"""

from __future__ import annotations

import numpy as np

from ..comm.collectives import allreduce_dense
from ..core.base import GradientSynchronizer
from ..core.pipeline import StepContext

__all__ = ["DenseAllReduceSynchronizer"]


class DenseAllReduceSynchronizer(GradientSynchronizer):
    """Exact dense All-Reduce of the local gradients."""

    name = "Dense"

    def stage_exchange(self, context: StepContext) -> None:
        context.exchanged = allreduce_dense(self.cluster, context.wire)

    def stage_combine(self, context: StepContext) -> None:
        context.global_gradients = context.exchanged
        context.info = {
            "k": self.num_elements,
            "final_nnz": int(np.count_nonzero(context.exchanged[0])),
        }
