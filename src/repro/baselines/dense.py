"""Dense All-Reduce baseline (no sparsification).

Classic synchronous data-parallel SGD synchronises full dense gradients with
an efficient All-Reduce; the paper's Section I motivates sparsification by
contrasting against exactly this.  The synchroniser picks Rabenseifner's
algorithm for power-of-two worker counts and the ring algorithm otherwise,
both of which reach the ``2 n (P-1)/P`` bandwidth lower bound.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..comm.collectives import allreduce_dense
from ..core.base import GradientSynchronizer, SyncResult

__all__ = ["DenseAllReduceSynchronizer"]


class DenseAllReduceSynchronizer(GradientSynchronizer):
    """Exact dense All-Reduce of the local gradients."""

    name = "Dense"

    def _synchronize(self, gradients: Dict[int, np.ndarray]) -> SyncResult:
        reduced = allreduce_dense(self.cluster, gradients)
        return SyncResult(
            global_gradients=reduced,
            stats=None,
            info={"k": self.num_elements, "final_nnz": int(np.count_nonzero(reduced[0]))},
        )
