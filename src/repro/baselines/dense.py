"""Dense All-Reduce baseline (no sparsification).

Classic synchronous data-parallel SGD synchronises full dense gradients with
an efficient All-Reduce; the paper's Section I motivates sparsification by
contrasting against exactly this.  The synchroniser picks Rabenseifner's
algorithm for power-of-two worker counts and the ring algorithm otherwise,
both of which reach the ``2 n (P-1)/P`` bandwidth lower bound.

In staged-pipeline terms the method is the degenerate case: ``select`` and
``compress`` pass the dense gradients through untouched, ``exchange`` is
the dense All-Reduce, ``combine`` adopts its output, and there is no
residual state to update.

With ``num_bits`` set the method becomes QSGD with error feedback: the
``compress`` stage quantizes every worker's (residual-corrected) gradient
with that worker's independent random stream, the exact quantization error
of the draw is kept in a per-worker residual store and re-applied at the
next step's ``select``, and every All-Reduce message is billed at
``num_bits/32`` elements per value.  Without ``num_bits`` the method is the
pre-quantization dense baseline, bit for bit.

With ``momentum`` set the residual manager accumulates DGC velocity
(``u = m*u + g``).  Because a dense step transmits *everything*, the method
never calls ``finalize`` and the velocity is never masked — which makes the
corrected dense method mathematically equivalent to naive momentum SGD
(averaging commutes with the velocity recursion).  This is the reference
point the momentum-correction convergence bench compares against.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..comm.transport import Transport
from ..comm.collectives import allreduce_dense
from ..compression.stack import CompressorStack
from ..core.base import GradientSynchronizer
from ..core.pipeline import StepContext
from ..core.residuals import ResidualManager, ResidualPolicy

__all__ = ["DenseAllReduceSynchronizer"]


class DenseAllReduceSynchronizer(GradientSynchronizer):
    """Exact dense All-Reduce of the local gradients."""

    name = "Dense"

    def __init__(self, cluster: Transport, num_elements: int, *,
                 num_bits: Optional[int] = None,
                 momentum: Optional[float] = None) -> None:
        super().__init__(cluster, num_elements)
        self._num_bits = num_bits
        self._momentum = momentum
        self.residuals: Optional[ResidualManager] = None
        if num_bits is not None or momentum is not None:
            self.residuals = ResidualManager(cluster.num_workers, num_elements,
                                             ResidualPolicy.GLOBAL)
        self.adopt_stack(CompressorStack.from_config(
            cluster.num_workers, momentum=momentum, num_bits=num_bits))

    def enable_momentum_correction(self, factor: float) -> None:
        """Trainer handoff: dense needs an error-feedback path only for the
        velocity state, so one is created on demand (plain dense All-Reduce
        keeps ``residuals=None`` and its stateless pre-momentum path)."""
        if self.residuals is None:
            self.residuals = ResidualManager(self.num_workers,
                                             self.num_elements,
                                             ResidualPolicy.GLOBAL)
        self.residuals.set_momentum(factor)

    def apply_membership(self, num_workers: int, mapping: Dict[int, int]) -> None:
        """Dense All-Reduce has no per-rank state beyond the optional QSGD
        error-feedback stores and momentum velocity, which hand off like any
        other residual state."""
        if self.residuals is not None:
            self.residuals.remap_workers(num_workers, mapping)
        if self.stack is not None:
            self.adopt_stack(CompressorStack.from_config(
                num_workers, momentum=self._momentum, num_bits=self._num_bits))
        super().apply_membership(num_workers, mapping)

    def stage_select(self, context: StepContext) -> None:
        if self.residuals is None:
            context.selected = context.gradients
        else:
            context.selected = self.residuals.apply(context.gradients)

    def stage_compress(self, context: StepContext) -> None:
        if self.stack is None or not self.stack.transforms_wire:
            context.wire = context.selected
            return
        wire = {}
        for rank, corrected in context.selected.items():
            quantized, error = self.stack.compress_dense(rank, corrected)
            self.residuals.collect_local(rank, error)
            wire[rank] = quantized
        context.wire = wire

    def stage_exchange(self, context: StepContext) -> None:
        context.exchanged = allreduce_dense(self.cluster, context.wire)

    def stage_combine(self, context: StepContext) -> None:
        context.global_gradients = context.exchanged
        context.info = {
            "k": self.num_elements,
            "final_nnz": int(np.count_nonzero(context.exchanged[0])),
        }
