"""NumPy deep-learning substrate: layers, models, losses and optimisers."""

from .attention import (
    LearnedPositionalEmbedding,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
    softmax,
)
from .conv import BatchNorm2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from .initializers import he_normal, normal_init, orthogonal, xavier_uniform, zeros
from .layers import (
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    MeanOverTime,
    ReLU,
    SelectLast,
    Sigmoid,
    Tanh,
)
from .losses import CrossEntropyLoss, Loss, MSELoss, accuracy, perplexity
from .models import (
    ResidualBlock,
    build_lstm_classifier,
    build_lstm_language_model,
    build_mlp,
    build_regression_cnn,
    build_resnet,
    build_transformer_mlm,
    build_vgg,
)
from .module import Identity, Module, Sequential
from .optim import SGD, ConstantLRSchedule, StepLRSchedule
from .parameter import (
    Parameter,
    assign_flat_gradients,
    assign_flat_values,
    flatten_gradients,
    flatten_values,
    parameter_count,
)
from .rnn import LSTM, LSTMCell

__all__ = [
    "Module",
    "Sequential",
    "Identity",
    "Parameter",
    "parameter_count",
    "flatten_values",
    "flatten_gradients",
    "assign_flat_values",
    "assign_flat_gradients",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "SelectLast",
    "MeanOverTime",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "LSTM",
    "LSTMCell",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "LearnedPositionalEmbedding",
    "softmax",
    "Loss",
    "CrossEntropyLoss",
    "MSELoss",
    "accuracy",
    "perplexity",
    "SGD",
    "ConstantLRSchedule",
    "StepLRSchedule",
    "xavier_uniform",
    "he_normal",
    "normal_init",
    "orthogonal",
    "zeros",
    "ResidualBlock",
    "build_mlp",
    "build_vgg",
    "build_regression_cnn",
    "build_resnet",
    "build_lstm_classifier",
    "build_lstm_language_model",
    "build_transformer_mlm",
]
