"""Model zoo for the paper's seven evaluation cases.

The paper trains VGG-16/19/11, ResNet-50, two 2-layer LSTMs and BERT.  The
builders below create architecturally faithful but scaled-down NumPy models
(same layer types, same gradient structure, orders of magnitude fewer
parameters) so the distributed-training experiments run on CPU.  Every
builder takes a ``seed`` so all worker replicas initialise identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .attention import LearnedPositionalEmbedding, TransformerEncoderLayer
from .conv import BatchNorm2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from .layers import (
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    ReLU,
    SelectLast,
)
from .module import Identity, Module, Sequential
from .rnn import LSTM

__all__ = [
    "ResidualBlock",
    "build_mlp",
    "build_vgg",
    "build_regression_cnn",
    "build_resnet",
    "build_lstm_classifier",
    "build_lstm_language_model",
    "build_transformer_mlm",
]


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------
class ResidualBlock(Module):
    """Two 3x3 convolutions with batch norm and an identity / projection skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None, name: str = "res") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            rng=rng, name=f"{name}.conv1")
        self.bn1 = BatchNorm2d(out_channels, name=f"{name}.bn1")
        self.act1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            rng=rng, name=f"{name}.conv2")
        self.bn2 = BatchNorm2d(out_channels, name=f"{name}.bn2")
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Conv2d(in_channels, out_channels, 1, stride=stride,
                                           padding=0, rng=rng, name=f"{name}.proj")
        else:
            self.shortcut = Identity()
        self.act_out = ReLU()

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        main = self.bn1(self.conv1(inputs))
        main = self.act1(main)
        main = self.bn2(self.conv2(main))
        skip = self.shortcut(inputs)
        return self.act_out(main + skip)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.act_out.backward(grad_output)
        grad_skip = self.shortcut.backward(grad_sum)
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.act1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        return grad_main + grad_skip


# ---------------------------------------------------------------------------
# dense and convolutional models
# ---------------------------------------------------------------------------
def build_mlp(input_dim: int, hidden_dims: Sequence[int], num_outputs: int,
              seed: int = 0) -> Sequential:
    """A simple multi-layer perceptron (used by tests and the quickstart)."""
    rng = np.random.default_rng(seed)
    layers: List[Module] = []
    previous = input_dim
    for index, hidden in enumerate(hidden_dims):
        layers.append(Linear(previous, hidden, rng=rng, name=f"mlp.fc{index}"))
        layers.append(ReLU())
        previous = hidden
    layers.append(Linear(previous, num_outputs, rng=rng, name="mlp.out"))
    return Sequential(*layers)


#: Convolutional plans of the scaled-down VGG variants: each entry is either a
#: channel count (3x3 convolution) or "M" (2x2 max pooling).  The layer
#: *count* per stage matches the real VGG-11/16/19; the channel widths are
#: scaled down for CPU training.
_VGG_PLANS = {
    "vgg11": (8, "M", 16, "M", 32, 32, "M", 64, 64, "M", 64, 64, "M"),
    "vgg16": (8, 8, "M", 16, 16, "M", 32, 32, 32, "M", 64, 64, 64, "M", 64, 64, 64, "M"),
    "vgg19": (8, 8, "M", 16, 16, "M", 32, 32, 32, 32, "M",
              64, 64, 64, 64, "M", 64, 64, 64, 64, "M"),
}


def build_vgg(variant: str, in_channels: int = 3, image_size: int = 16,
              num_classes: int = 10, width_multiplier: float = 1.0,
              seed: int = 0) -> Sequential:
    """A scaled-down VGG-style CNN (Cases 1, 2 and the backbone of Case 4)."""
    plan = _VGG_PLANS.get(variant.lower())
    if plan is None:
        raise ValueError(f"unknown VGG variant {variant!r}; expected one of {sorted(_VGG_PLANS)}")
    rng = np.random.default_rng(seed)
    layers: List[Module] = []
    channels = in_channels
    size = image_size
    conv_index = 0
    for entry in plan:
        if entry == "M":
            if size >= 2:
                layers.append(MaxPool2d(2))
                size //= 2
            continue
        out_channels = max(4, int(entry * width_multiplier))
        layers.append(Conv2d(channels, out_channels, 3, stride=1, padding=1, rng=rng,
                             name=f"{variant}.conv{conv_index}"))
        layers.append(BatchNorm2d(out_channels, name=f"{variant}.bn{conv_index}"))
        layers.append(ReLU())
        channels = out_channels
        conv_index += 1
    layers.append(Flatten())
    flat_dim = channels * size * size
    hidden = max(32, flat_dim // 4)
    layers.append(Linear(flat_dim, hidden, rng=rng, name=f"{variant}.fc0"))
    layers.append(ReLU())
    layers.append(Linear(hidden, num_classes, rng=rng, name=f"{variant}.fc1"))
    return Sequential(*layers)


def build_regression_cnn(in_channels: int = 3, image_size: int = 16,
                         width_multiplier: float = 1.0, seed: int = 0) -> Sequential:
    """VGG-11-style CNN with a single regression output (Case 4, House)."""
    model = build_vgg("vgg11", in_channels=in_channels, image_size=image_size,
                      num_classes=1, width_multiplier=width_multiplier, seed=seed)
    return model


def build_resnet(num_blocks_per_stage: Sequence[int] = (2, 2, 2),
                 in_channels: int = 3, num_classes: int = 10,
                 base_width: int = 8, seed: int = 0) -> Sequential:
    """A scaled-down ResNet (Case 3's stand-in for ResNet-50).

    ``num_blocks_per_stage`` controls depth; each stage doubles the channel
    width and halves the spatial resolution (except the first).
    """
    rng = np.random.default_rng(seed)
    layers: List[Module] = [
        Conv2d(in_channels, base_width, 3, stride=1, padding=1, rng=rng, name="resnet.stem"),
        BatchNorm2d(base_width, name="resnet.stem_bn"),
        ReLU(),
    ]
    channels = base_width
    for stage, blocks in enumerate(num_blocks_per_stage):
        out_channels = base_width * (2 ** stage)
        for block in range(blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(ResidualBlock(channels, out_channels, stride=stride, rng=rng,
                                        name=f"resnet.s{stage}b{block}"))
            channels = out_channels
    layers.append(GlobalAvgPool2d())
    layers.append(Linear(channels, num_classes, rng=rng, name="resnet.fc"))
    return Sequential(*layers)


# ---------------------------------------------------------------------------
# sequence models
# ---------------------------------------------------------------------------
def build_lstm_classifier(vocab_size: int, num_classes: int, embedding_dim: int = 16,
                          hidden_dim: int = 32, num_layers: int = 2,
                          seed: int = 0) -> Sequential:
    """2-layer LSTM text classifier (Case 5, LSTM-IMDB)."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Embedding(vocab_size, embedding_dim, rng=rng, name="lstmcls.embed"),
        LSTM(embedding_dim, hidden_dim, num_layers=num_layers, rng=rng, name="lstmcls.lstm"),
        SelectLast(),
        Linear(hidden_dim, num_classes, rng=rng, name="lstmcls.fc"),
    )


def build_lstm_language_model(vocab_size: int, embedding_dim: int = 16,
                              hidden_dim: int = 32, num_layers: int = 2,
                              seed: int = 0) -> Sequential:
    """2-layer LSTM language model predicting the next token (Case 6, LSTM-PTB)."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Embedding(vocab_size, embedding_dim, rng=rng, name="lstmlm.embed"),
        LSTM(embedding_dim, hidden_dim, num_layers=num_layers, rng=rng, name="lstmlm.lstm"),
        Linear(hidden_dim, vocab_size, rng=rng, name="lstmlm.fc"),
    )


def build_transformer_mlm(vocab_size: int, max_length: int = 32, model_dim: int = 32,
                          num_heads: int = 4, num_layers: int = 2,
                          dropout: float = 0.0, seed: int = 0) -> Sequential:
    """BERT-style masked language model (Case 7, BERT on Wikipedia)."""
    rng = np.random.default_rng(seed)
    layers: List[Module] = [
        Embedding(vocab_size, model_dim, rng=rng, name="bert.embed"),
        LearnedPositionalEmbedding(max_length, model_dim, rng=rng, name="bert.pos"),
    ]
    for index in range(num_layers):
        layers.append(TransformerEncoderLayer(model_dim, num_heads, dropout=dropout,
                                              rng=rng, seed=seed + index,
                                              name=f"bert.layer{index}"))
    layers.append(LayerNorm(model_dim, name="bert.final_ln"))
    layers.append(Linear(model_dim, vocab_size, rng=rng, name="bert.mlm_head"))
    return Sequential(*layers)
