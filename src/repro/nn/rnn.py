"""Recurrent layers: LSTM cell and unrolled multi-step LSTM.

The paper's Cases 5 and 6 train 2-layer LSTM models for text classification
(IMDB) and language modelling (PTB).  The :class:`LSTM` layer consumes a
``(N, T, input_dim)`` sequence and produces the full ``(N, T, hidden_dim)``
hidden-state sequence; classification heads select the last step, language
models project every step to the vocabulary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .initializers import orthogonal, xavier_uniform, zeros
from .module import Module
from .parameter import Parameter

__all__ = ["LSTMCell", "LSTM"]


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))


class LSTMCell(Module):
    """A single LSTM step.

    Gate layout in the fused weight matrices is ``[input, forget, cell,
    output]``; the forget-gate bias is initialised to one, the usual trick
    for stable training from scratch.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: Optional[np.random.Generator] = None, name: str = "lstm_cell") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Parameter(xavier_uniform(rng, (input_dim, 4 * hidden_dim)),
                                 name=f"{name}.w_input")
        self.w_hidden = Parameter(orthogonal(rng, (hidden_dim, 4 * hidden_dim)),
                                  name=f"{name}.w_hidden")
        bias = zeros((4 * hidden_dim,))
        bias[hidden_dim:2 * hidden_dim] = 1.0
        self.bias = Parameter(bias, name=f"{name}.bias")

    # The cell exposes functional step/step-backward methods so the unrolled
    # LSTM layer can manage the per-timestep caches itself.
    def step(self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
             ) -> Tuple[np.ndarray, np.ndarray, tuple]:
        """One forward step; returns ``(h, c, cache)``."""
        gates = x @ self.w_input.data + h_prev @ self.w_hidden.data + self.bias.data
        hd = self.hidden_dim
        i = _sigmoid(gates[:, 0:hd])
        f = _sigmoid(gates[:, hd:2 * hd])
        g = np.tanh(gates[:, 2 * hd:3 * hd])
        o = _sigmoid(gates[:, 3 * hd:4 * hd])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = (x, h_prev, c_prev, i, f, g, o, c, tanh_c)
        return h, c, cache

    def step_backward(self, grad_h: np.ndarray, grad_c: np.ndarray, cache: tuple
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward of one step; returns ``(grad_x, grad_h_prev, grad_c_prev)``
        and accumulates the parameter gradients."""
        x, h_prev, c_prev, i, f, g, o, c, tanh_c = cache
        grad_o = grad_h * tanh_c
        grad_c_total = grad_c + grad_h * o * (1.0 - tanh_c ** 2)
        grad_i = grad_c_total * g
        grad_f = grad_c_total * c_prev
        grad_g = grad_c_total * i
        grad_c_prev = grad_c_total * f

        d_gates = np.concatenate([
            grad_i * i * (1.0 - i),
            grad_f * f * (1.0 - f),
            grad_g * (1.0 - g ** 2),
            grad_o * o * (1.0 - o),
        ], axis=1)

        self.w_input.grad += x.T @ d_gates
        self.w_hidden.grad += h_prev.T @ d_gates
        self.bias.grad += d_gates.sum(axis=0)

        grad_x = d_gates @ self.w_input.data.T
        grad_h_prev = d_gates @ self.w_hidden.data.T
        return grad_x, grad_h_prev, grad_c_prev

    # Module interface (single step with fresh zero state); mainly for tests.
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        batch = inputs.shape[0]
        h0 = np.zeros((batch, self.hidden_dim))
        c0 = np.zeros((batch, self.hidden_dim))
        h, _, cache = self.step(inputs, h0, c0)
        self._cache = cache
        return h

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_c = np.zeros_like(grad_output)
        grad_x, _, _ = self.step_backward(grad_output, grad_c, self._cache)
        return grad_x


class LSTM(Module):
    """Unrolled (possibly multi-layer) LSTM over ``(N, T, input_dim)`` input.

    Returns the hidden sequence of the top layer, shape ``(N, T, hidden_dim)``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None, name: str = "lstm") -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.cells: List[LSTMCell] = [
            LSTMCell(input_dim if layer == 0 else hidden_dim, hidden_dim, rng=rng,
                     name=f"{name}.cell{layer}")
            for layer in range(num_layers)
        ]
        self._caches: Optional[List[List[tuple]]] = None
        self._input_shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        batch, steps, _ = inputs.shape
        self._input_shape = inputs.shape
        layer_input = inputs
        self._caches = []
        for cell in self.cells:
            h = np.zeros((batch, self.hidden_dim))
            c = np.zeros((batch, self.hidden_dim))
            outputs = np.zeros((batch, steps, self.hidden_dim))
            caches: List[tuple] = []
            for t in range(steps):
                h, c, cache = cell.step(layer_input[:, t, :], h, c)
                outputs[:, t, :] = h
                caches.append(cache)
            self._caches.append(caches)
            layer_input = outputs
        return layer_input

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, steps, _ = self._input_shape
        grad_layer = grad_output
        for layer in reversed(range(self.num_layers)):
            cell = self.cells[layer]
            caches = self._caches[layer]
            in_dim = cell.input_dim
            grad_input = np.zeros((batch, steps, in_dim))
            grad_h = np.zeros((batch, self.hidden_dim))
            grad_c = np.zeros((batch, self.hidden_dim))
            for t in reversed(range(steps)):
                grad_h_total = grad_h + grad_layer[:, t, :]
                grad_x, grad_h, grad_c = cell.step_backward(grad_h_total, grad_c, caches[t])
                grad_input[:, t, :] = grad_x
            grad_layer = grad_input
        return grad_layer
