"""Loss functions.

Every loss returns ``(value, gradient)`` where the gradient has the shape of
the predictions and already includes the ``1/N`` averaging factor, so it can
be fed straight into ``model.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["Loss", "CrossEntropyLoss", "MSELoss", "accuracy", "perplexity"]


class Loss:
    """Base class; concrete losses implement :meth:`compute`."""

    def compute(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.compute(predictions, targets)


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over the last axis.

    Accepts logits of shape ``(N, C)`` with integer targets ``(N,)`` or
    sequence logits ``(N, T, C)`` with targets ``(N, T)`` (used by the
    language-modelling cases).  Positions with the target equal to
    ``ignore_index`` contribute neither loss nor gradient, which implements
    masked language modelling.
    """

    def __init__(self, ignore_index: int = -1) -> None:
        self.ignore_index = ignore_index

    def compute(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        original_shape = predictions.shape
        num_classes = original_shape[-1]
        logits = predictions.reshape(-1, num_classes)
        labels = np.asarray(targets, dtype=np.int64).reshape(-1)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("targets do not match the predictions' batch shape")

        mask = labels != self.ignore_index
        count = int(mask.sum())
        if count == 0:
            return 0.0, np.zeros(original_shape, dtype=np.float64)

        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=1, keepdims=True)

        safe_labels = np.where(mask, labels, 0)
        picked = probabilities[np.arange(labels.shape[0]), safe_labels]
        losses = -np.log(np.clip(picked, 1e-12, None))
        loss = float(losses[mask].mean())

        gradient = probabilities
        gradient[np.arange(labels.shape[0]), safe_labels] -= 1.0
        gradient[~mask] = 0.0
        gradient /= count
        return loss, gradient.reshape(original_shape)


class MSELoss(Loss):
    """Mean squared error (used by the image-regression case)."""

    def compute(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        targets = np.asarray(targets, dtype=np.float64).reshape(predictions.shape)
        difference = predictions - targets
        loss = float(np.mean(difference ** 2))
        gradient = 2.0 * difference / difference.size
        return loss, gradient


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
def accuracy(predictions: np.ndarray, targets: np.ndarray, ignore_index: int = -1) -> float:
    """Classification accuracy from logits of shape ``(..., C)``."""
    num_classes = predictions.shape[-1]
    logits = predictions.reshape(-1, num_classes)
    labels = np.asarray(targets, dtype=np.int64).reshape(-1)
    mask = labels != ignore_index
    if not mask.any():
        return 0.0
    predicted = logits.argmax(axis=1)
    return float((predicted[mask] == labels[mask]).mean())


def perplexity(loss: float) -> float:
    """Perplexity of a language model from its cross-entropy loss."""
    return float(np.exp(min(loss, 50.0)))
