"""Weight initialisation helpers.

All initialisers take an explicit :class:`numpy.random.Generator`.  Model
builders thread a seeded generator through every layer so that all worker
replicas (and repeated runs) start from identical weights — a requirement
for the synchronous-SGD consistency checks in the test-suite.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["xavier_uniform", "he_normal", "normal_init", "zeros", "orthogonal"]


def xavier_uniform(rng: np.random.Generator, shape: Sequence[int],
                   fan_in: int | None = None, fan_out: int | None = None) -> np.ndarray:
    """Glorot / Xavier uniform initialisation."""
    shape = tuple(int(s) for s in shape)
    if fan_in is None or fan_out is None:
        fan_in_eff, fan_out_eff = _default_fans(shape)
        fan_in = fan_in if fan_in is not None else fan_in_eff
        fan_out = fan_out if fan_out is not None else fan_out_eff
    limit = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(rng: np.random.Generator, shape: Sequence[int],
              fan_in: int | None = None) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks."""
    shape = tuple(int(s) for s in shape)
    if fan_in is None:
        fan_in, _ = _default_fans(shape)
    std = math.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def normal_init(rng: np.random.Generator, shape: Sequence[int], std: float = 0.02) -> np.ndarray:
    """Plain Gaussian initialisation (used for embeddings, as in BERT)."""
    return rng.normal(0.0, std, size=tuple(int(s) for s in shape))


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(tuple(int(s) for s in shape), dtype=np.float64)


def orthogonal(rng: np.random.Generator, shape: Sequence[int], gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (used for recurrent weight matrices)."""
    shape = tuple(int(s) for s in shape)
    if len(shape) < 2:
        raise ValueError("orthogonal initialisation needs at least a 2-D shape")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]
    return gain * q.reshape(shape)


def _default_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """(fan_in, fan_out) for dense and convolutional weight shapes."""
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Convolution: (out_channels, in_channels, *kernel)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
