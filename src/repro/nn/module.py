"""Module base class and containers.

The deep-learning substrate follows a layer-graph design: every
:class:`Module` implements ``forward`` (caching whatever it needs) and
``backward`` (consuming the gradient of its output, accumulating parameter
gradients and returning the gradient of its input).  Composite modules —
:class:`Sequential`, residual blocks, attention blocks — compose their
children's ``forward``/``backward`` explicitly, which keeps the whole
substrate free of any autograd machinery while remaining easy to verify with
finite differences.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .parameter import Parameter

__all__ = ["Module", "Sequential", "Identity"]


class Module:
    """Base class of every layer and model."""

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------------
    # parameter and child discovery
    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        """Direct sub-modules, in attribute definition order (lists and
        tuples of modules are traversed as well)."""
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """This module and every descendant."""
        yield self
        for child in self.children():
            yield from child.modules()

    def parameters(self) -> List[Parameter]:
        """Every trainable parameter of this module and its descendants."""
        found: List[Parameter] = []
        for module in self.modules():
            for value in module.__dict__.values():
                if isinstance(value, Parameter):
                    found.append(value)
                elif isinstance(value, (list, tuple)):
                    found.extend(item for item in value if isinstance(item, Parameter))
        return found

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def copy_parameters_from(self, other: "Module") -> None:
        """Copy another (structurally identical) module's parameter values."""
        mine = self.parameters()
        theirs = other.parameters()
        if len(mine) != len(theirs):
            raise ValueError("modules have different numbers of parameters")
        for target, source in zip(mine, theirs):
            target.copy_from(source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(params={self.num_parameters()})"


class Identity(Module):
    """Pass-through module (useful as a default branch in composites)."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
