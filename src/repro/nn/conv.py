"""Convolutional layers: Conv2d, pooling and batch normalisation.

All image tensors use the ``(N, C, H, W)`` layout.  The convolution is
implemented with the classic im2col / col2im transformation so the forward
and backward passes are single matrix multiplications, which keeps the
scaled-down VGG / ResNet cases trainable on CPU in the tests and benchmarks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .initializers import he_normal, zeros
from .module import Module
from .parameter import Parameter

__all__ = ["Conv2d", "MaxPool2d", "GlobalAvgPool2d", "BatchNorm2d", "im2col", "col2im"]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(images: np.ndarray, kernel_h: int, kernel_w: int,
           stride: int, padding: int) -> np.ndarray:
    """Unfold image patches into a matrix of shape
    ``(N * out_h * out_w, C * kernel_h * kernel_w)``."""
    n, c, h, w = images.shape
    out_h = _out_size(h, kernel_h, stride, padding)
    out_w = _out_size(w, kernel_w, stride, padding)
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    columns = np.zeros((n, c, kernel_h, kernel_w, out_h, out_w), dtype=images.dtype)
    for y in range(kernel_h):
        y_max = y + stride * out_h
        for x in range(kernel_w):
            x_max = x + stride * out_w
            columns[:, :, y, x, :, :] = padded[:, :, y:y_max:stride, x:x_max:stride]
    return columns.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(columns: np.ndarray, image_shape: Tuple[int, int, int, int],
           kernel_h: int, kernel_w: int, stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col` (overlapping patches are summed)."""
    n, c, h, w = image_shape
    out_h = _out_size(h, kernel_h, stride, padding)
    out_w = _out_size(w, kernel_w, stride, padding)
    columns = columns.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=columns.dtype)
    for y in range(kernel_h):
        y_max = y + stride * out_h
        for x in range(kernel_w):
            x_max = x + stride * out_w
            padded[:, :, y:y_max:stride, x:x_max:stride] += columns[:, :, y, x, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:padding + h, padding:padding + w]


class Conv2d(Module):
    """2-D convolution with square stride and zero padding."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True,
                 name: str = "conv") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(he_normal(rng, shape), name=f"{name}.weight")
        self.bias = Parameter(zeros((out_channels,)), name=f"{name}.bias") if bias else None
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        n, c, h, w = inputs.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        out_h = _out_size(h, self.kernel_size, self.stride, self.padding)
        out_w = _out_size(w, self.kernel_size, self.stride, self.padding)
        columns = im2col(inputs, self.kernel_size, self.kernel_size, self.stride, self.padding)
        kernel = self.weight.data.reshape(self.out_channels, -1).T
        output = columns @ kernel
        if self.bias is not None:
            output = output + self.bias.data
        self._cache = (inputs.shape, columns)
        return output.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, columns = self._cache
        n, out_c, out_h, out_w = grad_output.shape
        flat_grad = grad_output.transpose(0, 2, 3, 1).reshape(-1, out_c)
        self.weight.grad += (columns.T @ flat_grad).T.reshape(self.weight.shape)
        if self.bias is not None:
            self.bias.grad += flat_grad.sum(axis=0)
        grad_columns = flat_grad @ self.weight.data.reshape(self.out_channels, -1)
        return col2im(grad_columns, input_shape, self.kernel_size, self.kernel_size,
                      self.stride, self.padding)


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        n, c, h, w = inputs.shape
        out_h = _out_size(h, self.kernel_size, self.stride, 0)
        out_w = _out_size(w, self.kernel_size, self.stride, 0)
        columns = im2col(inputs.reshape(n * c, 1, h, w), self.kernel_size, self.kernel_size,
                         self.stride, 0)
        argmax = columns.argmax(axis=1)
        output = columns[np.arange(columns.shape[0]), argmax]
        self._cache = (inputs.shape, argmax, columns.shape)
        return output.reshape(n, c, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        input_shape, argmax, col_shape = self._cache
        n, c, h, w = input_shape
        grad_columns = np.zeros(col_shape, dtype=np.float64)
        grad_columns[np.arange(col_shape[0]), argmax] = grad_output.reshape(-1)
        grad = col2im(grad_columns, (n * c, 1, h, w), self.kernel_size, self.kernel_size,
                      self.stride, 0)
        return grad.reshape(input_shape)


class GlobalAvgPool2d(Module):
    """Average each channel over its spatial extent: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(grad_output[:, :, None, None], self._shape) * scale


class BatchNorm2d(Module):
    """Per-channel batch normalisation for image tensors.

    Uses batch statistics in training mode, running statistics in evaluation
    mode.  Running statistics are part of the module state but not trainable
    parameters, so they do not enter the synchronised gradient vector.
    """

    def __init__(self, num_channels: int, momentum: float = 0.9, eps: float = 1e-5,
                 name: str = "bn") -> None:
        super().__init__()
        self.num_channels = num_channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_channels), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_channels), name=f"{name}.beta")
        self.running_mean = np.zeros(num_channels)
        self.running_var = np.ones(num_channels)
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self.training:
            mean = inputs.mean(axis=(0, 2, 3))
            var = inputs.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalised = (inputs - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (normalised, inv_std, inputs.shape)
        return normalised * self.gamma.data[None, :, None, None] + self.beta.data[None, :, None, None]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalised, inv_std, shape = self._cache
        n, c, h, w = shape
        count = n * h * w
        self.gamma.grad += (grad_output * normalised).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))
        grad_norm = grad_output * self.gamma.data[None, :, None, None]
        if not self.training:
            return grad_norm * inv_std[None, :, None, None]
        sum_grad = grad_norm.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_norm = (grad_norm * normalised).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (grad_norm - sum_grad / count - normalised * sum_grad_norm / count)
        return grad_input * inv_std[None, :, None, None]
